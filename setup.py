"""Setup shim for environments whose setuptools predates PEP 660 wheels."""
from setuptools import setup

setup()
