"""Reference solvers for the source problems of the paper's reductions.

Every reduction in :mod:`repro.reductions` starts from one of these
problems; the solvers here provide ground truth (brute force) and the
best-practical baselines, so each reduction can be executed and checked
end to end:

- triangle finding (Hypothesis 2),
- k-clique and its weighted variants (Hypotheses 6, 7, 8),
- hyperclique (Hypothesis 3),
- dominating set (Theorem 3.10 / SETH),
- 3SUM (Hypothesis 5).
"""

from repro.solvers.clique import (
    has_k_clique_brute,
    k_clique_witness,
    min_weight_k_clique_brute,
    zero_k_clique_brute,
)
from repro.solvers.dominating_set import (
    dominating_set_witness,
    has_dominating_set,
)
from repro.solvers.hyperclique import (
    has_hyperclique_brute,
    hyperclique_witness,
)
from repro.solvers.threesum import (
    threesum_hashing,
    threesum_quadratic,
    threesum_witness,
)
from repro.solvers.triangle import (
    find_triangle_naive,
    has_triangle_ayz,
    has_triangle_naive,
)

__all__ = [
    "dominating_set_witness",
    "find_triangle_naive",
    "has_dominating_set",
    "has_hyperclique_brute",
    "has_k_clique_brute",
    "has_triangle_ayz",
    "has_triangle_naive",
    "hyperclique_witness",
    "k_clique_witness",
    "min_weight_k_clique_brute",
    "threesum_hashing",
    "threesum_quadratic",
    "threesum_witness",
    "zero_k_clique_brute",
]
