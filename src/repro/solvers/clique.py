"""k-clique solvers: plain, minimum-weight and zero-weight variants.

The plain problem has the Õ(n^{ωk/3}) Nešetřil–Poljak algorithm
(Theorem 4.1, implemented as a reduction in
:mod:`repro.reductions.nesetril_poljak`); the weighted variants are
conjectured to need n^{k-o(1)} (Hypotheses 7 and 8), which is exactly
why they make good sources for superlinear lower bounds.  Here we give
the exact branch-and-bound baselines used as ground truth.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

EdgeWeights = Dict[FrozenSet, float]


def _ordered_neighbors(graph: nx.Graph) -> Dict[object, set]:
    return {v: set(graph.neighbors(v)) - {v} for v in graph.nodes()}


def k_clique_witness(
    graph: nx.Graph, k: int
) -> Optional[Tuple[object, ...]]:
    """A k-clique (sorted tuple) or None, by neighborhood branching."""
    if k <= 0:
        return ()
    adjacency = _ordered_neighbors(graph)
    nodes = sorted(graph.nodes(), key=repr)

    def extend(clique: List, candidates: List) -> Optional[Tuple]:
        if len(clique) == k:
            return tuple(clique)
        if len(clique) + len(candidates) < k:
            return None
        for index, v in enumerate(candidates):
            rest = [u for u in candidates[index + 1 :] if u in adjacency[v]]
            found = extend(clique + [v], rest)
            if found is not None:
                return found
        return None

    return extend([], nodes)


def has_k_clique_brute(graph: nx.Graph, k: int) -> bool:
    """Does the graph contain a k-clique?"""
    return k_clique_witness(graph, k) is not None


def _edge_weight(weights: EdgeWeights, u, v) -> Optional[float]:
    return weights.get(frozenset((u, v)))


def min_weight_k_clique_brute(
    graph: nx.Graph, k: int, weights: EdgeWeights
) -> Optional[float]:
    """Minimum total edge weight of a k-clique; None when no k-clique.

    Exhaustive over k-subsets with adjacency pruning — the Θ(n^k)
    baseline the Min-Weight-k-Clique Hypothesis (Hypothesis 7) says is
    essentially optimal.
    """
    best: Optional[float] = None
    adjacency = _ordered_neighbors(graph)
    for combo in combinations(sorted(graph.nodes(), key=repr), k):
        total = 0.0
        ok = True
        for u, v in combinations(combo, 2):
            if v not in adjacency[u]:
                ok = False
                break
            weight = _edge_weight(weights, u, v)
            if weight is None:
                ok = False
                break
            total += weight
        if ok and (best is None or total < best):
            best = total
    return best


def zero_k_clique_brute(
    graph: nx.Graph, k: int, weights: EdgeWeights
) -> Optional[Tuple[object, ...]]:
    """A k-clique of total edge weight exactly 0, or None (Hypothesis 8)."""
    adjacency = _ordered_neighbors(graph)
    for combo in combinations(sorted(graph.nodes(), key=repr), k):
        total = 0.0
        ok = True
        for u, v in combinations(combo, 2):
            if v not in adjacency[u]:
                ok = False
                break
            weight = _edge_weight(weights, u, v)
            if weight is None:
                ok = False
                break
            total += weight
        if ok and total == 0:
            return combo
    return None
