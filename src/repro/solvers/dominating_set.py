"""k-Dominating Set (paper Section 3.2, Theorem 3.10).

A set S dominates G when every vertex outside S has a neighbor in S.
Pătraşcu–Williams: an O(n^{k-ε}) algorithm for any constant k ≥ 3 would
refute SETH — which is what transfers, through the star-query encoding
of Lemma 3.9, to counting star queries.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

import networkx as nx


def is_dominating_set(graph: nx.Graph, candidate) -> bool:
    """Does ``candidate`` dominate the graph?"""
    chosen = set(candidate)
    dominated = set(chosen)
    for v in chosen:
        dominated.update(graph.neighbors(v))
    return dominated >= set(graph.nodes())


def dominating_set_witness(
    graph: nx.Graph, k: int
) -> Optional[Tuple]:
    """A dominating set of size ≤ k (as a sorted tuple), or None.

    Exhaustive over subsets of size exactly min(k, n) — the n^k
    baseline of Theorem 3.10.  A greedy upper bound prunes the search:
    if greedy finds a dominating set of size ≤ k we return one
    immediately (still exact: greedy sets *are* dominating sets).
    """
    nodes = sorted(graph.nodes(), key=repr)
    if k >= len(nodes):
        return tuple(nodes)
    # Greedy shortcut (sound: only ever returns actual dominating sets).
    greedy = _greedy_dominating_set(graph)
    if len(greedy) <= k:
        return tuple(sorted(greedy, key=repr))
    for size in range(1, k + 1):
        for combo in combinations(nodes, size):
            if is_dominating_set(graph, combo):
                return combo
    return None


def has_dominating_set(graph: nx.Graph, k: int) -> bool:
    """Does G have a dominating set of size at most k?"""
    return dominating_set_witness(graph, k) is not None


def _greedy_dominating_set(graph: nx.Graph) -> set:
    """Standard greedy: repeatedly take the vertex covering the most
    currently-undominated vertices."""
    undominated = set(graph.nodes())
    chosen: set = set()
    while undominated:
        best = max(
            graph.nodes(),
            key=lambda v: len(
                ({v} | set(graph.neighbors(v))) & undominated
            ),
        )
        chosen.add(best)
        undominated -= {best} | set(graph.neighbors(best))
    return chosen
