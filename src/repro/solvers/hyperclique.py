"""Hyperclique finding in uniform hypergraphs (Hypothesis 3's problem).

A *hyperclique* of size k in an h-uniform hypergraph is a vertex set
V' of size k all of whose h-subsets are edges.  For h > 2 no n^{k-ε}
algorithm is known (unlike graphs, where matrix multiplication helps —
Theorem 4.1), which is the content of the Hyperclique Hypothesis.

Hypergraphs here are plain collections of frozensets over hashable
vertices; uniformity is validated.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple


def normalize_hypergraph(
    edges: Iterable[Iterable], h: int
) -> Set[FrozenSet]:
    """Validate h-uniformity and freeze the edge set."""
    out: Set[FrozenSet] = set()
    for edge in edges:
        frozen = frozenset(edge)
        if len(frozen) != h:
            raise ValueError(
                f"edge {sorted(frozen, key=repr)} has size {len(frozen)}, "
                f"expected {h}"
            )
        out.add(frozen)
    return out


def hyperclique_witness(
    edges: Iterable[Iterable], h: int, k: int
) -> Optional[Tuple]:
    """A size-k hyperclique (sorted tuple) or None.

    Branch and bound over vertices: a partial clique is extended only
    by vertices that complete every h-subset involving them.  This is
    the exhaustive-search baseline the Hyperclique Hypothesis declares
    essentially unbeatable for h > 2.
    """
    if k < h:
        raise ValueError("hyperclique size k must be at least the arity h")
    edge_set = normalize_hypergraph(edges, h)
    vertices: List = sorted({v for e in edge_set for v in e}, key=repr)

    def compatible(clique: List, v) -> bool:
        if len(clique) < h - 1:
            return True
        return all(
            frozenset(sub + (v,)) in edge_set
            for sub in combinations(clique, h - 1)
        )

    def extend(clique: List, start: int) -> Optional[Tuple]:
        if len(clique) == k:
            return tuple(clique)
        if len(clique) + (len(vertices) - start) < k:
            return None
        for index in range(start, len(vertices)):
            v = vertices[index]
            if compatible(clique, v):
                found = extend(clique + [v], index + 1)
                if found is not None:
                    return found
        return None

    return extend([], 0)


def has_hyperclique_brute(
    edges: Iterable[Iterable], h: int, k: int
) -> bool:
    """Does the h-uniform hypergraph contain a k-hyperclique?"""
    return hyperclique_witness(edges, h, k) is not None
