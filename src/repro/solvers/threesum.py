"""3SUM solvers (Hypothesis 5's problem).

Given lists A, B, C of n integers (the paper normalizes them into
{-n^4..n^4}), decide whether a + b = c for some a ∈ A, b ∈ B, c ∈ C.
Both classical quadratic algorithms are provided: the sort-and-scan
one the paper sketches, and hashing.  The 3SUM Hypothesis asserts
neither can be beaten by a polynomial factor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def threesum_hashing(
    a: Sequence[int], b: Sequence[int], c: Sequence[int]
) -> bool:
    """Hash the target list, scan all pairs: O(n^2) expected."""
    targets = set(c)
    # Deduplicate the smaller side to cut the constant.
    left = sorted(set(a))
    right = sorted(set(b))
    for x in left:
        for y in right:
            if x + y in targets:
                return True
    return False


def threesum_quadratic(
    a: Sequence[int], b: Sequence[int], c: Sequence[int]
) -> bool:
    """The paper's Õ(n^2) algorithm: sort {a+b} and merge against C."""
    sums = sorted({x + y for x in set(a) for y in set(b)})
    targets = sorted(set(c))
    i = j = 0
    while i < len(sums) and j < len(targets):
        if sums[i] == targets[j]:
            return True
        if sums[i] < targets[j]:
            i += 1
        else:
            j += 1
    return False


def threesum_witness(
    a: Sequence[int], b: Sequence[int], c: Sequence[int]
) -> Optional[Tuple[int, int, int]]:
    """A witness triple (a, b, c) with a + b = c, or None."""
    by_target = set(c)
    for x in a:
        for y in b:
            if x + y in by_target:
                return (x, y, x + y)
    return None
