"""Triangle finding in plain graphs (the source problem of Hypothesis 2).

Graphs are :class:`networkx.Graph` instances (undirected, simple).
:func:`has_triangle_ayz` routes through the database-level AYZ
implementation of Theorem 3.2 by instantiating the triangle query with
every relation equal to the (symmetrized) edge set — the canonical
self-reduction the paper uses throughout Section 3.1.1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.joins.triangle import triangle_boolean_ayz, triangle_boolean_naive


def graph_as_triangle_database(graph: nx.Graph) -> Database:
    """The q△ database with R1 = R2 = R3 = symmetrized edge set."""
    pairs = set()
    for u, v in graph.edges():
        if u == v:
            continue  # self-loops can never be part of a triangle here
        pairs.add((u, v))
        pairs.add((v, u))
    db = Database()
    for name in ("R1", "R2", "R3"):
        db.add_relation(Relation(name, 2, pairs))
    return db


def has_triangle_naive(graph: nx.Graph) -> bool:
    """Neighbor-intersection scan over edges; no matrix multiplication."""
    return triangle_boolean_naive(graph_as_triangle_database(graph))


def has_triangle_ayz(
    graph: nx.Graph, backend: str = "numpy", omega: float = 3.0
) -> bool:
    """Theorem 3.2's Õ(m^{2ω/(ω+1)}) algorithm on a plain graph."""
    return triangle_boolean_ayz(
        graph_as_triangle_database(graph), backend=backend, omega=omega
    )


def find_triangle_naive(
    graph: nx.Graph,
) -> Optional[Tuple[object, object, object]]:
    """A witness triangle (or None), by direct neighbor intersection."""
    adjacency = {v: set(graph.neighbors(v)) - {v} for v in graph.nodes()}
    for u, v in graph.edges():
        if u == v:
            continue
        common = adjacency[u] & adjacency[v]
        common.discard(u)
        common.discard(v)
        if common:
            return (u, v, min(common, key=repr))
    return None
