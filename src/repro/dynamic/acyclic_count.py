"""Incrementally maintained answer counts for acyclic join queries.

:class:`repro.dynamic.HierarchicalCountMaintainer` realizes [15]'s
constant-time-per-update counting, but only for *hierarchical* join
queries and only over its own private tuple sets.  This module covers
the complementary production case: an acyclic join query served from
the columnar backend, where the count is the counting-semiring FAQ
aggregate and updates arrive as mutations of the shared relations.

:class:`AcyclicCountMaintainer` is a thin counting-semiring instance
of :class:`repro.semiring.faq.AggregateMaintainer`: mutate the
database's relations (``add`` / ``discard``), then call
:meth:`count` — the maintainer folds each relation's net delta
(:meth:`repro.db.columnar.ColumnarRelation.delta_since`) into its
per-node messages as O(depth) group-merges per updated tuple, instead
of recomputing the whole message passing.  Deletions fold as negated
deltas (counting is a ring).  When a relation's delta history is gone
(compaction after many updates, or a bulk rewrite) it falls back to
one full rebuild, which is exactly the regime where incremental
repair would not have been cheaper.
"""

from __future__ import annotations

from typing import Optional

from repro.db.database import Database
from repro.hypergraph.jointree import JoinTree
from repro.query.cq import ConjunctiveQuery
from repro.semiring.faq import AggregateMaintainer
from repro.semiring.semirings import COUNTING


class AcyclicCountMaintainer:
    """Maintain |q(D)| for an acyclic join query on the columnar backend."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        tree: Optional[JoinTree] = None,
    ) -> None:
        self._aggregate = AggregateMaintainer(
            query, db, COUNTING, tree=tree
        )

    def count(self) -> int:
        """The current number of answers (resynchronizing first)."""
        return self._aggregate.value()

    def refresh(self) -> None:
        """Fold pending relation deltas in without reading the count."""
        self._aggregate.refresh()

    @property
    def rebuilds(self) -> int:
        """Full rebuilds performed (incremental-path misses)."""
        return self._aggregate.rebuilds


def maintained_count(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[JoinTree] = None,
) -> Optional[AcyclicCountMaintainer]:
    """An :class:`AcyclicCountMaintainer` when one is admissible, else None.

    Encapsulates the applicability check the engine planner
    (:mod:`repro.engine`) needs: incremental count maintenance requires
    an acyclic *join* query over a columnar database whose relations
    share one dictionary.  Projected, cyclic, or python-backed inputs
    return ``None`` and the caller serves counts by (stamp-cached)
    recomputation instead — still live under updates, just not
    incremental.
    """
    if not query.is_join_query():
        return None
    try:
        return AcyclicCountMaintainer(query, db, tree=tree)
    except ValueError:
        # Cyclic hypergraph (no join tree) or non-columnar relations.
        return None
