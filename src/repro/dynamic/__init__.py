"""Query evaluation under updates (survey conclusion, [15]).

The paper's conclusion points to the dynamic-evaluation dichotomy of
Berkholz–Keppeler–Schweikardt: constant-time updates are possible
exactly for q-hierarchical queries.  This package implements the
tractable side for hierarchical *join* queries:
:class:`HierarchicalCountMaintainer` keeps the answer count current
under single-tuple inserts and deletes with O(|q|) dictionary work per
update — constant in data complexity.

For the columnar backend, :class:`AcyclicCountMaintainer` maintains
the count of any *acyclic* join query over the shared relations by
folding delta messages into the FAQ message tables (O(depth)
group-merges per updated tuple; see
:class:`repro.semiring.faq.AggregateMaintainer` for the general
semiring form and the rebuild fallbacks).
"""

from repro.dynamic.acyclic_count import (
    AcyclicCountMaintainer,
    maintained_count,
)
from repro.dynamic.hierarchical_count import HierarchicalCountMaintainer

__all__ = [
    "AcyclicCountMaintainer",
    "HierarchicalCountMaintainer",
    "maintained_count",
]
