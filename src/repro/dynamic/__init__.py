"""Query evaluation under updates (survey conclusion, [15]).

The paper's conclusion points to the dynamic-evaluation dichotomy of
Berkholz–Keppeler–Schweikardt: constant-time updates are possible
exactly for q-hierarchical queries.  This package implements the
tractable side for hierarchical *join* queries:
:class:`HierarchicalCountMaintainer` keeps the answer count current
under single-tuple inserts and deletes with O(|q|) dictionary work per
update — constant in data complexity.
"""

from repro.dynamic.hierarchical_count import HierarchicalCountMaintainer

__all__ = ["HierarchicalCountMaintainer"]
