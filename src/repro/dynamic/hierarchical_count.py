"""Constant-time-per-update counting for hierarchical join queries.

Structure.  In a hierarchical query the variables partition into
classes with identical atom sets; ordering classes by strict
containment of their atom sets yields a forest, and every atom's scope
is exactly the class-path from a root to the atom's deepest class (a
consequence of comparability within atoms).  This is the "variable
tree" underlying [15]'s data structure.

Counting decomposition.  For a class node v and an assignment α of the
classes on the path from v's root down to v:

    f_v(α) = Π_{atoms ending at v} [α's values form a tuple of R_A]
             × Π_{children c of v} g_c(α),
    g_c(α) = Σ_{values a of class c} f_c(α · a),

and the total count is Π_{roots r} Σ_a f_r(a).

Updates.  Inserting or deleting one tuple of an atom A only changes
f/g entries along A's class path (the tuple fixes α completely at
every node on it), so one update costs O(depth × fan-out) dictionary
operations — constant in the data.  No division is needed: each f on
the path is *recomputed* from its O(|q|) factors, and the change is
propagated to the parent's g as a difference.

The maintainer supports self-joins (one physical relation feeding
several atoms: each atom's path is refreshed) and any mix of inserts
and deletes.  Restriction: join queries only (the count of *projected*
q-hierarchical queries under updates needs the distinct-count layer of
[15], out of scope here; the classifier reports the predicate for
those).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hypergraph.hierarchical import atom_sets, is_hierarchical
from repro.query.cq import ConjunctiveQuery

Key = Tuple
Row = Tuple[object, ...]


class _ClassNode:
    """One equivalence class of variables in the variable forest."""

    __slots__ = (
        "index",
        "variables",
        "parent",
        "children",
        "ending_atoms",
        "f",
        "g",
    )

    def __init__(self, index: int, variables: Tuple[str, ...]) -> None:
        self.index = index
        self.variables = variables  # sorted tuple
        self.parent: Optional[int] = None
        self.children: List[int] = []
        self.ending_atoms: List[int] = []
        # f: full path-key (values of all classes root..self) -> count
        self.f: Dict[Key, int] = {}
        # g: parent path-key -> sum of f over this class's values
        self.g: Dict[Key, int] = {}


class HierarchicalCountMaintainer:
    """Maintain |q(D)| for a hierarchical join query under updates."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        if not query.is_join_query():
            raise ValueError(
                "the maintainer counts join queries; projected "
                "q-hierarchical counting needs [15]'s distinct layer"
            )
        if not is_hierarchical(query):
            raise ValueError(
                f"query {query.name} is not hierarchical; by [15] no "
                "constant-update-time counter exists (under OMv)"
            )
        self.query = query
        self._build_forest()
        self._relations: Dict[str, set] = {
            symbol: set() for symbol in query.relation_symbols
        }

    # ------------------------------------------------------------------
    # structure construction
    # ------------------------------------------------------------------
    def _build_forest(self) -> None:
        query = self.query
        sets = atom_sets(query)
        # Equivalence classes by atom set.
        by_atoms: Dict[FrozenSet[int], List[str]] = {}
        for variable, atoms in sets.items():
            by_atoms.setdefault(atoms, []).append(variable)
        classes = sorted(
            (
                (atoms, tuple(sorted(variables)))
                for atoms, variables in by_atoms.items()
            ),
            key=lambda item: (-len(item[0]), item[1]),
        )
        self.nodes: List[_ClassNode] = [
            _ClassNode(i, variables)
            for i, (_, variables) in enumerate(classes)
        ]
        self._class_atoms: List[FrozenSet[int]] = [
            atoms for atoms, _ in classes
        ]
        # Parent: the smallest strictly-containing class.
        for i, atoms in enumerate(self._class_atoms):
            best: Optional[int] = None
            for j, other in enumerate(self._class_atoms):
                if i != j and atoms < other:
                    if best is None or other < self._class_atoms[best]:
                        best = j
            if best is not None:
                self.nodes[i].parent = best
                self.nodes[best].children.append(i)
        self.roots: List[int] = [
            node.index for node in self.nodes if node.parent is None
        ]
        # Atoms end at their deepest (fewest-superset, i.e. smallest
        # atom-set is wrong — deepest = the class whose atom set is
        # minimal among the atom's classes).
        self._atom_path: List[List[int]] = []
        self._atom_positions: List[Dict[str, int]] = []
        for atom_index, atom in enumerate(query.atoms):
            atom_classes = sorted(
                {
                    self._class_of_variable(v) for v in atom.scope
                },
                key=lambda c: len(self._class_atoms[c]),
            )
            deepest = atom_classes[0]
            self.nodes[deepest].ending_atoms.append(atom_index)
            self._atom_path.append(self._path_to_root(deepest))
            positions = {}
            for pos, variable in enumerate(atom.variables):
                positions.setdefault(variable, pos)
            self._atom_positions.append(positions)

    def _class_of_variable(self, variable: str) -> int:
        for node in self.nodes:
            if variable in node.variables:
                return node.index
        raise KeyError(variable)  # pragma: no cover - construction bug

    def _path_to_root(self, node_index: int) -> List[int]:
        """Class indices from the root down to ``node_index``."""
        path = []
        current: Optional[int] = node_index
        while current is not None:
            path.append(current)
            current = self.nodes[current].parent
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Sequence[object]) -> None:
        """Insert one tuple (no-op if already present)."""
        row = tuple(row)
        self._check(relation, row)
        if row in self._relations[relation]:
            return
        self._relations[relation].add(row)
        self._refresh_paths(relation, row)

    def delete(self, relation: str, row: Sequence[object]) -> None:
        """Delete one tuple (no-op if absent)."""
        row = tuple(row)
        self._check(relation, row)
        if row not in self._relations[relation]:
            return
        self._relations[relation].discard(row)
        self._refresh_paths(relation, row)

    def _check(self, relation: str, row: Row) -> None:
        if relation not in self._relations:
            raise KeyError(f"query has no relation {relation!r}")
        arity = next(
            a.arity
            for a in self.query.atoms
            if a.relation == relation
        )
        if len(row) != arity:
            raise ValueError(
                f"relation {relation!r} has arity {arity}, got {row}"
            )

    def _refresh_paths(self, relation: str, row: Row) -> None:
        """Recompute f/g along every affected atom's class path."""
        for atom_index, atom in enumerate(self.query.atoms):
            if atom.relation != relation:
                continue
            path = self._atom_path[atom_index]
            positions = self._atom_positions[atom_index]
            # The tuple fixes the value of every class on the path.
            values: Dict[int, Key] = {}
            for class_index in path:
                node = self.nodes[class_index]
                values[class_index] = tuple(
                    row[positions[v]] for v in node.variables
                )
            # Bottom-up refresh from the deepest class.
            for class_index in reversed(path):
                self._recompute_f(class_index, values)

    def _path_key(
        self, class_index: int, values: Dict[int, Key]
    ) -> Key:
        path = self._path_to_root(class_index)
        return tuple(values[c] for c in path)

    def _recompute_f(
        self, class_index: int, values: Dict[int, Key]
    ) -> None:
        node = self.nodes[class_index]
        key = self._path_key(class_index, values)
        new_value = 1
        for atom_index in node.ending_atoms:
            atom = self.query.atoms[atom_index]
            positions = self._atom_positions[atom_index]
            # Reconstruct the atom tuple from the class values.
            lookup: Dict[str, object] = {}
            for c in self._path_to_root(class_index):
                for variable, value in zip(
                    self.nodes[c].variables, values[c]
                ):
                    lookup[variable] = value
            candidate = tuple(lookup[v] for v in atom.variables)
            if candidate not in self._relations[atom.relation]:
                new_value = 0
                break
        if new_value:
            for child in node.children:
                new_value *= self.nodes[child].g.get(key, 0)
                if not new_value:
                    break
        old_value = node.f.get(key, 0)
        delta = new_value - old_value
        if not delta:
            return
        if new_value:
            node.f[key] = new_value
        else:
            node.f.pop(key, None)
        # Propagate into the parent-facing g (or the root sums).
        parent_key = key[:-1]
        g_value = node.g.get(parent_key, 0) + delta
        if g_value:
            node.g[parent_key] = g_value
        else:
            node.g.pop(parent_key, None)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def count(self) -> int:
        """The current number of answers, in O(#roots)."""
        total = 1
        for root in self.roots:
            total *= self.nodes[root].g.get((), 0)
            if not total:
                return 0
        return total

    def load(self, db) -> None:
        """Bulk-load a database (m single-tuple inserts, O(m) total)."""
        for symbol in self.query.relation_symbols:
            for row in db[symbol]:
                self.insert(symbol, row)
