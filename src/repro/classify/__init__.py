"""The dichotomy classifier: the paper's theorems as a decision aid.

Given any conjunctive query, :func:`classify` reports, for every task
the paper analyzes (Boolean evaluation, counting, enumeration, direct
access in lexicographic and sum orders), which side of the dichotomy
the query is on, what runtime to expect, which theorem says so, and
which hypotheses make the bound tight.
"""

from repro.classify.classifier import classify
from repro.classify.report import QueryClassification, TaskVerdict

__all__ = ["QueryClassification", "TaskVerdict", "classify"]
