"""Report types for the dichotomy classifier."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.reductions.hypotheses import Hypothesis


@dataclass(frozen=True)
class TaskVerdict:
    """One task's classification for one query.

    ``tractable`` means "solvable within the paper's target resource
    for this task" (linear time; linear preprocessing + constant
    delay/logarithmic access).  ``upper_bound`` and ``lower_bound`` are
    human-readable runtime expressions; ``theorem`` cites the paper;
    ``hypotheses`` are the assumptions under which the lower bound (and
    hence tightness) holds.
    """

    task: str
    tractable: bool
    upper_bound: str
    lower_bound: Optional[str]
    theorem: str
    hypotheses: Tuple[Hypothesis, ...] = ()
    note: str = ""

    def render(self) -> str:
        status = "tractable" if self.tractable else "hard"
        lines = [f"{self.task}: {status} [{self.theorem}]"]
        lines.append(f"  upper bound: {self.upper_bound}")
        if self.lower_bound:
            lines.append(f"  lower bound: {self.lower_bound}")
        if self.hypotheses:
            names = ", ".join(h.name for h in self.hypotheses)
            lines.append(f"  assuming: {names}")
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)


@dataclass
class QueryClassification:
    """Structural facts plus per-task verdicts for one query."""

    query_name: str
    query_text: str
    acyclic: bool
    free_connex: bool
    self_join_free: bool
    is_join_query: bool
    is_boolean: bool
    agm_exponent: float
    quantified_star_size: int
    hard_witness: Optional[str]
    trio_free_order: Optional[Tuple[str, ...]]
    verdicts: Tuple[TaskVerdict, ...] = field(default_factory=tuple)

    def verdict(self, task: str) -> TaskVerdict:
        """Look up one task's verdict by name."""
        found = self.find(task)
        if found is None:
            raise KeyError(f"no verdict for task {task!r}")
        return found

    def find(self, task: str) -> Optional[TaskVerdict]:
        """Like :meth:`verdict`, but ``None`` when the task is absent.

        Used by the engine planner's access route
        (:mod:`repro.engine.planner`) to quote a verdict's theorem
        when present and degrade to a default citation otherwise,
        instead of propagating :class:`KeyError` into planning.
        """
        for verdict in self.verdicts:
            if verdict.task == task:
                return verdict
        return None

    def render(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"Query {self.query_name}: {self.query_text}",
            (
                f"  structure: acyclic={self.acyclic} "
                f"free-connex={self.free_connex} "
                f"self-join-free={self.self_join_free} "
                f"rho*={self.agm_exponent:.3f} "
                f"star-size={self.quantified_star_size}"
            ),
        ]
        if self.hard_witness:
            lines.append(f"  hard substructure: {self.hard_witness}")
        if self.trio_free_order is not None:
            lines.append(
                "  a disruptive-trio-free order: "
                + " > ".join(self.trio_free_order)
            )
        for verdict in self.verdicts:
            lines.append(verdict.render())
        return "\n".join(lines)
