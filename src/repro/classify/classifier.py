"""The classifier proper: apply every dichotomy of the paper.

For each task the verdicts quote the theorem, the runtime on each side,
and the hypotheses making the bound tight.  Lower-bound statements are
only claimed for self-join free queries where the paper requires it
(enumeration with self-joins is explicitly open — Section 3.3).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.starsize import quantified_star_size
from repro.hypergraph.structure import find_hard_substructure
from repro.hypergraph.trios import find_disruptive_trio, trio_free_order
from repro.hypergraph.widths import agm_exponent
from repro.classify.report import QueryClassification, TaskVerdict
from repro.direct_access.sum_order import covering_atom_index
from repro.query.cq import ConjunctiveQuery
from repro.reductions import hypotheses as hyp


def classify(
    query: ConjunctiveQuery,
    lex_order: Optional[Sequence[str]] = None,
    include_embedding_power: bool = False,
) -> QueryClassification:
    """Classify a query under every dichotomy the paper states.

    ``lex_order`` (a permutation of the free variables) additionally
    produces the order-specific lexicographic direct access verdict of
    Theorem 3.24.  ``include_embedding_power`` runs the (exponential in
    query size) clique-embedding search of Section 4.2 and adds a
    tropical-aggregation verdict with the certified exponent.
    """
    hypergraph = query.hypergraph()
    acyclic = is_acyclic(hypergraph)
    free_connex = acyclic and is_free_connex(query)
    sjf = query.is_self_join_free()
    star = quantified_star_size(query)
    rho = agm_exponent(hypergraph)
    witness = None if acyclic else find_hard_substructure(hypergraph)
    witness_text = None
    if witness is not None:
        if witness.kind == "cycle":
            witness_text = (
                "induced cycle on " + ", ".join(witness.cycle_order)
            )
        else:
            witness_text = (
                f"{witness.uniformity}-uniform hyperclique on "
                + ", ".join(sorted(witness.vertices))
            )

    verdicts = [
        _boolean_verdict(query, acyclic, rho, sjf, witness),
        _counting_verdict(query, acyclic, free_connex, sjf, star, rho),
        _enumeration_verdict(query, acyclic, free_connex, sjf),
        _direct_access_verdict(query, acyclic, free_connex, sjf),
        _sum_order_verdict(query, acyclic, sjf),
        _dynamic_verdict(query, sjf),
    ]
    if lex_order is not None and not query.is_boolean():
        verdicts.append(
            _lex_order_verdict(query, acyclic, tuple(lex_order), sjf)
        )
    if include_embedding_power:
        verdicts.append(_aggregation_verdict(query, acyclic, rho))

    good_order: Optional[Tuple[str, ...]] = None
    if acyclic and query.is_join_query():
        good_order = trio_free_order(query)

    return QueryClassification(
        query_name=query.name,
        query_text=str(query),
        acyclic=acyclic,
        free_connex=free_connex,
        self_join_free=sjf,
        is_join_query=query.is_join_query(),
        is_boolean=query.is_boolean(),
        agm_exponent=rho,
        quantified_star_size=star,
        hard_witness=witness_text,
        trio_free_order=good_order,
        verdicts=tuple(verdicts),
    )


def _boolean_verdict(query, acyclic, rho, sjf, witness) -> TaskVerdict:
    if acyclic:
        return TaskVerdict(
            task="boolean",
            tractable=True,
            upper_bound="Õ(m) (Yannakakis)",
            lower_bound=None,
            theorem="Theorem 3.1 / 3.7",
        )
    assumptions = (
        (hyp.TRIANGLE,)
        if witness is not None and witness.kind == "cycle"
        else (hyp.HYPERCLIQUE,)
    )
    return TaskVerdict(
        task="boolean",
        tractable=False,
        upper_bound=f"Õ(m^{rho:.3f}) (worst-case-optimal join)",
        lower_bound="not Õ(m)" + ("" if sjf else " (lower bound stated for self-join free queries)"),
        theorem="Theorem 3.7 (via Theorem 3.6)",
        hypotheses=assumptions if sjf else (),
        note=(
            ""
            if sjf
            else "query has self-joins; Theorem 3.7's lower bound "
            "does not directly apply"
        ),
    )


def _counting_verdict(
    query, acyclic, free_connex, sjf, star, rho
) -> TaskVerdict:
    if query.is_boolean() and acyclic:
        return TaskVerdict(
            task="counting",
            tractable=True,
            upper_bound="Õ(m) (counting = deciding for Boolean queries)",
            lower_bound=None,
            theorem="Theorem 3.1",
        )
    if free_connex:
        return TaskVerdict(
            task="counting",
            tractable=True,
            upper_bound="Õ(m) (free-connex counting)",
            lower_bound=None,
            theorem="Theorem 3.13",
        )
    if acyclic:
        bound = None
        assumptions: tuple = ()
        if sjf:
            assumptions = (hyp.SETH,)
            if star >= 2:
                bound = f"not O(m^{star}-ε) (quantified star size {star})"
            else:
                bound = "not Õ(m^{2-ε})"
        return TaskVerdict(
            task="counting",
            tractable=False,
            upper_bound="O(full-join size) (enumerate and count)",
            lower_bound=bound,
            theorem="Theorem 3.12 / 3.13 / 4.6",
            hypotheses=assumptions,
            note="" if sjf else "self-joins: use interpolation "
            "(repro.counting.interpolation) to transfer hardness",
        )
    assumptions = (hyp.TRIANGLE, hyp.HYPERCLIQUE) if sjf else ()
    return TaskVerdict(
        task="counting",
        tractable=False,
        upper_bound=f"Õ(m^{rho:.3f}) (worst-case-optimal join + count)",
        lower_bound="not Õ(m) (cyclic: already hard to decide)" if sjf else None,
        theorem="Theorem 3.13 (via Theorem 3.7)",
        hypotheses=assumptions,
    )


def _enumeration_verdict(query, acyclic, free_connex, sjf) -> TaskVerdict:
    if query.is_boolean():
        return TaskVerdict(
            task="enumeration",
            tractable=acyclic,
            upper_bound="n/a (Boolean query)",
            lower_bound=None,
            theorem="—",
            note="Boolean queries are decided, not enumerated",
        )
    if free_connex:
        return TaskVerdict(
            task="enumeration",
            tractable=True,
            upper_bound="Õ(m) preprocessing + Õ(1) delay",
            lower_bound=None,
            theorem="Theorem 3.17",
        )
    if not sjf:
        return TaskVerdict(
            task="enumeration",
            tractable=False,
            upper_bound="materialize (full evaluation)",
            lower_bound=None,
            theorem="Section 3.3",
            note=(
                "query has self-joins: the enumeration complexity of "
                "cyclic self-join queries is not fully understood "
                "([14, 26]); no lower bound is claimed"
            ),
        )
    assumptions = (
        (hyp.SPARSE_BMM,)
        if acyclic
        else (hyp.TRIANGLE, hyp.HYPERCLIQUE, hyp.ZERO_K_CLIQUE)
    )
    return TaskVerdict(
        task="enumeration",
        tractable=False,
        upper_bound="materialize (full evaluation)",
        lower_bound=(
            "no Õ(m) preprocessing + Õ(1) delay"
        ),
        theorem=(
            "Theorem 3.16" if acyclic else "Theorem 3.14 / 4.5"
        ),
        hypotheses=assumptions,
    )


def _direct_access_verdict(query, acyclic, free_connex, sjf) -> TaskVerdict:
    if query.is_boolean():
        return TaskVerdict(
            task="direct-access",
            tractable=acyclic,
            upper_bound="n/a (Boolean query)",
            lower_bound=None,
            theorem="—",
            note="Boolean queries are decided, not accessed",
        )
    if free_connex:
        return TaskVerdict(
            task="direct-access",
            tractable=True,
            upper_bound=(
                "Õ(m) preprocessing + Õ(log m) access (some "
                "lexicographic order)"
            ),
            lower_bound=None,
            theorem="Theorem 3.18 / Corollary 3.22",
        )
    assumptions = (
        (hyp.TRIANGLE, hyp.HYPERCLIQUE) if sjf else ()
    )
    return TaskVerdict(
        task="direct-access",
        tractable=False,
        upper_bound="materialize and sort",
        lower_bound=(
            "no Õ(m) preprocessing + Õ(1) access" if sjf else None
        ),
        theorem="Theorem 3.18 / Corollary 3.22",
        hypotheses=assumptions,
    )


def _lex_order_verdict(query, acyclic, order, sjf) -> TaskVerdict:
    trio = find_disruptive_trio(query, order) if query.is_join_query() else None
    if query.is_join_query() and acyclic and trio is None:
        return TaskVerdict(
            task=f"direct-access-lex[{' > '.join(order)}]",
            tractable=True,
            upper_bound="Õ(m) preprocessing + Õ(log m) access",
            lower_bound=None,
            theorem="Theorem 3.24",
        )
    note = ""
    if trio is not None:
        note = f"disruptive trio {trio}"
    return TaskVerdict(
        task=f"direct-access-lex[{' > '.join(order)}]",
        tractable=False,
        upper_bound="materialize and sort",
        lower_bound=(
            "no Õ(m) preprocessing + Õ(1) access"
            if (trio is not None and sjf)
            else None
        ),
        theorem="Theorem 3.24 / Lemma 3.23",
        hypotheses=(hyp.TRIANGLE,) if (trio is not None and sjf) else (),
        note=note,
    )


def _dynamic_verdict(query, sjf) -> TaskVerdict:
    """Evaluation under updates, per the conclusion's pointer to [15].

    Berkholz–Keppeler–Schweikardt: for self-join free CQs, constant
    update time with constant answer/delay time iff q-hierarchical
    (hard side under the OMv conjecture, outside the paper's numbered
    hypotheses).
    """
    from repro.hypergraph.hierarchical import (
        is_q_hierarchical,
        q_hierarchical_violation,
    )

    if is_q_hierarchical(query):
        return TaskVerdict(
            task="dynamic",
            tractable=True,
            upper_bound="O(1) per update, O(1) answer time",
            lower_bound=None,
            theorem="[15] (survey conclusion)",
            note="q-hierarchical",
        )
    witness = q_hierarchical_violation(query)
    return TaskVerdict(
        task="dynamic",
        tractable=False,
        upper_bound="recompute from scratch per update",
        lower_bound=(
            "no O(m^{1/2-ε}) update + answer time" if sjf else None
        ),
        theorem="[15] (survey conclusion)",
        note=f"not q-hierarchical: {witness}"
        + ("" if sjf else "; dichotomy stated for self-join free queries"),
    )


def _aggregation_verdict(query, acyclic, rho) -> TaskVerdict:
    """Tropical (min,+) aggregation, Section 4.1.2 + 4.2.

    For acyclic join queries FAQ message passing is linear; for cyclic
    ones the clique-embedding search certifies an exponent lower bound
    under the Min-Weight-k-Clique Hypothesis.
    """
    from repro.reductions.embedding_search import (
        embedding_power_lower_bound,
    )

    if not query.is_join_query():
        return TaskVerdict(
            task="aggregation-tropical",
            tractable=False,
            upper_bound="aggregate after projection (superlinear)",
            lower_bound=None,
            theorem="Section 4.1.2",
            note="stated for join queries; project first",
        )
    if acyclic:
        return TaskVerdict(
            task="aggregation-tropical",
            tractable=True,
            upper_bound="Õ(m) (FAQ message passing over a join tree)",
            lower_bound=None,
            theorem="Section 4.1.2 / [59]",
        )
    power, embedding = embedding_power_lower_bound(
        query, max_clique_size=min(len(query.variables) + 1, 6)
    )
    detail = ""
    if embedding is not None:
        detail = (
            f"K{embedding.clique_size} embedding, max depth "
            f"{embedding.max_edge_depth()}"
        )
    return TaskVerdict(
        task="aggregation-tropical",
        tractable=False,
        upper_bound=f"Õ(m^{rho:.3f}) (worst-case-optimal + fold)",
        lower_bound=(
            f"not Õ(m^{power:.3f}-ε) via clique embedding"
            if power > 1
            else None
        ),
        theorem="Section 4.2 / [41]",
        hypotheses=(hyp.MIN_WEIGHT_K_CLIQUE,) if power > 1 else (),
        note=detail,
    )


def _sum_order_verdict(query, acyclic, sjf) -> TaskVerdict:
    if not query.is_join_query():
        return TaskVerdict(
            task="direct-access-sum",
            tractable=False,
            upper_bound="materialize and sort",
            lower_bound=None,
            theorem="Section 3.4.2",
            note="the paper's sum-order analysis is for join queries",
        )
    cover = covering_atom_index(query)
    if cover is not None and acyclic:
        return TaskVerdict(
            task="direct-access-sum",
            tractable=True,
            upper_bound="Õ(m) preprocessing (sort the covering atom)",
            lower_bound=None,
            theorem="Theorem 3.26",
            note=f"atom {cover} covers all variables",
        )
    return TaskVerdict(
        task="direct-access-sum",
        tractable=False,
        upper_bound="materialize and sort",
        lower_bound=(
            "no Õ(m) preprocessing + Õ(m^{1-ε}) access" if sjf else None
        ),
        theorem="Theorem 3.26 / Lemma 3.25",
        hypotheses=(hyp.THREESUM,) if sjf else (),
    )
