"""Query atoms.

An atom ``R(x, y, x)`` pairs a relation symbol with a tuple of variable
names.  Variables may repeat inside an atom (the repetition acts as an
equality constraint during evaluation); the atom's *scope* is the set of
distinct variables, which is what the query's hypergraph records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(variables...)`` of a conjunctive query."""

    relation: str
    variables: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.relation or not self.relation.isidentifier():
            raise ValueError(
                f"relation symbol must be an identifier, got {self.relation!r}"
            )
        object.__setattr__(self, "variables", tuple(self.variables))
        for var in self.variables:
            if not isinstance(var, str) or not var.isidentifier():
                raise ValueError(
                    f"variable names must be identifiers, got {var!r}"
                )

    @property
    def arity(self) -> int:
        """Number of variable *positions* (repeats counted)."""
        return len(self.variables)

    @property
    def scope(self) -> FrozenSet[str]:
        """The set of distinct variables — the hypergraph edge."""
        return frozenset(self.variables)

    def has_repeated_variables(self) -> bool:
        """True when a variable occurs in more than one position."""
        return len(self.scope) < len(self.variables)

    def rename(self, mapping) -> "Atom":
        """A copy with variables renamed through ``mapping`` (dict or fn)."""
        if callable(mapping):
            new_vars = tuple(mapping(v) for v in self.variables)
        else:
            new_vars = tuple(mapping.get(v, v) for v in self.variables)
        return Atom(self.relation, new_vars)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"
