"""Conjunctive query syntax: atoms, queries, a parser, and a catalog.

Queries follow the paper's form ``q(X) :- R1(X1), ..., Rl(Xl)`` where
``X`` (the free/head variables) is a subset of the body variables.
``X`` equal to all body variables makes ``q`` a *join query*; ``X``
empty makes it *Boolean*.  A query is *self-join free* when no relation
symbol repeats among atoms.

The :mod:`repro.query.catalog` module provides the named query families
the paper's results revolve around: the triangle query, k-cycles,
k-paths, the star queries q*_k / q̄*_k / q̂*_k, Loomis–Whitney queries
and k-clique queries.
"""

from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.homomorphism import (
    are_equivalent,
    core,
    find_homomorphism,
    is_contained_in,
)
from repro.query.parser import parse_query
from repro.query import catalog

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "are_equivalent",
    "catalog",
    "core",
    "find_homomorphism",
    "is_contained_in",
    "parse_query",
]
