"""Homomorphisms, containment, equivalence and cores of CQs.

The survey opens with combined complexity: evaluating CQs is NP-hard
by Chandra–Merlin [29], because evaluation *is* homomorphism testing.
A production CQ library needs the Chandra–Merlin toolkit — containment
(q1 ⊆ q2 iff q2 maps homomorphically into q1), equivalence, and the
*core* (the minimal equivalent query) — not least because the
dichotomies of the paper are really statements about cores: a query
with redundant atoms classifies like its core.

A homomorphism from q2 to q1 maps q2's variables to q1's variables
such that every atom of q2 becomes an atom of q1 (same relation
symbol) and head variables are preserved pointwise.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

Mapping = Dict[str, str]


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Mapping]:
    """A homomorphism from ``source`` to ``target``, or None.

    Head-preserving: the i-th head variable of ``source`` must map to
    the i-th head variable of ``target`` (so both queries need equal
    head lengths).  Backtracking over source atoms; exponential in
    query size, as it must be (the problem is NP-complete [29]).
    """
    if len(source.head) != len(target.head):
        return None
    assignment: Mapping = {}
    for s_var, t_var in zip(source.head, target.head):
        existing = assignment.get(s_var)
        if existing is not None and existing != t_var:
            return None
        assignment[s_var] = t_var

    target_by_symbol: Dict[str, List[Atom]] = {}
    for atom in target.atoms:
        target_by_symbol.setdefault(atom.relation, []).append(atom)

    atoms = sorted(
        source.atoms,
        key=lambda a: -sum(1 for v in a.variables if v in assignment),
    )

    def extend(index: int) -> bool:
        if index == len(atoms):
            return True
        atom = atoms[index]
        for candidate in target_by_symbol.get(atom.relation, ()):
            if candidate.arity != atom.arity:
                continue
            added: List[str] = []
            ok = True
            for s_var, t_var in zip(atom.variables, candidate.variables):
                bound = assignment.get(s_var)
                if bound is None:
                    assignment[s_var] = t_var
                    added.append(s_var)
                elif bound != t_var:
                    ok = False
                    break
            if ok and extend(index + 1):
                return True
            for var in added:
                del assignment[var]
        return False

    if extend(0):
        return dict(assignment)
    return None


def is_contained_in(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    """Chandra–Merlin: q1 ⊆ q2 iff there is a homomorphism q2 → q1."""
    return find_homomorphism(q2, q1) is not None


def are_equivalent(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    """Semantic equivalence: mutual containment."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def _drop_atom(
    query: ConjunctiveQuery, index: int
) -> Optional[ConjunctiveQuery]:
    """The query without atom ``index``, or None if that is unsafe."""
    atoms = tuple(
        atom for i, atom in enumerate(query.atoms) if i != index
    )
    if not atoms:
        return None
    remaining = set()
    for atom in atoms:
        remaining |= atom.scope
    if not set(query.head) <= remaining:
        return None
    return ConjunctiveQuery(query.head, atoms, name=query.name)


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core: a minimal equivalent subquery.

    Greedily drops atoms whose removal preserves equivalence (checked
    by mutual homomorphism).  The result is unique up to isomorphism;
    the classifier should be applied to cores, since e.g. a triangle
    with a redundant fourth atom classifies like the triangle.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate = _drop_atom(current, index)
            if candidate is None:
                continue
            # Dropping atoms only enlarges the result; equivalence
            # holds iff the smaller query maps back into... precisely:
            # candidate ⊆ current always fails to be automatic for
            # projections, so check both directions explicitly.
            if are_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Is the query its own core (no atom removable)?"""
    return len(core(query).atoms) == len(query.atoms)
