"""A small parser for datalog-style conjunctive query text.

Grammar (whitespace-insensitive)::

    query  :=  head ":-" body
    head   :=  name "(" varlist? ")"
    body   :=  atom ("," atom)*
    atom   :=  name "(" varlist ")"
    varlist:=  var ("," var)*

Examples::

    parse_query("q(x, y) :- R(x, z), S(z, y)")
    parse_query("q() :- R(x, y), R(y, z), R(z, x)")   # Boolean, self-joins

Only variables are allowed in atoms (no constants); the paper's
reductions realize constants through relation contents instead.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

_ATOM_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\(\s*(?P<args>[^()]*?)\s*\)\s*"
)


class QueryParseError(ValueError):
    """Raised when query text does not match the grammar."""


def _parse_atom_text(text: str, what: str) -> Tuple[str, Tuple[str, ...]]:
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise QueryParseError(f"malformed {what}: {text!r}")
    name = match.group("name")
    args_text = match.group("args").strip()
    if not args_text:
        return name, ()
    args = tuple(a.strip() for a in args_text.split(","))
    for arg in args:
        if not arg.isidentifier():
            raise QueryParseError(
                f"{what} argument {arg!r} is not a variable name"
            )
    return name, args


def _split_atoms(body: str) -> List[str]:
    """Split the body on commas that sit *outside* parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError("unbalanced parentheses in body")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryParseError("unbalanced parentheses in body")
    parts.append("".join(current))
    return parts


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from datalog-style text."""
    if ":-" not in text:
        raise QueryParseError("query text must contain ':-'")
    head_text, body_text = text.split(":-", 1)
    name, head_vars = _parse_atom_text(head_text, "head")
    body_text = body_text.strip()
    if not body_text:
        raise QueryParseError("query body is empty")
    atoms = []
    for part in _split_atoms(body_text):
        part = part.strip()
        if not part:
            raise QueryParseError("empty atom in body")
        rel, args = _parse_atom_text(part, "atom")
        if not args:
            raise QueryParseError(f"atom {rel!r} has no variables")
        atoms.append(Atom(rel, args))
    return ConjunctiveQuery(head_vars, atoms, name=name)
