"""A small parser for datalog-style conjunctive query text.

Grammar (whitespace-insensitive)::

    query  :=  head ":-" body
    head   :=  name "(" varlist? ")"
    body   :=  atom ("," atom)*
    atom   :=  name "(" varlist ")"
    varlist:=  var ("," var)*

Examples::

    parse_query("q(x, y) :- R(x, z), S(z, y)")
    parse_query("q() :- R(x, y), R(y, z), R(z, x)")   # Boolean, self-joins

Only variables are allowed in atoms (no constants); the paper's
reductions realize constants through relation contents instead.

Errors carry *positions*: a malformed atom reports which body atom it
is (1-based, in textual order) and the grammar production it failed to
match, instead of the raw regex-mismatch text.  Parsing round-trips:
``parse_query(str(q))`` equals ``q`` for every query the grammar can
express (tested in ``tests/test_parser_roundtrip.py``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

_ATOM_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\(\s*(?P<args>[^()]*?)\s*\)\s*"
)

# The grammar productions quoted by parse errors, single source of
# truth for the module docstring's grammar block.
HEAD_PRODUCTION = 'head := name "(" var ("," var)* ")" | name "()"'
ATOM_PRODUCTION = 'atom := name "(" var ("," var)* ")"'


class QueryParseError(ValueError):
    """Raised when query text does not match the grammar."""


def _describe(what: str, position: Optional[int]) -> str:
    if position is None:
        return what
    return f"{what} at position {position} in the body"


def _parse_atom_text(
    text: str,
    what: str,
    production: str,
    position: Optional[int] = None,
) -> Tuple[str, Tuple[str, ...]]:
    where = _describe(what, position)
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise QueryParseError(
            f"malformed {where}: {text.strip()!r} does not match "
            f"{production}"
        )
    name = match.group("name")
    args_text = match.group("args").strip()
    if not args_text:
        return name, ()
    args = tuple(a.strip() for a in args_text.split(","))
    for arg in args:
        if not arg.isidentifier():
            raise QueryParseError(
                f"{where}: argument {arg!r} of {name!r} is not a "
                f"variable name (expected {production})"
            )
    return name, args


def _split_atoms(body: str) -> List[str]:
    """Split the body on commas that sit *outside* parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")" and depth > 0:
            # A ')' with no open '(' stays part of the atom text, so
            # the atom-level parse reports it with its position.
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryParseError(
            "unbalanced parentheses in body (missing ')' in atom "
            f"{len(parts) + 1})"
        )
    parts.append("".join(current))
    return parts


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from datalog-style text."""
    if ":-" not in text:
        raise QueryParseError(
            "query text must contain ':-' separating head and body "
            '(query := head ":-" body)'
        )
    head_text, body_text = text.split(":-", 1)
    name, head_vars = _parse_atom_text(
        head_text, "head", HEAD_PRODUCTION
    )
    body_text = body_text.strip()
    if not body_text:
        raise QueryParseError(
            'query body is empty (body := atom ("," atom)*)'
        )
    atoms = []
    for position, part in enumerate(_split_atoms(body_text), start=1):
        part = part.strip()
        if not part:
            raise QueryParseError(
                f"{_describe('empty atom', position)} "
                f"(expected {ATOM_PRODUCTION})"
            )
        rel, args = _parse_atom_text(
            part, "atom", ATOM_PRODUCTION, position
        )
        if not args:
            raise QueryParseError(
                f"{_describe(f'atom {rel!r}', position)} has no "
                f"variables (expected {ATOM_PRODUCTION})"
            )
        atoms.append(Atom(rel, args))
    return ConjunctiveQuery(head_vars, atoms, name=name)
