"""The :class:`ConjunctiveQuery` class.

Semantics: an *answer* to ``q(X) :- R1(X1), ..., Rl(Xl)`` on a database
``D`` is a tuple ``a`` over the head variables ``X`` such that some
assignment of all body variables extends ``a`` and sends each atom's
variable tuple to a tuple of the corresponding relation in ``D``.

This module is pure syntax plus a reference brute-force evaluator used
as ground truth in tests.  The real algorithms live in
:mod:`repro.joins`, :mod:`repro.counting`, :mod:`repro.enumeration` and
:mod:`repro.direct_access`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.db.database import Database
from repro.query.atoms import Atom


class ConjunctiveQuery:
    """A conjunctive query ``head(X) :- atoms``."""

    def __init__(
        self,
        head: Sequence[str],
        atoms: Sequence[Atom],
        name: str = "q",
    ) -> None:
        self.name = name
        self.head: Tuple[str, ...] = tuple(head)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        if len(set(self.head)) != len(self.head):
            raise ValueError("head variables must be distinct")
        body_vars = self.variables
        missing = [v for v in self.head if v not in body_vars]
        if missing:
            raise ValueError(
                f"head variables {missing} do not occur in the body "
                "(queries must be safe)"
            )
        self._check_symbol_arities()

    def _check_symbol_arities(self) -> None:
        arities: Dict[str, int] = {}
        for atom in self.atoms:
            prev = arities.setdefault(atom.relation, atom.arity)
            if prev != atom.arity:
                raise ValueError(
                    f"relation symbol {atom.relation!r} used with arities "
                    f"{prev} and {atom.arity}"
                )

    # ------------------------------------------------------------------
    # structural properties
    # ------------------------------------------------------------------
    @property
    def variables(self) -> FrozenSet[str]:
        """All variables occurring in the body."""
        out: Set[str] = set()
        for atom in self.atoms:
            out.update(atom.scope)
        return frozenset(out)

    @property
    def free_variables(self) -> FrozenSet[str]:
        """The head variables (free variables) as a set."""
        return frozenset(self.head)

    @property
    def existential_variables(self) -> FrozenSet[str]:
        """Projected-out (quantified) variables."""
        return self.variables - self.free_variables

    @property
    def relation_symbols(self) -> Tuple[str, ...]:
        """Distinct relation symbols, in order of first occurrence."""
        seen: List[str] = []
        for atom in self.atoms:
            if atom.relation not in seen:
                seen.append(atom.relation)
        return tuple(seen)

    def is_boolean(self) -> bool:
        """True when the head is empty."""
        return not self.head

    def is_join_query(self) -> bool:
        """True when every body variable is free (no projection)."""
        return self.free_variables == self.variables

    def is_self_join_free(self) -> bool:
        """True when no relation symbol occurs in two atoms."""
        return len(self.relation_symbols) == len(self.atoms)

    def arity_bound(self) -> int:
        """The maximum atom arity (2 means 'graphlike' in the paper)."""
        return max(atom.arity for atom in self.atoms)

    def atoms_of(self, relation: str) -> Tuple[Atom, ...]:
        """All atoms using the given relation symbol."""
        return tuple(a for a in self.atoms if a.relation == relation)

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------
    def as_boolean(self) -> "ConjunctiveQuery":
        """The Boolean query with the same body (project everything out)."""
        return ConjunctiveQuery((), self.atoms, name=f"{self.name}_bool")

    def as_join_query(self) -> "ConjunctiveQuery":
        """The join query with the same body (make every variable free).

        Variables are ordered with existing head variables first (in head
        order) and the remaining body variables in sorted order, so the
        result is deterministic.
        """
        rest = sorted(self.variables - self.free_variables)
        return ConjunctiveQuery(
            tuple(self.head) + tuple(rest), self.atoms,
            name=f"{self.name}_full",
        )

    def with_head(self, head: Sequence[str]) -> "ConjunctiveQuery":
        """The same body with a different head."""
        return ConjunctiveQuery(head, self.atoms, name=self.name)

    def rename_apart(self) -> "ConjunctiveQuery":
        """A self-join free copy: atom i's symbol becomes ``{R}__{i}``.

        Useful for upper-bound algorithms that are stated for self-join
        free queries: evaluating the renamed query on a database that
        maps each fresh symbol to the original relation gives identical
        answers.
        """
        atoms = tuple(
            Atom(f"{a.relation}__{i}", a.variables)
            for i, a in enumerate(self.atoms)
        )
        return ConjunctiveQuery(self.head, atoms, name=f"{self.name}_sjf")

    def hypergraph(self):
        """The query's hypergraph (vertices = variables, edges = scopes)."""
        from repro.hypergraph.hypergraph import Hypergraph

        return Hypergraph(
            vertices=self.variables,
            edges=[atom.scope for atom in self.atoms],
        )

    # ------------------------------------------------------------------
    # database helpers
    # ------------------------------------------------------------------
    def validate_database(self, db: Database) -> None:
        """Check that ``db`` supplies every symbol at the right arity."""
        for atom in self.atoms:
            if atom.relation not in db:
                raise KeyError(
                    f"database is missing relation {atom.relation!r}"
                )
            if db[atom.relation].arity != atom.arity:
                raise ValueError(
                    f"relation {atom.relation!r} has arity "
                    f"{db[atom.relation].arity}, atom {atom} needs "
                    f"{atom.arity}"
                )

    def rename_apart_database(self, db: Database) -> Database:
        """The database matching :meth:`rename_apart` (relations shared)."""
        out = Database()
        for i, atom in enumerate(self.atoms):
            rel = db[atom.relation].copy(f"{atom.relation}__{i}")
            out.add_relation(rel)
        return out

    # ------------------------------------------------------------------
    # reference evaluation (ground truth for tests; exponential in |q|)
    # ------------------------------------------------------------------
    def evaluate_brute_force(self, db: Database) -> Set[Tuple]:
        """All answers, by backtracking over atoms.  Test oracle only.

        Correct for every query (self-joins, repeated variables,
        Boolean heads) but makes no complexity promises; the measured
        algorithms in :mod:`repro.joins` are compared against this.
        """
        self.validate_database(db)
        answers: Set[Tuple] = set()
        order = sorted(self.atoms, key=lambda a: len(db[a.relation]))
        self._backtrack(db, order, 0, {}, answers)
        return answers

    def _backtrack(
        self,
        db: Database,
        order: Sequence[Atom],
        depth: int,
        assignment: Dict[str, object],
        answers: Set[Tuple],
    ) -> None:
        if depth == len(order):
            answers.add(tuple(assignment[v] for v in self.head))
            return
        atom = order[depth]
        rel = db[atom.relation]
        bound_positions = [
            (i, assignment[v])
            for i, v in enumerate(atom.variables)
            if v in assignment
        ]
        if bound_positions:
            cols = tuple(i for i, _ in bound_positions)
            key = tuple(val for _, val in bound_positions)
            candidates: Iterable = rel.lookup(cols, key)
        else:
            candidates = rel
        for tup in candidates:
            extension: Dict[str, object] = {}
            ok = True
            for i, var in enumerate(atom.variables):
                if var in assignment:
                    if assignment[var] != tup[i]:
                        ok = False
                        break
                elif var in extension:
                    if extension[var] != tup[i]:
                        ok = False
                        break
                else:
                    extension[var] = tup[i]
            if not ok:
                continue
            assignment.update(extension)
            self._backtrack(db, order, depth + 1, assignment, answers)
            for var in extension:
                del assignment[var]

    def holds(self, db: Database) -> bool:
        """Boolean satisfaction, via the brute-force evaluator."""
        return bool(self.as_boolean().evaluate_brute_force(db))

    def count_brute_force(self, db: Database) -> int:
        """Number of answers, via the brute-force evaluator."""
        return len(self.evaluate_brute_force(db))

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.name}({', '.join(self.head)}) :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConjunctiveQuery({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.head == other.head and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash((self.head, self.atoms))
