"""Catalog of the named query families from the paper.

Every query the survey's results revolve around, as a constructor:

====================  =============================================
``triangle_query``    q△ () :- R1(x,y), R2(y,z), R3(z,x)   (Sec 3.1.1)
``cycle_query``       q°k, the k-cycle join query          (Ex 4.2)
``path_query``        the length-k path query (acyclic baseline)
``star_query``        q*_k with self-joins                 (Lemma 3.9)
``star_query_sjf``    q̄*_k, self-join free               (Thm 3.15)
``star_query_full``   q̂*_k, with z also free             (Lemma 3.23)
``loomis_whitney``    q^LW_k                               (Ex 3.4)
``clique_query``      the k-clique join query over E       (Sec 4.1.2)
``hierarchical_...``  simple free-connex / non-free-connex pairs
====================  =============================================
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery


def _vars(prefix: str, count: int) -> list:
    return [f"{prefix}{i}" for i in range(1, count + 1)]


def triangle_query(boolean: bool = True) -> ConjunctiveQuery:
    """The triangle query q△ (Boolean) or its join variant q̄△."""
    atoms = (
        Atom("R1", ("x", "y")),
        Atom("R2", ("y", "z")),
        Atom("R3", ("z", "x")),
    )
    head = () if boolean else ("x", "y", "z")
    return ConjunctiveQuery(head, atoms, name="q_triangle")


def cycle_query(k: int, boolean: bool = False) -> ConjunctiveQuery:
    """The k-cycle query q°k :- R1(v1,v2), ..., Rk(vk,v1)."""
    if k < 3:
        raise ValueError("cycles need k >= 3")
    vs = _vars("v", k)
    atoms = tuple(
        Atom(f"R{i + 1}", (vs[i], vs[(i + 1) % k])) for i in range(k)
    )
    head = () if boolean else tuple(vs)
    return ConjunctiveQuery(head, atoms, name=f"q_cycle{k}")


def path_query(k: int, boolean: bool = False) -> ConjunctiveQuery:
    """The k-edge path query :- R1(v1,v2), ..., Rk(vk,vk+1); acyclic."""
    if k < 1:
        raise ValueError("paths need k >= 1")
    vs = _vars("v", k + 1)
    atoms = tuple(Atom(f"R{i + 1}", (vs[i], vs[i + 1])) for i in range(k))
    head = () if boolean else tuple(vs)
    return ConjunctiveQuery(head, atoms, name=f"q_path{k}")


def star_query(k: int) -> ConjunctiveQuery:
    """q*_k(x1,...,xk) :- R(x1,z), ..., R(xk,z) — self-joins, z projected.

    The central hard query for counting (Lemma 3.9 / Corollary 3.11):
    acyclic but not free-connex for k >= 2.
    """
    if k < 1:
        raise ValueError("stars need k >= 1")
    xs = _vars("x", k)
    atoms = tuple(Atom("R", (x, "z")) for x in xs)
    return ConjunctiveQuery(tuple(xs), atoms, name=f"q_star{k}")


def star_query_sjf(k: int) -> ConjunctiveQuery:
    """q̄*_k(x1,...,xk) :- R1(x1,z), ..., Rk(xk,z) — self-join free.

    The enumeration-hard query of Theorem 3.15 (for k = 2 it encodes
    Boolean matrix multiplication).
    """
    if k < 1:
        raise ValueError("stars need k >= 1")
    xs = _vars("x", k)
    atoms = tuple(Atom(f"R{i + 1}", (x, "z")) for i, x in enumerate(xs))
    return ConjunctiveQuery(tuple(xs), atoms, name=f"q_star{k}_sjf")


def star_query_full(k: int, self_join_free: bool = False) -> ConjunctiveQuery:
    """q̂*_k(x1,...,xk,z) — like q*_k but with z free (Lemma 3.23).

    A join query; with the variable order x1 > ... > xk > z it has a
    disruptive trio (x1, x2, z), which is what makes lexicographic
    direct access hard for it.
    """
    if k < 1:
        raise ValueError("stars need k >= 1")
    xs = _vars("x", k)
    if self_join_free:
        atoms = tuple(Atom(f"R{i + 1}", (x, "z")) for i, x in enumerate(xs))
    else:
        atoms = tuple(Atom("R", (x, "z")) for x in xs)
    return ConjunctiveQuery(
        tuple(xs) + ("z",), atoms, name=f"q_star{k}_full"
    )


def loomis_whitney_query(k: int, boolean: bool = True) -> ConjunctiveQuery:
    """The k-dimensional Loomis–Whitney query q^LW_k (Example 3.4).

    One atom per (k-1)-subset of {x1,...,xk}, each on its own relation
    symbol.  For k = 3 this is the triangle query (up to naming); for
    k > 3 it is cyclic but contains no induced cycle.
    """
    if k < 3:
        raise ValueError("Loomis-Whitney queries need k >= 3")
    xs = _vars("x", k)
    atoms = []
    for subset in combinations(range(k), k - 1):
        label = "_".join(str(i + 1) for i in subset)
        atoms.append(Atom(f"R{label}", tuple(xs[i] for i in subset)))
    head = () if boolean else tuple(xs)
    return ConjunctiveQuery(head, tuple(atoms), name=f"q_lw{k}")


def clique_query(k: int, boolean: bool = False) -> ConjunctiveQuery:
    """The k-clique join query over a single symmetric edge relation E.

    q_k(x1,...,xk) :- AND over i != j of E(xi, xj)  (Section 4.1.2).
    With a weighted database over the tropical semiring, aggregating
    this query *is* Min-Weight-k-Clique.
    """
    if k < 2:
        raise ValueError("cliques need k >= 2")
    xs = _vars("x", k)
    atoms = tuple(
        Atom("E", (xs[i], xs[j]))
        for i in range(k)
        for j in range(k)
        if i != j
    )
    head = () if boolean else tuple(xs)
    return ConjunctiveQuery(head, atoms, name=f"q_clique{k}")


def matrix_multiplication_query() -> ConjunctiveQuery:
    """q̄*_2 written suggestively: AB(x,y) :- A(x,z), B(z,y).

    The query whose enumeration computes sparse Boolean matrix products
    (Theorem 3.15).  Structurally identical to ``star_query_sjf(2)`` up
    to renaming.
    """
    atoms = (Atom("A", ("x", "z")), Atom("B", ("z", "y")))
    return ConjunctiveQuery(("x", "y"), atoms, name="q_matmul")


def disruptive_trio_query() -> ConjunctiveQuery:
    """The smallest join query with a disruptive trio: q̂*_2 (sjf).

    Under the order x1 > x2 > z the trio is (x1, x2, z): both pairs
    (x1,z) and (x2,z) share an atom but (x1,x2) do not, and z comes
    last.
    """
    return star_query_full(2, self_join_free=True)


def semijoin_reducible_query() -> ConjunctiveQuery:
    """A 3-atom acyclic non-path query used in Yannakakis tests."""
    atoms = (
        Atom("R", ("x", "y")),
        Atom("S", ("y", "z")),
        Atom("T", ("y", "w")),
    )
    return ConjunctiveQuery(("x", "y", "z", "w"), atoms, name="q_tree")


def free_connex_pair() -> Sequence[ConjunctiveQuery]:
    """A (free-connex, non-free-connex) pair over the same body.

    Both are acyclic path queries ``R(x,y), S(y,z)``; the first keeps
    ``y`` free (free-connex), the second projects ``y`` out, leaving
    head {x, z} which is *not* an acyclic extension — the canonical
    non-free-connex example (it embeds q*_2).
    """
    atoms = (Atom("R", ("x", "y")), Atom("S", ("y", "z")))
    fc = ConjunctiveQuery(("x", "y", "z"), atoms, name="q_path2_full")
    nfc = ConjunctiveQuery(("x", "z"), atoms, name="q_path2_ends")
    return (fc, nfc)
