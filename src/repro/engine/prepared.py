"""Prepared queries and the uniform :class:`AnswerSet` handle.

A :class:`PreparedQuery` is the engine's unit of serving: one query,
one :class:`~repro.engine.planner.Plan`, one execution database, and a
set of lazily built answer structures shared by every
:meth:`PreparedQuery.run` call.  The structures are exactly the
low-level pipelines of the repo — FAQ maintainers
(:mod:`repro.semiring.faq`, :mod:`repro.dynamic`), constant-delay
enumerators (:mod:`repro.enumeration`), lex direct access
(:mod:`repro.direct_access`), Yannakakis and the worst-case-optimal
join (:mod:`repro.joins`) — so every answer is byte-identical to the
corresponding direct call; the facade only removes the dispatch
burden.

Liveness: every structure is built with ``on_stale="refresh"`` or is
guarded by a mutation-stamp cache, so a prepared query served across
an update stream (mutations through :meth:`repro.engine.session.
Session.add` / ``discard``) never raises
:class:`repro.db.interface.StaleStructureError` and never serves a
stale answer — it repairs incrementally where the delta-segment
machinery allows and recomputes otherwise.
"""

from __future__ import annotations

import operator
import threading
from contextlib import ExitStack
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.counting.algorithms import count_answers
from repro.db.database import Database
from repro.db.interface import snapshot_stamps, stale_relations
from repro.direct_access.lex import LexDirectAccess
from repro.dynamic.acyclic_count import maintained_count
from repro.engine.planner import BOOLEAN, FREE_CONNEX, Plan
from repro.enumeration.constant_delay import ConstantDelayEnumerator
from repro.joins.generic_join import generic_join, generic_join_boolean
from repro.joins.yannakakis import yannakakis_boolean, yannakakis_project
from repro.query.cq import ConjunctiveQuery
from repro.semiring.faq import (
    WeightFn,
    aggregate_acyclic,
    aggregate_free_connex,
    aggregate_generic,
    AggregateMaintainer,
)
from repro.semiring.semirings import COUNTING, Semiring

Row = Tuple[object, ...]


class PreparedQuery:
    """A classified, planned, incrementally served query.

    Produced by :meth:`repro.engine.session.Session.prepare`; call
    :meth:`run` for an :class:`AnswerSet` and :meth:`explain` for the
    plan.  Answer structures (count maintainer, enumerator, direct
    accessor, materialization, per-semiring aggregate maintainers) are
    built on first demand and cached for the lifetime of the prepared
    query, surviving updates through refresh/recompute.
    """

    def __init__(
        self,
        session,
        query: ConjunctiveQuery,
        plan: Plan,
        db: Database,
        semiring: Optional[Semiring] = None,
    ) -> None:
        self.session = session
        self.query = query
        self.plan = plan
        self.semiring = semiring
        self._db = db
        self.head = tuple(query.head)
        # Lazy serving structures; None = not built yet, False (for
        # the counter) = attempted and inapplicable.
        self._counter = None
        self._enumerator: Optional[ConstantDelayEnumerator] = None
        self._accessor: Optional[LexDirectAccess] = None
        # Keyed by the semiring object itself (Semiring is a frozen
        # dataclass, hence hashable): holding the key keeps the
        # semiring alive, so a recycled id can never alias two
        # semirings onto one cache slot.
        self._agg_maintainers: Dict[Semiring, object] = {}
        # capability key -> (stamps, value) for stamp-guarded scalars.
        self._cache: Dict[object, Tuple[Dict[str, int], object]] = {}
        # Concurrent readers serialize per prepared query (lazy
        # structure builds and stamp-cache refreshes are not
        # interleavable); distinct prepared queries stay concurrent.
        self._build_lock = threading.RLock()

    def _serving_guard(self) -> ExitStack:
        """Session read lock + per-prepared build lock, re-entrant.

        Every read entry point takes this: the shared session lock
        keeps reads out of half-applied updates (writers are
        exclusive, see :class:`repro.util.locks.ReadWriteLock`), and
        the build lock makes lazy structure construction and cache
        refresh single-threaded per prepared query.  Both sides are
        re-entrant, so nested reads (``__getitem__`` → ``count``) are
        free.
        """
        stack = ExitStack()
        rw = getattr(self.session, "_rw", None)
        if rw is not None:
            stack.enter_context(rw.read())
        stack.enter_context(self._build_lock)
        return stack

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The execution database (the session's primary or a mirror)."""
        return self._db

    def run(self) -> "AnswerSet":
        """A live, lazy view over the current answers."""
        return AnswerSet(self)

    def explain(self) -> str:
        """The chosen plan: pipelines, backend, theorems, rationale."""
        return self.plan.render()

    def count(self) -> int:
        """The current number of answers."""
        return self._count()

    # ------------------------------------------------------------------
    # stamp-guarded recomputation
    # ------------------------------------------------------------------
    def _cached(self, key: object, compute: Callable[[], object]):
        entry = self._cache.get(key)
        if entry is not None:
            stamps, value = entry
            if not stale_relations(self._db, stamps):
                return value
        stamps = snapshot_stamps(self._db, self.query.relation_symbols)
        value = compute()
        self._cache[key] = (stamps, value)
        return value

    # ------------------------------------------------------------------
    # capability backends
    # ------------------------------------------------------------------
    def _decide(self) -> bool:
        query, db = self.query, self._db
        if self.plan.classification.acyclic:
            compute = lambda: yannakakis_boolean(query, db)  # noqa: E731
        else:
            compute = lambda: generic_join_boolean(query, db)  # noqa: E731
        return self._cached("decide", compute)

    def _get_counter(self):
        if self._counter is None:
            made = maintained_count(self.query, self._db)
            self._counter = made if made is not None else False
        return self._counter or None

    def _count(self) -> int:
        with self._serving_guard():
            plan = self.plan
            if plan.family == BOOLEAN:
                return 1 if self._decide() else 0
            if plan.family == FREE_CONNEX:
                if plan.maintained_count:
                    counter = self._get_counter()
                    if counter is not None:
                        return counter.count()
                query, db = self.query, self._db
                return self._cached(
                    "count", lambda: count_answers(query, db)
                )
            # Fallback families: reuse a fresh materialization when one
            # exists, else count without decoding — on columnar inputs
            # count_answers reads the frontier join's code matrix
            # length directly, skipping the sorted tuple list entirely.
            entry = self._cache.get("materialized")
            if entry is not None and not stale_relations(
                self._db, entry[0]
            ):
                return len(entry[1])
            query, db = self.query, self._db
            return self._cached(
                "count", lambda: count_answers(query, db, method="brute")
            )

    def _iterate(self) -> Iterator[Row]:
        # The returned iterator itself runs outside the serving guard
        # (constant-delay enumeration is lazy); iteration concurrent
        # with updates is the one read shape left to the caller to
        # serialize.  Paging (`_access`) is the guarded alternative.
        with self._serving_guard():
            plan = self.plan
            if plan.family == BOOLEAN:
                return iter([()] if self._decide() else [])
            if plan.family == FREE_CONNEX:
                if self._enumerator is None:
                    self._enumerator = ConstantDelayEnumerator(
                        self.query, self._db, on_stale="refresh"
                    )
                return iter(self._enumerator)
            return iter(self._materialized())

    def _access(self, index: int) -> Row:
        with self._serving_guard():
            plan = self.plan
            if plan.family == BOOLEAN:
                return ()
            if plan.family == FREE_CONNEX and plan.access_admissible:
                if self._accessor is None:
                    self._accessor = LexDirectAccess(
                        self.query,
                        self._db,
                        order=plan.order,
                        on_stale="refresh",
                    )
                return self._accessor.access(index)
            return self._materialized()[index]

    def _materialized(self) -> List[Row]:
        """The sorted answer list (stamp-guarded; fallback families).

        Acyclic queries materialize through the output-sensitive
        Yannakakis projection; cyclic ones through the worst-case
        -optimal join.  Sorted by the plan's lexicographic order, so
        paging agrees with what direct access would serve.
        """
        query, db = self.query, self._db
        head, order = self.head, self.plan.order
        acyclic = self.plan.classification.acyclic

        def compute() -> List[Row]:
            if acyclic:
                rows = list(yannakakis_project(query, db).rows)
            else:
                rows = list(generic_join(query, db))
            positions = [head.index(v) for v in order]
            rows.sort(key=lambda row: tuple(row[p] for p in positions))
            return rows

        with self._serving_guard():
            return self._cached("materialized", compute)

    def _aggregate_maintainer(self, semiring: Semiring):
        key = semiring
        if key not in self._agg_maintainers:
            try:
                maintainer = AggregateMaintainer(
                    self.query, self._db, semiring
                )
            except ValueError:
                maintainer = False
            self._agg_maintainers[key] = maintainer
        return self._agg_maintainers[key] or None

    def _aggregate(
        self,
        semiring: Optional[Semiring],
        weights: Optional[WeightFn],
    ) -> object:
        semiring = semiring if semiring is not None else self.semiring
        if semiring is None:
            raise ValueError(
                "no semiring: pass AnswerSet.aggregate(semiring) or "
                "prepare(..., semiring=...)"
            )
        with self._serving_guard():
            return self._aggregate_locked(semiring, weights)

    def _aggregate_locked(
        self,
        semiring: Semiring,
        weights: Optional[WeightFn],
    ) -> object:
        query, db, plan = self.query, self._db, self.plan
        if plan.family == BOOLEAN:
            return semiring.one if self._decide() else semiring.zero
        if query.is_join_query():
            if plan.classification.acyclic:
                if weights is not None:
                    return aggregate_acyclic(query, db, semiring, weights)
                if plan.maintained_count and semiring is COUNTING:
                    # Share the count maintainer instead of building a
                    # second, identical COUNTING message-passing
                    # structure that every update would also pay for.
                    counter = self._get_counter()
                    if counter is not None:
                        return counter.count()
                if plan.backend in ("columnar", "sharded"):
                    maintainer = self._aggregate_maintainer(semiring)
                    if maintainer is not None:
                        return maintainer.value()
                return self._cached(
                    ("aggregate", semiring),
                    lambda: aggregate_acyclic(query, db, semiring),
                )
            if weights is not None:
                return aggregate_generic(query, db, semiring, weights)
            return self._cached(
                ("aggregate", semiring),
                lambda: aggregate_generic(query, db, semiring),
            )
        if weights is not None:
            raise ValueError(
                "per-atom weights require a join query (projection "
                "collapses body assignments); aggregate the full query "
                "with query.as_join_query() instead"
            )
        if plan.family == FREE_CONNEX:
            return self._cached(
                ("aggregate", semiring),
                lambda: aggregate_free_connex(query, db, semiring),
            )
        return semiring.sum(
            semiring.one for _ in self._materialized()
        )


class AnswerSet:
    """A uniform, lazy, *live* view over a prepared query's answers.

    - ``len(answers)`` / :meth:`count` — the dichotomy-optimal count;
    - iteration — constant-delay enumeration when the query admits it
      (enumeration order is the enumerator's, not the lex order);
    - ``answers[i]`` / ``answers[i:j]`` — paging in the plan's
      lexicographic order, backed by direct access when admissible and
      by the sorted materialization otherwise;
    - :meth:`aggregate` — semiring aggregation (FAQ);
    - :meth:`explain` — the serving plan.

    The view holds no answers of its own: every read consults the
    prepared query's maintained structures, so answers always reflect
    the session's current data.  Boolean queries expose the
    conventional shape: count 0/1 and the single empty tuple.
    """

    def __init__(self, prepared: PreparedQuery) -> None:
        self.prepared = prepared

    @property
    def query(self) -> ConjunctiveQuery:
        return self.prepared.query

    @property
    def plan(self) -> Plan:
        return self.prepared.plan

    def count(self) -> int:
        """The current number of answers."""
        return self.prepared._count()

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[Row]:
        return self.prepared._iterate()

    def __getitem__(self, item):
        n = self.count()
        if isinstance(item, slice):
            return [
                self.prepared._access(i)
                for i in range(*item.indices(n))
            ]
        index = operator.index(item)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(
                f"index {item} out of range for {n} answers"
            )
        return self.prepared._access(index)

    def first(self, k: int) -> List[Row]:
        """The first ``k`` answers in enumeration order."""
        if k <= 0:
            return []
        out: List[Row] = []
        for answer in self:
            out.append(answer)
            if len(out) == k:
                break
        return out

    def page(self, offset: int, size: int) -> List[Row]:
        """``size`` answers starting at ``offset``, in lex order."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        return self[offset : offset + size]

    def aggregate(
        self,
        semiring: Optional[Semiring] = None,
        weights: Optional[WeightFn] = None,
    ) -> object:
        """⊕-aggregate over the answers (⊗ of atom weights when given).

        Defaults to the semiring the query was prepared with.  Weights
        (``weights(node, row)``) are supported for join queries only.
        """
        return self.prepared._aggregate(semiring, weights)

    def explain(self) -> str:
        """The serving plan (same as ``PreparedQuery.explain``)."""
        return self.prepared.explain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnswerSet({self.prepared.query!s}, "
            f"family={self.plan.family})"
        )
