"""Replicated follower sessions over the delta-segment protocol.

The consistency contract that keeps prepared queries live under
updates — ``mutation_stamp`` plus exact-net ``delta_since`` — is
already a replication protocol in disguise: a follower that remembers
the leader's stamp per relation can ask for precisely the tuples it
is missing.  This module makes that literal with two halves:

- :class:`LeaderFeed` — the leader-side tap.  ``handshake()`` ships a
  full seed (backend, shard layout, the shared dictionary's values in
  code order, and every relation's exact ``snapshot_state``);
  ``pull(stamps, dict_len)`` ships the *suffix*: new dictionary
  values plus, per relation, the net coded ``(inserted, deleted)``
  since the follower's stamp.  When the follower's stamp predates a
  history barrier (compaction, bulk load, recovery) the leader
  answers with a **reseed** payload — the relation's full merged
  content — instead of failing the pull.

- :class:`FollowerSession` — a complete read-only replica: its own
  :class:`~repro.db.database.Database` (same backend as the leader,
  dictionary replicated in leader code order, so coded payloads apply
  without decoding) fronted by an ordinary
  :class:`~repro.engine.session.Session`, so followers prepare and
  serve queries exactly like the leader.  ``sync()`` performs one
  replication round; transport calls retry with exponential backoff
  on :class:`TransientReplicationError` (the sleep and clock are
  injectable, so tests exercise flaky transports deterministically)
  and give up with :class:`ReplicationError` once attempts or the
  time budget run out.

The transport is a callable boundary, not a socket: wrap a
:class:`LeaderFeed` in anything that can move its plain-data payloads
(pickle them over a pipe, JSON-ish them over HTTP) and hand the
wrapper to the follower.  Flakiness is modeled by raising
:class:`TransientReplicationError` from the wrapper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.db.columnar import ColumnarRelation
from repro.db.database import Database
from repro.db.interface import TruncatedHistoryError
from repro.engine.session import Session

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "DEFAULT_SMALL_DELTA",
    "FollowerSession",
    "LeaderFeed",
    "ReplicationError",
    "ReplicationTransport",
    "TransientReplicationError",
]

#: At or below this many changed rows a pull applies per-op
#: (``apply_coded``), preserving per-tuple history on the follower so
#: *its* prepared structures maintain incrementally; above it, bulk
#: batches are cheaper and the structures rebuild once.  Overridable
#: per follower via ``small_delta=`` (and through
#: ``connect(replica_of=..., small_delta=...)``).
DEFAULT_SMALL_DELTA = 64
SMALL_DELTA = DEFAULT_SMALL_DELTA  # backwards-compatible alias

#: Default transport retry budget: attempts per call, and the first
#: retry's sleep (doubling each attempt).  Overridable per follower
#: via ``retries=`` / ``backoff=`` / ``timeout=`` — also exposed as
#: ``connect()`` kwargs, so sessions configure their replicas without
#: reaching into this module.
DEFAULT_RETRIES = 5
DEFAULT_BACKOFF = 0.01


class ReplicationError(RuntimeError):
    """Replication failed and will not succeed by retrying."""


class TransientReplicationError(ReplicationError):
    """A retryable transport failure (timeout, dropped connection)."""


def _rows_of(codes: Union[np.ndarray, tuple, list]) -> List[tuple]:
    if isinstance(codes, np.ndarray):
        return [tuple(r) for r in codes.tolist()]
    return [tuple(r) for r in codes]


class ReplicationTransport:
    """The explicit transport seam of the replication protocol.

    Exactly two calls, both returning plain-data payloads:

    - :meth:`handshake` — the full seed a fresh follower bootstraps
      from (backend, shard layout, dictionary in code order, every
      relation's content and stamp);
    - :meth:`pull` — the suffix since the follower's per-relation
      stamps and dictionary length.

    :class:`LeaderFeed` is the in-process implementation (it *is* the
    leader);
    :class:`repro.server.transport.HttpReplicaTransport` moves the
    same payloads over HTTP, so ``connect(replica_of=...)`` accepts
    either interchangeably — one follower code path, two wires.

    Failure classification contract: raise
    :class:`TransientReplicationError` (or let a builtin
    ``ConnectionError`` / ``TimeoutError`` / ``OSError`` escape) for
    failures a retry can fix — a refused or dropped connection, a
    timeout; raise :class:`ReplicationError` for failures it cannot —
    a corrupt or undecodable payload, a leader that does not serve
    this database.  :meth:`FollowerSession.sync` retries the former
    with exponential backoff and surfaces the latter immediately.
    """

    def handshake(self) -> Dict[str, Any]:
        raise NotImplementedError

    def pull(
        self, stamps: Dict[str, int], dict_len: int
    ) -> Dict[str, Any]:
        raise NotImplementedError


class LeaderFeed(ReplicationTransport):
    """The leader-side replication tap over a session (or database).

    Stateless between calls: everything a pull needs — the follower's
    per-relation stamps and dictionary length — arrives as arguments,
    so one feed serves any number of followers at different positions.
    """

    def __init__(self, leader: Union[Session, Database]) -> None:
        self.db = leader.db if isinstance(leader, Session) else leader

    # ------------------------------------------------------------------
    # payload builders
    # ------------------------------------------------------------------
    def _dictionary_values(self, start: int = 0) -> Optional[List[Any]]:
        dictionary = getattr(self.db, "_dictionary", None)
        if dictionary is None:
            return None
        return dictionary.values()[start:]

    def _seed_entry(self, rel) -> Dict[str, Any]:
        """A full-content entry (handshake seed or reseed fallback)."""
        if isinstance(rel, ColumnarRelation):
            content: Any = np.ascontiguousarray(
                rel.codes(), dtype=np.int64
            )
        else:
            content = [tuple(row) for row in rel]
        return {
            "name": rel.name,
            "arity": rel.arity,
            "mode": "seed",
            "content": content,
            "stamp": rel.mutation_stamp,
        }

    def handshake(self) -> Dict[str, Any]:
        """The full seed payload a fresh follower bootstraps from."""
        dictionary = self._dictionary_values()
        return {
            "backend": self.db.backend,
            "shard_count": self.db.shard_count,
            "dict_values": dictionary if dictionary is not None else [],
            "dict_len": len(dictionary or ()),
            "relations": [self._seed_entry(rel) for rel in self.db],
        }

    def pull(
        self, stamps: Dict[str, int], dict_len: int
    ) -> Dict[str, Any]:
        """The suffix since ``stamps``: dict growth plus net deltas.

        Relations the follower has never seen (created on the leader
        after the handshake) ship as seed entries; relations whose
        history was truncated by a barrier ship as reseed entries —
        the follower diffs, it never errors.
        """
        dict_suffix = self._dictionary_values(dict_len)
        relations: List[Dict[str, Any]] = []
        for rel in self.db:
            stamp = stamps.get(rel.name)
            if stamp is None:
                relations.append(self._seed_entry(rel))
                continue
            try:
                inserted, deleted = rel.delta_since(stamp)
            except TruncatedHistoryError:
                entry = self._seed_entry(rel)
                entry["mode"] = "reseed"
                relations.append(entry)
                continue
            relations.append(
                {
                    "name": rel.name,
                    "arity": rel.arity,
                    "mode": "delta",
                    "inserted": inserted,
                    "deleted": deleted,
                    "stamp": rel.mutation_stamp,
                }
            )
        return {
            "dict_values": dict_suffix if dict_suffix is not None else [],
            "dict_len": dict_len + len(dict_suffix or ()),
            "relations": relations,
        }


class FollowerSession:
    """A read-only replica session fed by a :class:`LeaderFeed`.

    ``feed`` is the leader tap (or any transport wrapper with the
    same ``handshake``/``pull`` surface).  ``retries`` bounds the
    attempts per transport call; ``backoff`` is the first retry's
    sleep, doubling each attempt; ``timeout`` (seconds, optional)
    caps the *total* time a call may spend retrying.  ``small_delta``
    is the per-op/bulk application threshold (default
    :data:`DEFAULT_SMALL_DELTA`).  ``sleep`` and ``clock`` exist for
    deterministic tests.  All of these are also reachable as
    ``connect()`` kwargs — followers are configured per session, not
    by editing module constants.

    **WAL-file catch-up**: with ``catchup_path`` naming the leader's
    durable directory (or a copy of it — any filesystem view works),
    the follower bootstraps *without* a handshake: it composes the
    leader's newest checkpoint chain, then streams the current
    epoch's sealed WAL segments and active WAL in bounded-memory
    batches of ``catchup_batch`` records.  Because WAL replay
    reproduces ``mutation_stamp`` sequences exactly, the follower
    lands on a stamp-exact boundary and the first :meth:`sync`
    against the live ``feed`` pulls precisely the ops that arrived
    after the files were read — no reseed, no overlap.  For a large
    backlog this is far faster than a live handshake (bulk
    ``np.load`` + coded batches instead of per-tuple seeding).

    The replica is complete: ``session`` (also reachable through
    :meth:`prepare` / :meth:`execute`) serves prepared queries over
    the replicated data, and each :meth:`sync` flows through the
    relations' ordinary mutation surface, so those queries stay live
    exactly as they do on the leader.
    """

    def __init__(
        self,
        feed=None,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        timeout: Optional[float] = None,
        sleep: Callable[[float], None] = None,
        clock: Callable[[], float] = None,
        columnar_cutoff: Optional[int] = None,
        small_delta: Optional[int] = None,
        catchup_path: Optional[str] = None,
        catchup_batch: int = 4096,
    ) -> None:
        import time

        if feed is None and catchup_path is None:
            raise ValueError(
                "FollowerSession needs a feed, a catchup_path, or both"
            )
        self._feed = feed
        self.retries = max(1, int(retries))
        self.backoff = backoff
        self.timeout = timeout
        self.small_delta = (
            DEFAULT_SMALL_DELTA if small_delta is None else small_delta
        )
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic
        self._dict_len = 0
        self._leader_stamps: Dict[str, int] = {}
        kwargs = (
            {} if columnar_cutoff is None
            else {"columnar_cutoff": columnar_cutoff}
        )
        if catchup_path is not None:
            self._bootstrap_from_files(catchup_path, catchup_batch)
            self.session = Session(self.db, **kwargs)
            return
        seed = self._call("handshake", feed.handshake)
        try:
            self.db = Database(
                backend=seed["backend"], shard_count=seed["shard_count"]
            )
            self._grow_dictionary(seed["dict_values"], seed["dict_len"])
        except ReplicationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"corrupt handshake payload: {exc}"
            ) from exc
        self.session = Session(self.db, **kwargs)
        try:
            for entry in seed["relations"]:
                self._apply_entry(entry)
        except ReplicationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"corrupt handshake payload: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # cold catch-up from the leader's WAL files
    # ------------------------------------------------------------------
    def _bootstrap_from_files(self, root: str, batch: int) -> None:
        import os

        from repro.db import checkpoint as ckpt
        from repro.db.database import replay_records
        from repro.db.wal import iter_records

        manifest = ckpt.read_manifest(root)
        if manifest is None:
            raise ReplicationError(
                f"no durable manifest under {root!r} to catch up from"
            )
        self.db = Database(
            backend=manifest["backend"],
            shard_count=manifest["shard_count"],
        )
        verifier = ckpt.Verifier(root, manifest.get("files") or {})
        index = manifest["checkpoint"]
        if index is not None:
            meta = ckpt.read_meta(root, index, verifier)
            ckpt.seed_dictionary(
                self.db._dictionary, root, meta, verifier
            )
            for entry in meta["relations"]:
                rel = ckpt.load_relation(
                    root, entry, self.db._dictionary, verifier
                )
                self.db._relations[rel.name] = rel
        # Stream this epoch's sealed segments, then the active WAL, in
        # bounded batches — the backlog never sits in memory at once.
        # A torn or damaged tail ends the file replay quietly: the
        # live feed covers everything after the stamp we stop at.
        epoch = index or 0
        names = [
            seg["name"]
            for seg in sorted(
                (
                    s
                    for s in manifest.get("segments") or []
                    if s["epoch"] == epoch
                ),
                key=lambda s: s["seq"],
            )
        ]
        names.append(manifest["wal"])
        pending = []
        for name in names:
            for record in iter_records(os.path.join(root, name)):
                pending.append(record)
                if len(pending) >= batch:
                    replay_records(
                        self.db._relations, self.db._dictionary, pending
                    )
                    pending = []
        if pending:
            replay_records(
                self.db._relations, self.db._dictionary, pending
            )
        # The stamp-exact handoff: file replay reproduced the leader's
        # mutation_stamp sequences, so the next sync() pulls exact
        # deltas from here — never a reseed.
        dictionary = self.db._dictionary
        self._dict_len = len(dictionary) if dictionary is not None else 0
        self._leader_stamps = {
            rel.name: rel.mutation_stamp for rel in self.db
        }

    # ------------------------------------------------------------------
    # the replication loop
    # ------------------------------------------------------------------
    def sync(self) -> Dict[str, int]:
        """One replication round; returns ``{applied, reseeded}``."""
        if self._feed is None:
            raise ReplicationError(
                "this follower was bootstrapped from WAL files only; "
                "give it a feed to sync against a live leader"
            )
        payload = self._call(
            "pull",
            self._feed.pull,
            dict(self._leader_stamps),
            self._dict_len,
        )
        # Application failures are *fatal*, never retried: a payload
        # that arrived intact over the transport but does not decode
        # or apply is corrupt at the source, and re-pulling the same
        # bytes cannot fix it.
        try:
            self._grow_dictionary(
                payload["dict_values"], payload["dict_len"]
            )
            applied = reseeded = 0
            for entry in payload["relations"]:
                if self._apply_entry(entry):
                    reseeded += 1
                else:
                    applied += 1
        except ReplicationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"corrupt pull payload: {exc}"
            ) from exc
        return {"applied": applied, "reseeded": reseeded}

    def _call(self, label: str, fn, *args):
        """Run one transport call under the retry/backoff policy.

        Failures are classified, not treated uniformly: a transport
        that cannot be *reached* — :class:`TransientReplicationError`,
        or the builtin connection-shaped exceptions a raw socket
        transport raises (``ConnectionError`` covers refused/reset,
        ``TimeoutError`` and other ``OSError``\\ s cover the rest) —
        is retried with exponential backoff; anything else, payload
        corruption included, is *fatal* and surfaces immediately (a
        corrupt pickle re-fetched from the same leader stays corrupt;
        retrying only hides the real failure behind a timeout).
        """
        deadline = (
            self._clock() + self.timeout
            if self.timeout is not None
            else None
        )
        delay = self.backoff
        for attempt in range(1, self.retries + 1):
            try:
                return fn(*args)
            except TransientReplicationError as exc:
                self._backoff_or_raise(
                    label, exc, attempt, deadline, delay
                )
                delay *= 2
            except ReplicationError:
                raise  # non-transient by definition: do not retry
            except (ConnectionError, TimeoutError, OSError) as exc:
                self._backoff_or_raise(
                    label, exc, attempt, deadline, delay
                )
                delay *= 2

    def _backoff_or_raise(
        self, label: str, exc, attempt: int, deadline, delay: float
    ) -> None:
        """Sleep before the next attempt, or escalate to terminal."""
        if attempt == self.retries:
            raise ReplicationError(
                f"replication {label} failed after "
                f"{attempt} attempts: {exc}"
            ) from exc
        if deadline is not None and self._clock() >= deadline:
            raise ReplicationError(
                f"replication {label} timed out after "
                f"{attempt} attempts: {exc}"
            ) from exc
        self._sleep(delay)

    # ------------------------------------------------------------------
    # applying payloads
    # ------------------------------------------------------------------
    def _grow_dictionary(self, values, leader_len: int) -> None:
        dictionary = getattr(self.db, "_dictionary", None)
        if dictionary is None:
            self._dict_len = leader_len
            return
        for value in values:
            dictionary.encode(value)
        if len(dictionary) != leader_len:
            raise ReplicationError(
                f"dictionary replica diverged: leader has "
                f"{leader_len} values, replica {len(dictionary)}"
            )
        self._dict_len = leader_len

    def _apply_entry(self, entry: Dict[str, Any]) -> bool:
        """Apply one per-relation payload; True when it (re)seeded."""
        name, arity = entry["name"], entry["arity"]
        rel = self.db.ensure_relation(name, arity)
        self._leader_stamps[name] = entry["stamp"]
        if entry["mode"] == "delta":
            self._apply_delta(rel, entry["inserted"], entry["deleted"])
            return False
        self._apply_seed(rel, entry["content"])
        return True

    def _apply_delta(self, rel, inserted, deleted) -> None:
        del_rows = _rows_of(deleted)
        ins_rows = _rows_of(inserted)
        coded = isinstance(rel, ColumnarRelation)
        if len(del_rows) + len(ins_rows) <= self.small_delta:
            for row in del_rows:
                if coded:
                    rel.apply_coded(row, False)
                else:
                    rel.discard(row)
            for row in ins_rows:
                if coded:
                    rel.apply_coded(row, True)
                else:
                    rel.add(row)
            return
        if coded:
            if del_rows:
                rel.remove_coded_batch(
                    np.asarray(del_rows, dtype=np.int64).reshape(
                        len(del_rows), rel.arity
                    )
                )
            if ins_rows:
                rel.add_coded_batch(
                    np.asarray(ins_rows, dtype=np.int64).reshape(
                        len(ins_rows), rel.arity
                    )
                )
        else:
            if del_rows:
                rel.remove_batch(del_rows)
            if ins_rows:
                rel.add_all(ins_rows)

    def _apply_seed(self, rel, content) -> None:
        """Converge on full leader content by set difference.

        Diffing (rather than clearing and reloading) keeps the
        reseed's write volume proportional to the actual divergence
        and leaves the follower's own delta history intact for rows
        that never changed.
        """
        theirs = set(_rows_of(content)) if not isinstance(
            content, np.ndarray
        ) else {tuple(r) for r in content.tolist()}
        if isinstance(rel, ColumnarRelation):
            mine = {tuple(r) for r in rel.codes().tolist()}
        else:
            mine = set(rel)
        stale = list(mine - theirs)
        fresh = list(theirs - mine)
        self._apply_delta(rel, fresh, stale)

    # ------------------------------------------------------------------
    # serving (delegates to the replica session)
    # ------------------------------------------------------------------
    def prepare(self, query, **kwargs):
        return self.session.prepare(query, **kwargs)

    def execute(self, query, **kwargs):
        return self.session.execute(query, **kwargs)

    def close(self) -> None:
        """Release the replica's resources (see :meth:`Session.close`)."""
        self.session.close()

    def __enter__(self) -> "FollowerSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FollowerSession({self.db!r}, "
            f"stamps={self._leader_stamps})"
        )
