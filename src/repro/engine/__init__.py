"""The unified query engine: classify once, plan once, serve forever.

This package is the repo's primary public API.  The paper's central
message is that a conjunctive query's *structure* decides which
evaluation guarantees are attainable; the engine does that dispatch so
callers stop doing it by hand::

    from repro import connect

    session = connect({"Lives": [...], "Hub": [...]})
    prepared = session.prepare(
        "q(person, city) :- Lives(person, city), Hub(city)"
    )
    print(prepared.explain())       # pipelines + theorems + rationale
    answers = prepared.run()        # uniform lazy AnswerSet
    len(answers)                    # dichotomy-optimal counting
    answers[10:20]                  # paging via lex direct access
    next(iter(answers))             # constant-delay enumeration
    answers.aggregate(MIN_PLUS)     # FAQ semiring aggregation
    session.add("Hub", ("paris",))  # prepared queries stay live

Layers:

- :mod:`repro.engine.planner` — :func:`plan_query` turns one
  :func:`repro.classify.classify` pass into a :class:`Plan`: a
  pipeline route per capability with the theorem citations and cost
  expressions quoted from the classifier's verdicts, plus the
  execution-backend choice (columnar above a size cutoff).
- :mod:`repro.engine.prepared` — :class:`PreparedQuery` (lazy, cached
  answer structures; live under updates) and :class:`AnswerSet` (the
  uniform ``len`` / iterate / ``[i]`` / slice / aggregate handle).
- :mod:`repro.engine.session` — :class:`Session` / :func:`connect`:
  database ownership, update flow, and backend mirrors; with
  ``connect(path=...)`` the session is durable (WAL + checkpoints,
  see :mod:`repro.db.wal`) and ``Session.checkpoint()`` persists the
  prepared plans for a warm restart.
- :mod:`repro.engine.replication` — :class:`LeaderFeed` /
  :class:`FollowerSession`: read-only replica sessions that consume
  shipped ``delta_since`` batches with retry/backoff and fall back
  to snapshot reseed across history barriers.

The low-level pipelines remain public and are what the engine runs
underneath — see the "which API do I want" table in :mod:`repro`.
"""

from repro.engine.planner import Plan, PlanRoute, plan_query
from repro.engine.prepared import AnswerSet, PreparedQuery
from repro.engine.replication import (
    FollowerSession,
    LeaderFeed,
    ReplicationError,
    TransientReplicationError,
)
from repro.engine.session import Session, connect

__all__ = [
    "AnswerSet",
    "FollowerSession",
    "LeaderFeed",
    "Plan",
    "PlanRoute",
    "PreparedQuery",
    "ReplicationError",
    "Session",
    "TransientReplicationError",
    "connect",
    "plan_query",
]
