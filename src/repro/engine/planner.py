"""Classifier-driven query planning for the engine facade.

The paper's dichotomies decide, from a query's *structure* alone, which
evaluation pipeline meets its best possible bounds — Yannakakis for
Boolean acyclic queries (Theorem 3.1), FAQ message passing for
free-connex counting (Theorem 3.13), constant-delay enumeration
(Theorem 3.17), lexicographic direct access over a layered join tree
(Theorem 3.24 / Corollary 3.22), and worst-case-optimal joins as the
cyclic fallback (Theorem 3.7).  :func:`plan_query` turns one
:func:`repro.classify.classify` pass into an executable :class:`Plan`:
one route per serving capability (``decide`` / ``count`` / ``iterate``
/ ``access`` / ``aggregate``), each quoting the theorem and cost
expression of the corresponding :class:`repro.classify.report.
TaskVerdict`, plus the chosen execution backend (columnar above
:data:`repro.db.interface.DEFAULT_COLUMNAR_CUTOFF` tuples, python
below).

The planner never reads tuples: order admissibility is decided from
the reduced bag family
(:func:`repro.hypergraph.freeconnex.free_variable_bags` fed to
:func:`repro.direct_access.layered.find_layered_tree`), so the plan —
and :meth:`Plan.render`, the ``explain()`` text — is a pure function
of (query, order, backend, input size).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.classify.classifier import classify
from repro.classify.report import QueryClassification
from repro.db.interface import (
    DEFAULT_COLUMNAR_CUTOFF,
    DEFAULT_SHARD_CUTOFF,
    preferred_backend,
    preferred_shard_count,
)
from repro.direct_access.layered import find_layered_tree
from repro.hypergraph.freeconnex import free_variable_bags
from repro.hypergraph.trios import trio_free_order
from repro.query.cq import ConjunctiveQuery

# Exhaustive layered-order search is capped at this many head
# variables (4! = 24 admissibility checks); larger heads fall back to
# the head order plus the trio-free candidate.
_MAX_ORDER_SEARCH = 4

# Plan families — which serving shape the query admits.
BOOLEAN = "boolean"
FREE_CONNEX = "free-connex"
ACYCLIC_MATERIALIZE = "acyclic-materialize"
CYCLIC_MATERIALIZE = "cyclic-materialize"


@dataclass(frozen=True)
class PlanRoute:
    """One capability's chosen pipeline, with its complexity pedigree.

    ``cost`` and ``theorem`` are quoted from the classifier's
    :class:`~repro.classify.report.TaskVerdict` for the matching task
    wherever one exists, so the plan's claims stay in sync with the
    dichotomy reports.
    """

    capability: str
    algorithm: str
    cost: str
    theorem: str
    note: str = ""

    def render(self) -> str:
        line = (
            f"  {self.capability:<9} via {self.algorithm}"
            f" -- {self.cost} [{self.theorem}]"
        )
        if self.note:
            line += f"\n{'':13} note: {self.note}"
        return line


@dataclass
class Plan:
    """An executable serving plan for one prepared query."""

    query_text: str
    family: str
    backend: str
    backend_reason: str
    order: Optional[Tuple[str, ...]]
    access_admissible: bool
    maintained_count: bool
    classification: QueryClassification
    routes: Tuple[PlanRoute, ...]
    # 1 = unsharded; > 1 only when backend == "sharded": the hot
    # pipelines then run one message per shard and merge (group_reduce
    # over the concatenation of per-shard messages).
    shard_count: int = 1
    # Shard-executor width: 1 = serial, > 1 = per-shard work fans out
    # over a thread pool of this many workers (repro.db.executor).
    # Meaningful only when backend == "sharded".
    workers: int = 1
    # Measured per-relation statistics (pre-rendered lines from
    # Session._measure_statistics): rows, per-column distinct counts,
    # shard-size histograms.  They break Generic Join variable-order
    # ties and explain() cites them next to the theorem citations.
    stats: Tuple[str, ...] = ()
    # "numba" when compiled fused semiring kernels are active for this
    # process, else "numpy" (repro.semiring.kernels.kernel_backend).
    kernel_backend: str = "numpy"

    def route(self, capability: str) -> PlanRoute:
        """Look up one capability's route by name."""
        for route in self.routes:
            if route.capability == capability:
                return route
        raise KeyError(f"no route for capability {capability!r}")

    def render(self) -> str:
        """The human-readable plan — ``PreparedQuery.explain()``."""
        c = self.classification
        lines = [
            f"plan for {self.query_text}",
            f"  family:   {self.family}",
            f"  backend:  {self.backend} ({self.backend_reason})",
            (
                f"  structure: acyclic={c.acyclic}"
                f" free-connex={c.free_connex}"
                f" self-join-free={c.self_join_free}"
                f" rho*={c.agm_exponent:.3f}"
            ),
        ]
        if self.backend == "sharded":
            lines.append(
                f"  shards:   {self.shard_count} (hash-partitioned on"
                " the key column; one FAQ message per shard, merged by"
                " group_reduce over their concatenation)"
            )
            if self.workers > 1:
                executor = (
                    f"threaded({self.workers} workers): per-shard maps"
                    " fan out over a shared thread pool, merged in"
                    " shard order (bit-identical to serial)"
                )
            else:
                executor = "serial: shards are visited one at a time"
            lines.append(f"  executor: {executor}")
            lines.append(
                "  joins:    shard-by-shard co-partitioned when both"
                " sides are hash-partitioned on the same variable"
                " (shard i joins shard i only); broadcast otherwise"
            )
        if self.order is not None:
            lines.append(f"  order:    {' > '.join(self.order)}")
        for stat in self.stats:
            lines.append(f"  stats:    {stat}")
        wcoj = any(
            "worst-case-optimal" in route.algorithm
            for route in self.routes
        )
        if wcoj:
            if self.backend in ("columnar", "sharded"):
                strategy = (
                    "breadth-first frontier arrays (all prefixes per"
                    " level extended at once; zero per-row decodes"
                )
                if self.backend == "sharded":
                    strategy += (
                        f"; frontiers split into {self.shard_count}"
                        " chunks per level through the shard executor"
                    )
                strategy += ")"
                if self.stats:
                    strategy += (
                        "; variable-order ties broken by the measured"
                        " distinct counts above"
                    )
            else:
                strategy = (
                    "depth-first search over prefix tries"
                    " (explicit stack; python backend)"
                )
            lines.append(f"  wcoj:     {strategy}")
        if self.backend in ("columnar", "sharded"):
            if self.kernel_backend == "numba":
                kernels = (
                    "numba: fused group-reduce/gather/combine compiled"
                    " per semiring (REPRO_KERNELS)"
                )
            else:
                kernels = (
                    "numpy: fused group-lookup via reduceat +"
                    " searchsorted (numba not active)"
                )
            lines.append(f"  kernels:  {kernels}")
        for route in self.routes:
            lines.append(route.render())
        if self.maintained_count:
            updates = (
                "session.add/discard fold delta messages into the "
                "maintained structures (O(depth) per tuple)"
            )
        else:
            updates = (
                "session.add/discard bump mutation stamps; served "
                "structures refresh or recompute before answering"
            )
        lines.append(f"  updates:  {updates}")
        return "\n".join(lines)


def _choose_order(
    query: ConjunctiveQuery,
    bags: Optional[Dict[int, FrozenSet[str]]],
) -> Tuple[Tuple[str, ...], bool]:
    """A lexicographic order for the head, preferring admissible ones.

    Candidates: the head as written, the trio-free order of the query
    (join queries; [27] ties trio-freeness to layered-tree existence),
    then — for small heads — every permutation.  Returns the first
    order admitting a layered join tree over the reduced bags, or
    ``(head, False)`` when none does (access then materializes).
    """
    head = tuple(query.head)
    if bags is None:
        return head, False
    candidates = [head]
    if query.is_join_query():
        trio_free = trio_free_order(query)
        if trio_free is not None:
            candidates.append(tuple(trio_free))
    if len(head) <= _MAX_ORDER_SEARCH:
        candidates.extend(permutations(head))
    seen = set()
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        if find_layered_tree(bags, candidate) is not None:
            return candidate, True
    return head, False


def plan_query(
    query: ConjunctiveQuery,
    size: int,
    stored_backend: str = "python",
    order: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    cutoff: Optional[int] = None,
    shard_cutoff: Optional[int] = None,
    stored_shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    stats: Sequence[str] = (),
) -> Plan:
    """Classify ``query`` and select pipelines for every capability.

    ``size``/``stored_backend`` describe the input (for the backend
    cutoffs); ``order`` fixes the lexicographic access order (default:
    the planner searches for an admissible one); ``backend`` forces
    the execution backend.  Above ``shard_cutoff`` tuples (default
    :data:`repro.db.interface.DEFAULT_SHARD_CUTOFF`) the plan picks
    the ``"sharded"`` backend and a shard count sized by
    :func:`repro.db.interface.preferred_shard_count` (or the stored
    partitioning, when the database is already sharded —
    ``stored_shard_count``); ``explain()`` then reports the
    partitioning.  ``workers`` records the shard-executor width the
    session will dispatch with (``explain()`` reports serial vs.
    threaded fan-out on sharded plans).  ``stats`` carries measured
    per-relation statistics the *session* collected (the planner stays
    pure — no relation is read here); ``explain()`` cites them and the
    worst-case-optimal routes note that variable-order ties break on
    them.
    """
    classification = classify(query)
    if backend is not None:
        chosen = backend
        reason = "forced by caller"
    else:
        chosen = preferred_backend(size, stored_backend, cutoff, shard_cutoff)
        cut = DEFAULT_COLUMNAR_CUTOFF if cutoff is None else cutoff
        shard_cut = (
            DEFAULT_SHARD_CUTOFF if shard_cutoff is None else shard_cutoff
        )
        if chosen == stored_backend and chosen in ("columnar", "sharded"):
            reason = f"database already {chosen}"
        elif chosen == "sharded":
            reason = f"m={size} >= shard cutoff {shard_cut}"
        elif chosen == "columnar":
            reason = f"m={size} >= cutoff {cut}"
        else:
            reason = f"m={size} < cutoff {cut}"
    if chosen != "sharded":
        shard_count = 1
    elif stored_backend == "sharded" and stored_shard_count:
        shard_count = stored_shard_count
    else:
        shard_count = preferred_shard_count(size)
    plan_workers = workers if (chosen == "sharded" and workers) else 1

    if query.is_boolean():
        if order is not None:
            raise ValueError("Boolean queries admit no answer order")
        return _plan_boolean(
            query, classification, chosen, reason, shard_count,
            plan_workers, tuple(stats),
        )

    head = tuple(query.head)
    bags = (
        free_variable_bags(query) if classification.free_connex else None
    )
    if order is not None:
        chosen_order = tuple(order)
        if sorted(chosen_order) != sorted(head):
            raise ValueError(
                f"order {chosen_order} must be a permutation of the "
                f"head variables {head}"
            )
        admissible = (
            bags is not None
            and find_layered_tree(bags, chosen_order) is not None
        )
    else:
        chosen_order, admissible = _choose_order(query, bags)

    if classification.free_connex:
        family = FREE_CONNEX
    elif classification.acyclic:
        family = ACYCLIC_MATERIALIZE
    else:
        family = CYCLIC_MATERIALIZE
    maintained = (
        family == FREE_CONNEX
        and query.is_join_query()
        and chosen in ("columnar", "sharded")
    )
    routes = (
        _count_route(query, classification, family, maintained),
        _iterate_route(classification, family),
        _access_route(classification, family, chosen_order, admissible),
        _aggregate_route(query, classification, family, maintained),
    )
    return Plan(
        query_text=str(query),
        family=family,
        backend=chosen,
        backend_reason=reason,
        order=chosen_order,
        access_admissible=admissible,
        maintained_count=maintained,
        classification=classification,
        routes=routes,
        shard_count=shard_count,
        workers=plan_workers,
        stats=tuple(stats),
        kernel_backend=_kernel_backend(),
    )


def _kernel_backend() -> str:
    from repro.semiring.kernels import kernel_backend

    try:
        return kernel_backend()
    except RuntimeError:  # REPRO_KERNELS=numba without numba installed
        return "numpy"


def _plan_boolean(
    query: ConjunctiveQuery,
    classification: QueryClassification,
    backend: str,
    reason: str,
    shard_count: int = 1,
    workers: int = 1,
    stats: Tuple[str, ...] = (),
) -> Plan:
    verdict = classification.verdict("boolean")
    if classification.acyclic:
        algorithm = "Yannakakis semijoin reduction"
    else:
        algorithm = "worst-case-optimal join, first-witness early exit"
    decide = PlanRoute(
        capability="decide",
        algorithm=algorithm,
        cost=verdict.upper_bound,
        theorem=verdict.theorem,
    )
    counting = classification.verdict("counting")
    count = PlanRoute(
        capability="count",
        algorithm="decide, then 0/1",
        cost=counting.upper_bound,
        theorem=counting.theorem,
    )
    return Plan(
        query_text=str(query),
        family=BOOLEAN,
        backend=backend,
        backend_reason=reason,
        order=None,
        access_admissible=False,
        maintained_count=False,
        classification=classification,
        routes=(decide, count),
        shard_count=shard_count,
        workers=workers,
        stats=stats,
        kernel_backend=_kernel_backend(),
    )


def _count_route(
    query: ConjunctiveQuery,
    classification: QueryClassification,
    family: str,
    maintained: bool,
) -> PlanRoute:
    verdict = classification.verdict("counting")
    if family == FREE_CONNEX:
        if maintained:
            algorithm = (
                "FAQ message passing (counting semiring), "
                "incrementally maintained"
            )
        else:
            algorithm = "free-connex FAQ message passing"
        return PlanRoute(
            capability="count",
            algorithm=algorithm,
            cost=verdict.upper_bound,
            theorem=verdict.theorem,
        )
    return PlanRoute(
        capability="count",
        algorithm="materialize and count",
        cost=verdict.upper_bound,
        theorem=verdict.theorem,
        note=verdict.note,
    )


def _iterate_route(
    classification: QueryClassification, family: str
) -> PlanRoute:
    verdict = classification.verdict("enumeration")
    if family == FREE_CONNEX:
        return PlanRoute(
            capability="iterate",
            algorithm="constant-delay enumeration",
            cost=verdict.upper_bound,
            theorem=verdict.theorem,
        )
    return PlanRoute(
        capability="iterate",
        algorithm="materialize, then stream in order",
        cost=verdict.upper_bound,
        theorem=verdict.theorem,
        note=(
            "no constant-delay guarantee: the query is not free-connex,"
            " so linear preprocessing with constant delay is ruled out"
            " on the hard side of the enumeration dichotomy"
        ),
    )


def _access_route(
    classification: QueryClassification,
    family: str,
    order: Tuple[str, ...],
    admissible: bool,
) -> PlanRoute:
    verdict = classification.find("direct-access")
    theorem = (
        verdict.theorem if verdict is not None
        else "Theorem 3.18 / Corollary 3.22"
    )
    rendered = " > ".join(order)
    if admissible:
        return PlanRoute(
            capability="access",
            algorithm=f"lex direct access on ({rendered})",
            cost="Õ(m) preprocessing + Õ(log m) per access",
            theorem="Theorem 3.24 / Corollary 3.22",
        )
    sort_cost = "O(output) preprocessing (sort), O(1) per access"
    if family == FREE_CONNEX:
        return PlanRoute(
            capability="access",
            algorithm="materialize and sort",
            cost=sort_cost,
            theorem="Theorem 3.24 / Lemma 3.23",
            note=(
                f"order ({rendered}) admits no layered join tree "
                "(disruptive trio); pages are served from the sorted "
                "materialization"
            ),
        )
    return PlanRoute(
        capability="access",
        algorithm="materialize and sort",
        cost=sort_cost,
        theorem=theorem,
        note=(
            "no constant-delay guarantee: superlinear preprocessing is"
            " unavoidable for non-free-connex queries"
        ),
    )


def _aggregate_route(
    query: ConjunctiveQuery,
    classification: QueryClassification,
    family: str,
    maintained: bool,
) -> PlanRoute:
    if query.is_join_query() and classification.acyclic:
        algorithm = "FAQ semiring message passing"
        if maintained:
            algorithm += ", incrementally maintained"
        return PlanRoute(
            capability="aggregate",
            algorithm=algorithm,
            cost="Õ(m)",
            theorem="Section 4.1.2 / [59]",
        )
    if query.is_join_query():
        return PlanRoute(
            capability="aggregate",
            algorithm="worst-case-optimal join + fold",
            cost=f"Õ(m^{classification.agm_exponent:.3f})",
            theorem="Section 4.1.2",
        )
    if family == FREE_CONNEX:
        return PlanRoute(
            capability="aggregate",
            algorithm="free-connex reduction + FAQ (unit weights)",
            cost="Õ(m)",
            theorem="Theorem 3.13 / Section 4.1.2",
        )
    return PlanRoute(
        capability="aggregate",
        algorithm="fold over materialized answers (unit weights)",
        cost="O(full-join size)",
        theorem="Section 4.1.2",
        note="projected non-free-connex query: aggregate = fold of 1s",
    )
