"""The :class:`Session`: the engine's front door.

A session owns a :class:`~repro.db.database.Database`, prepares
queries against it, and funnels updates to every execution copy, so
prepared queries stay live::

    from repro import connect

    session = connect({"R": [(1, 2)], "S": [(2, 3)]})
    prepared = session.prepare("q(x, y) :- R(x, z), S(z, y)")
    answers = prepared.run()
    len(answers); answers[0]; list(answers)
    session.add("R", (1, 9)); session.discard("S", (2, 3))
    len(answers)            # reflects the updates, never stale

**Execution backends and mirrors.**  The planner picks the execution
backend per prepared query (columnar above
:data:`repro.db.interface.DEFAULT_COLUMNAR_CUTOFF` total tuples,
python below; override with ``prepare(backend=...)`` or the session's
``columnar_cutoff``).  When the chosen backend differs from the stored
one, the session materializes a *mirror* — a one-time
:meth:`~repro.db.database.Database.to_backend` conversion — and keeps
it in sync by applying every :meth:`add` / :meth:`discard` to the
primary and all mirrors.  Updates must therefore flow through the
session; mutating ``session.db`` relations directly while a mirror
exists desynchronizes the mirror (prepared queries on the primary
still self-repair through their mutation stamps).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.db.database import Database
from repro.db.interface import (
    DEFAULT_COLUMNAR_CUTOFF,
    check_backend,
)
from repro.engine.planner import plan_query
from repro.engine.prepared import AnswerSet, PreparedQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.semiring.semirings import Semiring

QueryLike = Union[str, ConjunctiveQuery]


class Session:
    """Prepared-query serving over one database.

    ``db`` may be a :class:`Database`, a ``{name: rows}`` mapping
    (converted via :meth:`Database.from_dict`), or ``None`` for an
    empty database; ``backend`` selects the stored backend in the
    latter two cases.  ``columnar_cutoff`` tunes the planner's
    backend switchover point.
    """

    def __init__(
        self,
        db: Union[Database, Mapping, None] = None,
        backend: str = "python",
        columnar_cutoff: int = DEFAULT_COLUMNAR_CUTOFF,
    ) -> None:
        check_backend(backend)
        if db is None:
            db = Database(backend=backend)
        elif isinstance(db, Mapping):
            db = Database.from_dict(db, backend=backend)
        elif not isinstance(db, Database):
            raise TypeError(
                f"db must be a Database, a mapping, or None; got "
                f"{type(db).__name__}"
            )
        self.db = db
        self.columnar_cutoff = columnar_cutoff
        self._mirrors: dict = {}

    # ------------------------------------------------------------------
    # preparing and running queries
    # ------------------------------------------------------------------
    def prepare(
        self,
        query: QueryLike,
        order: Optional[Sequence[str]] = None,
        semiring: Optional[Semiring] = None,
        backend: Optional[str] = None,
    ) -> PreparedQuery:
        """Classify, plan, and return a live :class:`PreparedQuery`.

        ``query`` is datalog-style text or a parsed
        :class:`ConjunctiveQuery`; ``order`` fixes the paging order
        (default: the planner finds an admissible one); ``semiring``
        sets the default for ``AnswerSet.aggregate()``; ``backend``
        forces the execution backend.  Relations the query mentions
        are created empty when absent, so serving can start before
        ingestion.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if backend is not None:
            check_backend(backend)
        self._ensure_relations(query)
        plan = plan_query(
            query,
            size=self.db.size(),
            stored_backend=self.db.backend,
            order=order,
            backend=backend,
            cutoff=self.columnar_cutoff,
        )
        execution_db = self._execution_db(plan.backend)
        return PreparedQuery(self, query, plan, execution_db, semiring)

    def execute(self, query: QueryLike, **kwargs) -> AnswerSet:
        """``prepare(...).run()`` in one call (ad-hoc queries)."""
        return self.prepare(query, **kwargs).run()

    # ------------------------------------------------------------------
    # updates (the only supported mutation path)
    # ------------------------------------------------------------------
    def add(self, relation: str, row: Iterable) -> None:
        """Insert one tuple, in the primary database and all mirrors."""
        row = tuple(row)
        for db in self._all_databases():
            db.ensure_relation(relation, len(row)).add(row)

    def discard(self, relation: str, row: Iterable) -> None:
        """Delete one tuple (no-op when absent), everywhere."""
        row = tuple(row)
        for db in self._all_databases():
            if relation in db:
                db[relation].discard(row)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total tuples in the primary database (the paper's ``m``)."""
        return self.db.size()

    def relation(self, name: str):
        """The primary database's relation (read-only by convention)."""
        return self.db[name]

    @property
    def backends(self) -> tuple:
        """Backends with a live execution copy (primary first)."""
        return (self.db.backend, *self._mirrors.keys())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _all_databases(self):
        yield self.db
        yield from self._mirrors.values()

    def _ensure_relations(self, query: ConjunctiveQuery) -> None:
        for atom in query.atoms:
            for db in self._all_databases():
                db.ensure_relation(atom.relation, atom.arity)

    def _execution_db(self, backend: str) -> Database:
        if backend == self.db.backend:
            return self.db
        mirror = self._mirrors.get(backend)
        if mirror is None:
            mirror = self.db.to_backend(backend)
            self._mirrors[backend] = mirror
        return mirror

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.db!r}, cutoff={self.columnar_cutoff})"
        )


def connect(
    db: Union[Database, Mapping, None] = None,
    backend: str = "python",
    columnar_cutoff: int = DEFAULT_COLUMNAR_CUTOFF,
) -> Session:
    """Open a :class:`Session` (the engine's ``connect(...)`` idiom)."""
    return Session(db, backend=backend, columnar_cutoff=columnar_cutoff)
