"""The :class:`Session`: the engine's front door.

A session owns a :class:`~repro.db.database.Database`, prepares
queries against it, and funnels updates to every execution copy, so
prepared queries stay live::

    from repro import connect

    session = connect({"R": [(1, 2)], "S": [(2, 3)]})
    prepared = session.prepare("q(x, y) :- R(x, z), S(z, y)")
    answers = prepared.run()
    len(answers); answers[0]; list(answers)
    session.add("R", (1, 9)); session.discard("S", (2, 3))
    len(answers)            # reflects the updates, never stale

**Execution backends and mirrors.**  The planner picks the execution
backend per prepared query (columnar above
:data:`repro.db.interface.DEFAULT_COLUMNAR_CUTOFF` total tuples,
hash-partitioned *sharded* above
:data:`repro.db.interface.DEFAULT_SHARD_CUTOFF`, python below;
override with ``prepare(backend=...)`` or the session's
``columnar_cutoff``).  When the chosen backend differs from the stored
one, the session materializes a *mirror* — a one-time
:meth:`~repro.db.database.Database.to_backend` conversion — and keeps
it in sync by applying every :meth:`add` / :meth:`discard` to the
primary and all mirrors.  Mirrors may be sharded: a sharded mirror's
relations route each update to the owning shard internally, so the
session's update path is backend-agnostic.  Updates must flow through
the session; mutating ``session.db`` relations directly while a
mirror exists desynchronizes the mirror (prepared queries on the
primary still self-repair through their mutation stamps).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.db.database import Database, attach
from repro.db.executor import executor_of
from repro.db.interface import (
    DEFAULT_COLUMNAR_CUTOFF,
    check_backend,
    preferred_backend,
)
from repro.engine.planner import plan_query
from repro.engine.prepared import AnswerSet, PreparedQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.semiring.semirings import Semiring
from repro.util.locks import ReadWriteLock

QueryLike = Union[str, ConjunctiveQuery]

#: Prepared-plan manifest written next to a durable database by
#: :meth:`Session.checkpoint` and replayed by ``connect(path=...)``
#: so a restarted session re-prepares its plans *warm* — against the
#: recovered relations — instead of each caller re-deriving them.
SESSION_FILE = "session.json"


class Session:
    """Prepared-query serving over one database.

    ``db`` may be a :class:`Database`, a ``{name: rows}`` mapping
    (converted via :meth:`Database.from_dict`), or ``None`` for an
    empty database; ``backend`` selects the stored backend in the
    latter two cases.  ``columnar_cutoff`` tunes the planner's
    backend switchover point.
    """

    def __init__(
        self,
        db: Union[Database, Mapping, None] = None,
        backend: str = "python",
        columnar_cutoff: int = DEFAULT_COLUMNAR_CUTOFF,
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
    ) -> None:
        check_backend(backend)
        if db is None:
            db = Database(
                backend=backend,
                workers=workers,
                spill_dir=spill_dir,
                max_resident_shards=max_resident_shards,
            )
        elif isinstance(db, Mapping):
            db = Database.from_dict(
                db,
                backend=backend,
                workers=workers,
                spill_dir=spill_dir,
                max_resident_shards=max_resident_shards,
            )
        elif not isinstance(db, Database):
            raise TypeError(
                f"db must be a Database, a mapping, or None; got "
                f"{type(db).__name__}"
            )
        elif (
            workers is not None
            or spill_dir is not None
            or max_resident_shards is not None
        ):
            db.configure_shard_runtime(
                workers=workers,
                spill_dir=spill_dir,
                max_resident_shards=max_resident_shards,
            )
        self.db = db
        self.columnar_cutoff = columnar_cutoff
        self.closed = False
        # Single-writer / many-reader contract for multi-threaded
        # embedders (the HTTP serving layer): mutations take the
        # exclusive side, AnswerSet reads take the shared side, so a
        # read never observes a half-applied update across relations.
        self._rw = ReadWriteLock()
        self._mirrors: dict = {}
        # Prepared-plan cache: (canonical query text, order, resolved
        # backend, default semiring) -> PreparedQuery.  Reusing the
        # PreparedQuery also reuses its lazily built (and incrementally
        # maintained) answer structures, so a repeated prepare() of the
        # same query skips re-classification *and* re-preprocessing.
        # Evicted wholesale whenever the relation schema changes.
        self._prepared: dict = {}
        self._schema_token: tuple = ()

    # ------------------------------------------------------------------
    # preparing and running queries
    # ------------------------------------------------------------------
    def prepare(
        self,
        query: QueryLike,
        order: Optional[Sequence[str]] = None,
        semiring: Optional[Semiring] = None,
        backend: Optional[str] = None,
    ) -> PreparedQuery:
        """Classify, plan, and return a live :class:`PreparedQuery`.

        ``query`` is datalog-style text or a parsed
        :class:`ConjunctiveQuery`; ``order`` fixes the paging order
        (default: the planner finds an admissible one); ``semiring``
        sets the default for ``AnswerSet.aggregate()``; ``backend``
        forces the execution backend.  Relations the query mentions
        are created empty when absent, so serving can start before
        ingestion.

        Repeated ``prepare()`` of the same (query, order, backend,
        semiring) returns the cached :class:`PreparedQuery` — no
        re-classification, and its maintained structures carry over.
        The cache key includes the *resolved* backend, so a database
        growing across a planner cutoff replans instead of serving a
        stale backend choice, and the cache is evicted whenever the
        relation schema changes (a relation created or dropped).
        """
        self._check_open()
        if isinstance(query, str):
            query = parse_query(query)
        if backend is not None:
            check_backend(backend)
        self._ensure_relations(query)
        schema_token = tuple(
            sorted((rel.name, rel.arity) for rel in self.db)
        )
        if schema_token != self._schema_token:
            self._prepared.clear()
            self._schema_token = schema_token
        resolved = backend
        if resolved is None:
            resolved = preferred_backend(
                self.db.size(), self.db.backend, self.columnar_cutoff
            )
        key = (
            str(query),
            tuple(order) if order is not None else None,
            resolved,
            semiring,
        )
        cached = self._prepared.get(key)
        if cached is not None:
            return cached
        plan = plan_query(
            query,
            size=self.db.size(),
            stored_backend=self.db.backend,
            order=order,
            backend=backend,
            cutoff=self.columnar_cutoff,
            stored_shard_count=self._stored_shard_count(),
            workers=executor_of(self.db).workers,
            stats=_measure_statistics(self.db, query),
        )
        execution_db = self._execution_db(plan.backend)
        prepared = PreparedQuery(self, query, plan, execution_db, semiring)
        self._prepared[key] = prepared
        return prepared

    def execute(self, query: QueryLike, **kwargs) -> AnswerSet:
        """``prepare(...).run()`` in one call (ad-hoc queries)."""
        return self.prepare(query, **kwargs).run()

    # ------------------------------------------------------------------
    # updates (the only supported mutation path)
    # ------------------------------------------------------------------
    def add(self, relation: str, row: Iterable) -> None:
        """Insert one tuple, in the primary database and all mirrors.

        With several execution copies the fan-out dispatches through
        the shard executor — one task per database (each database has
        its own dictionary and journal, so copies are independent);
        with a single copy or a serial executor this degenerates to
        the plain loop.
        """
        self._check_open()
        row = tuple(row)

        def apply(db: Database) -> None:
            db.ensure_relation(relation, len(row)).add(row)

        with self._rw.write():
            executor_of(self.db).map(apply, list(self._all_databases()))

    def discard(self, relation: str, row: Iterable) -> None:
        """Delete one tuple (no-op when absent), everywhere."""
        self._check_open()
        row = tuple(row)

        def apply(db: Database) -> None:
            if relation in db:
                db[relation].discard(row)

        with self._rw.write():
            executor_of(self.db).map(apply, list(self._all_databases()))

    def add_all(self, relation: str, rows: Sequence) -> None:
        """Bulk insert: one write-lock hold, one batched path per copy.

        The batched relation path (``Relation.add_all``) encodes once
        and routes whole code batches on the columnar/sharded
        backends, so callers streaming many tuples (the network
        ingestion batcher in :mod:`repro.server`) pay per-batch, not
        per-row, engine cost.
        """
        self._check_open()
        rows = [tuple(r) for r in rows]
        if not rows:
            return
        arity = len(rows[0])

        def apply(db: Database) -> None:
            db.ensure_relation(relation, arity).add_all(rows)

        with self._rw.write():
            executor_of(self.db).map(apply, list(self._all_databases()))

    def discard_all(self, relation: str, rows: Sequence) -> None:
        """Bulk delete (absent rows are no-ops), one lock hold."""
        self._check_open()
        rows = [tuple(r) for r in rows]
        if not rows:
            return

        def apply(db: Database) -> None:
            if relation in db:
                rel = db[relation]
                for row in rows:
                    rel.discard(row)

        with self._rw.write():
            executor_of(self.db).map(apply, list(self._all_databases()))

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> str:
        """Checkpoint the durable database and persist prepared plans.

        Requires the session to own a
        :class:`~repro.db.database.DurableDatabase` (open one with
        ``connect(path=...)`` or :func:`repro.db.attach`).  Snapshots
        every relation, rotates the WAL, and writes ``session.json``
        — the prepared queries' text and paging order — next to the
        manifest, so the next ``connect(path=...)`` re-prepares them
        against the recovered data (the *warm restart*: plans and
        answer structures rebuild from ``np.load``-ed codes, not from
        re-ingesting rows).  Returns the snapshot directory path.
        """
        checkpoint_db = getattr(self.db, "checkpoint", None)
        if checkpoint_db is None:
            raise TypeError(
                "session database is not durable; open one with "
                "connect(path=...) or repro.db.attach(path)"
            )
        snapshot_path = checkpoint_db()
        self._save_prepared_specs()
        return snapshot_path

    def _prepared_specs(self) -> List[dict]:
        """JSON-serializable re-prepare specs for the cached plans.

        Semirings are live objects with no stable serial form, so
        entries prepared with an explicit default semiring are
        skipped — their queries still recover cold.  The resolved
        backend is *not* persisted: the planner re-resolves it
        against the recovered sizes, which is the correct choice when
        the database grew across a cutoff since the checkpoint.
        """
        specs: List[dict] = []
        seen = set()
        for text, order, _backend, semiring in self._prepared:
            if semiring is not None:
                continue
            if (text, order) in seen:
                continue
            seen.add((text, order))
            specs.append(
                {
                    "query": text,
                    "order": list(order) if order is not None else None,
                }
            )
        return specs

    def _save_prepared_specs(self) -> None:
        root = self.db.path  # durable databases always have one
        payload = json.dumps(
            {"version": 1, "prepared": self._prepared_specs()}, indent=1
        ).encode("utf-8")
        tmp = os.path.join(root, SESSION_FILE + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, os.path.join(root, SESSION_FILE))

    def _restore_prepared_specs(self) -> None:
        path = os.path.join(getattr(self.db, "path", ""), SESSION_FILE)
        if not os.path.exists(path):
            return
        try:
            with open(path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
            specs = manifest.get("prepared", [])
        except (OSError, ValueError):  # corrupt manifest: stay cold
            return
        for spec in specs:
            try:
                self.prepare(spec["query"], order=spec.get("order"))
            except Exception:
                # A spec that no longer parses or plans (schema moved
                # on) must not block recovery of the data itself.
                continue

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session's resources deterministically.

        Drops the prepared-plan cache (and with it every maintained
        answer structure), closes the primary database and all backend
        mirrors — for a durable session that flushes and closes the
        WAL; for a spilling database it returns shards to RAM and
        deletes the spill files — and marks the session closed:
        further ``prepare``/``add``/``discard`` calls raise.  The
        multi-tenant registry in :mod:`repro.server` relies on this to
        evict idle tenants without leaking open memmaps or WAL file
        handles until garbage collection.  Idempotent.

        Shard-executor thread pools are process-shared per worker
        count and are *not* shut down per session; call
        :func:`repro.db.executor.close_shared_pools` to quiesce them
        globally.
        """
        if self.closed:
            return
        self.closed = True
        with self._rw.write():
            self._prepared.clear()
            for db in self._all_databases():
                closer = getattr(db, "close", None)
                if closer is not None:
                    closer()
            self._mirrors.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("session is closed")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total tuples in the primary database (the paper's ``m``)."""
        return self.db.size()

    def relation(self, name: str):
        """The primary database's relation (read-only by convention)."""
        return self.db[name]

    @property
    def backends(self) -> tuple:
        """Backends with a live execution copy (primary first)."""
        return (self.db.backend, *self._mirrors.keys())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _all_databases(self):
        yield self.db
        yield from self._mirrors.values()

    def _ensure_relations(self, query: ConjunctiveQuery) -> None:
        for atom in query.atoms:
            for db in self._all_databases():
                db.ensure_relation(atom.relation, atom.arity)

    def _stored_shard_count(self) -> Optional[int]:
        """The primary's actual partitioning, for plan reporting."""
        if self.db.backend != "sharded":
            return None
        if self.db.shard_count is not None:
            return self.db.shard_count
        for rel in self.db:
            count = getattr(rel, "shard_count", None)
            if count is not None:
                return count
        return None

    def _execution_db(self, backend: str) -> Database:
        if backend == self.db.backend:
            return self.db
        mirror = self._mirrors.get(backend)
        if mirror is None:
            mirror = self.db.to_backend(backend)
            self._mirrors[backend] = mirror
        return mirror

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.db!r}, cutoff={self.columnar_cutoff})"
        )


def _measure_statistics(
    db: Database, query: ConjunctiveQuery
) -> List[str]:
    """Cheap measured statistics of the query's relations, one line each.

    Row counts always; per-column distinct counts where the backend
    computes them from the dictionary codes
    (``column_distinct_counts`` — cached until the next mutation);
    shard-size histograms on the sharded backend.  The lines feed
    ``Plan.stats``: ``explain()`` cites them verbatim, and the join
    layers consume the same counters directly
    (:func:`repro.joins.generic_join._choose_order` breaks variable
    -order ties on them), so what the plan reports is what executed.
    """
    stats: List[str] = []
    for name in sorted({atom.relation for atom in query.atoms}):
        if name not in db:
            continue
        rel = db[name]
        line = f"{name}: rows={len(rel)}"
        counter = getattr(rel, "column_distinct_counts", None)
        if counter is not None:
            line += f" distinct={tuple(counter())}"
        sizes = getattr(rel, "shard_sizes", None)
        if sizes is not None:
            line += f" shard_sizes={tuple(sizes())}"
        stats.append(line)
    return stats


def connect(
    db: Union[Database, Mapping, None] = None,
    backend: str = "python",
    columnar_cutoff: int = DEFAULT_COLUMNAR_CUTOFF,
    path: Optional[str] = None,
    shard_count: Optional[int] = None,
    sync: str = "batch",
    wal_retain: Optional[int] = None,
    wal_segment_bytes: Optional[int] = None,
    chain_depth: Optional[int] = None,
    degraded: bool = False,
    replica_of=None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    timeout: Optional[float] = None,
    small_delta: Optional[int] = None,
    workers: Optional[int] = None,
    spill_dir: Optional[str] = None,
    max_resident_shards: Optional[int] = None,
):
    """Open a :class:`Session` (the engine's ``connect(...)`` idiom).

    With ``path=...`` the session is *durable*: the directory is
    opened (or recovered) via :func:`repro.db.attach`, every update
    through the session lands in the write-ahead log, and
    :meth:`Session.checkpoint` snapshots data *and* prepared plans.
    Reconnecting to an existing directory is a **warm restart**:
    relations recover from the committed checkpoint plus the WAL
    suffix, and the plans persisted by the last ``checkpoint()`` are
    re-prepared automatically, so the first query after a crash pays
    recovery, not re-ingestion.  ``backend``/``shard_count`` shape a
    fresh directory only (the stored backend wins on recovery);
    ``sync`` picks the WAL fsync policy (``"always"``/``"batch"``/
    ``"never"``).  ``db`` and ``path`` are mutually exclusive.

    Durable robustness knobs (forwarded to :func:`repro.db.attach`,
    documented on :class:`~repro.db.database.DurableDatabase`):
    ``wal_retain`` (sealed WAL segments kept for follower catch-up
    and repair), ``wal_segment_bytes`` (size-triggered WAL rotation),
    ``chain_depth`` (incremental-checkpoint fold depth), and
    ``degraded`` (read-only salvage open).

    With ``replica_of=feed`` the call returns a
    :class:`~repro.engine.replication.FollowerSession` replicating
    from that :class:`~repro.engine.replication.LeaderFeed` (or any
    transport wrapper).  The follower's retry budget is configured
    here — ``retries`` (attempts per transport call), ``backoff``
    (first retry sleep, doubling), ``timeout`` (total seconds per
    call) — along with ``small_delta`` (per-op vs. bulk application
    threshold).  Combining ``replica_of`` with ``path=...`` uses the
    path as the *catch-up* source: the follower cold-bootstraps from
    the leader's checkpoint chain and rotated WAL segment files, then
    hands off to the live feed at a stamp-exact boundary.

    Parallel / out-of-core execution knobs (per-open, never
    persisted): ``workers`` sizes the shard executor — per-shard scans
    and messages fan out over that many threads, results merged in
    shard order so answers stay bit-identical to serial (default: the
    ``REPRO_WORKERS`` environment variable, else serial);
    ``spill_dir`` / ``max_resident_shards`` bound resident shards with
    an LRU spill pool — cold shards' compacted code matrices live on
    disk as memory-maps and fault back in on touch.
    """
    if replica_of is not None:
        if db is not None:
            raise TypeError(
                "connect() takes either an in-memory db or replica_of, "
                "not both"
            )
        from repro.engine.replication import (
            DEFAULT_BACKOFF,
            DEFAULT_RETRIES,
            FollowerSession,
        )

        if isinstance(replica_of, str):
            # "http(s)://host:port/v1/replica/<db>" — replicate over
            # the wire through the HTTP transport adapter; any other
            # value must already be a transport (LeaderFeed-shaped).
            from repro.server.transport import transport_for_url

            replica_of = transport_for_url(replica_of)
        return FollowerSession(
            replica_of,
            retries=DEFAULT_RETRIES if retries is None else retries,
            backoff=DEFAULT_BACKOFF if backoff is None else backoff,
            timeout=timeout,
            columnar_cutoff=columnar_cutoff,
            small_delta=small_delta,
            catchup_path=path,
        )
    if path is not None:
        if db is not None:
            raise TypeError(
                "connect() takes either an in-memory db or a durable "
                "path, not both"
            )
        durable = attach(
            path,
            backend=backend,
            shard_count=shard_count,
            sync=sync,
            wal_retain=wal_retain,
            wal_segment_bytes=wal_segment_bytes,
            chain_depth=chain_depth,
            degraded=degraded,
            workers=workers,
            spill_dir=spill_dir,
            max_resident_shards=max_resident_shards,
        )
        session = Session(durable, columnar_cutoff=columnar_cutoff)
        session._restore_prepared_specs()
        return session
    return Session(
        db,
        backend=backend,
        columnar_cutoff=columnar_cutoff,
        workers=workers,
        spill_dir=spill_dir,
        max_resident_shards=max_resident_shards,
    )
