"""Semijoins and the Yannakakis full reducer.

The full reducer performs one bottom-up and one top-down semijoin pass
over a join tree.  Afterwards the database is *globally consistent*:
every remaining tuple of every relation participates in at least one
full join result.  This O(m) preprocessing is the engine behind all the
linear-time upper bounds of Section 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.vectorized import check_backend, frame_for_atom
from repro.query.cq import ConjunctiveQuery


def semijoin(target: Frame, source: Frame) -> Frame:
    """``target ⋉ source`` — see :meth:`Frame.semijoin`."""
    return target.semijoin(source)


def atom_frames(
    query: ConjunctiveQuery,
    db: Database,
    backend: Optional[str] = None,
) -> List[Frame]:
    """One frame per atom, with repeated-variable selections applied.

    Each frame uses the backend of its stored relation (so a columnar
    database flows into the vectorized join stack automatically).  Pass
    ``backend=`` to force one backend: relations stored the other way
    are converted *once per relation symbol* (self-joins reuse the
    conversion) at the store level, so the repeated-variable selection
    and projection always run on the target backend — forcing
    ``"columnar"`` never builds a Python frame first, and forcing
    ``"python"`` decodes each relation exactly once.
    """
    query.validate_database(db)
    if backend is None:
        return [
            frame_for_atom(db[atom.relation], atom.variables)
            for atom in query.atoms
        ]
    check_backend(backend)
    shared_dictionary = Dictionary()
    converted: Dict[str, object] = {}

    def store_for(name: str):
        relation = db[name]
        wrong_way = (
            not isinstance(relation, ColumnarRelation)
            if backend == "columnar"
            else isinstance(relation, ColumnarRelation)
        )
        if not wrong_way:
            return relation
        if name not in converted:
            if backend == "columnar":
                converted[name] = ColumnarRelation(
                    relation.name,
                    relation.arity,
                    relation,
                    dictionary=shared_dictionary,
                )
            else:
                converted[name] = Relation(
                    relation.name, relation.arity, relation.rows()
                )
        return converted[name]

    return [
        frame_for_atom(store_for(atom.relation), atom.variables)
        for atom in query.atoms
    ]


def full_reducer_pass(
    frames: Dict[int, Frame], tree: JoinTree
) -> Dict[int, Frame]:
    """Run the two semijoin passes of the Yannakakis full reducer.

    ``frames`` maps join-tree node ids to frames; the tree's node ids
    must be the frame keys.  Returns a new dict of reduced frames
    (inputs are not mutated).  Nodes reduced to empty frames mean the
    query has no answers.
    """
    if set(frames) != set(tree.bags):
        raise ValueError("frames and join tree nodes disagree")
    reduced = dict(frames)
    # Bottom-up: each parent keeps only tuples extensible into every
    # child's subtree.
    for node in tree.bottom_up():
        parent = tree.parent.get(node)
        if parent is not None:
            reduced[parent] = reduced[parent].semijoin(reduced[node])
    # Top-down: each child keeps only tuples consistent with the parent,
    # which by induction is already globally consistent above.
    for node in tree.top_down():
        parent = tree.parent.get(node)
        if parent is not None:
            reduced[node] = reduced[node].semijoin(reduced[parent])
    return reduced


def reduce_query(
    query: ConjunctiveQuery, db: Database, tree: JoinTree
) -> Dict[int, Frame]:
    """Atom frames after full reduction over ``tree``.

    Tree node ids must be atom indices (as produced by
    ``join_tree(query.hypergraph())``).
    """
    frames = dict(enumerate(atom_frames(query, db)))
    return full_reducer_pass(frames, tree)


def is_globally_consistent(
    frames: Dict[int, Frame], tree: JoinTree
) -> bool:
    """Check pairwise consistency along tree edges (test helper).

    After a correct full reduction, for every tree edge the two frames
    agree on their shared variables: each side's projection onto the
    separator is contained in the other's.
    """
    for child, parent in tree.edges():
        shared = tuple(
            v
            for v in frames[child].variables
            if v in frames[parent].variables
        )
        child_keys = frames[child].to_tuples(shared)
        parent_keys = frames[parent].to_tuples(shared)
        if child_keys != parent_keys:
            return False
    return True
