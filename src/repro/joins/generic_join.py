"""A worst-case-optimal join (Generic Join / NPRR, paper Section 2.1).

Generic Join processes variables one at a time: having fixed a prefix
assignment, the candidate values for the next variable are obtained by
intersecting, over all atoms containing it, the values consistent with
the prefix — always iterating the smallest candidate set.  Ngo–Porat–
Ré–Rudra / Ngo's survey [65] show this runs in Õ(m^{ρ*}), matching the
AGM output bound, for *any* variable order.

This is the algorithm behind:

- the Õ(m^{3/2}) triangle join of Section 3.1.1 (ρ* = 3/2), and
- the Õ(m^{1+1/(k-1)}) Loomis–Whitney evaluation of Example 3.4
  (ρ* = k/(k-1)).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.db.columnar import ColumnarRelation, atom_codes
from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery

Assignment = Dict[str, object]


class _AtomIndex:
    """Per-atom trie-like access path for one global variable order.

    For an atom with variables ordered consistently with the global
    order, stores hash indexes from each prefix of the atom's variables
    to the possible next values — the 'sorted trie' of Leapfrog-style
    implementations, realized with dictionaries.
    """

    def __init__(
        self,
        relation_rows: Iterable[Tuple[object, ...]],
        atom_variables: Sequence[str],
        global_order: Sequence[str],
    ) -> None:
        rank = {v: i for i, v in enumerate(global_order)}
        distinct: List[str] = []
        first_pos: Dict[str, int] = {}
        for pos, var in enumerate(atom_variables):
            if var not in first_pos:
                first_pos[var] = pos
                distinct.append(var)
        self.ordered_vars: List[str] = sorted(distinct, key=rank.get)
        positions = [first_pos[v] for v in self.ordered_vars]
        # levels[d] maps a length-d prefix key to the set of values the
        # (d+1)-th ordered variable can take.
        self.levels: List[Dict[Tuple, Set[object]]] = [
            {} for _ in self.ordered_vars
        ]
        for row in relation_rows:
            ok = all(
                row[pos] == row[first_pos[var]]
                for pos, var in enumerate(atom_variables)
            )
            if not ok:
                continue
            key: Tuple = ()
            for depth, pos in enumerate(positions):
                value = row[pos]
                self.levels[depth].setdefault(key, set()).add(value)
                key = key + (value,)

    def candidates(self, assignment: Assignment, var: str) -> Optional[Set[object]]:
        """Possible values of ``var`` given the assignment so far.

        Returns ``None`` when the atom does not constrain ``var`` yet
        (``var`` not in the atom), otherwise the candidate set (possibly
        empty).
        """
        if var not in self.ordered_vars:
            return None
        depth = self.ordered_vars.index(var)
        key = tuple(assignment[v] for v in self.ordered_vars[:depth])
        return self.levels[depth].get(key, set())


class _ColumnarAtomIndex:
    """The prefix trie of :class:`_AtomIndex`, built from sorted arrays.

    Instead of inserting every row into per-depth dictionaries, lexsort
    the atom's code matrix once; then, at each depth ``d``, the distinct
    ``(d+1)``-prefixes and their group boundaries fall out of a single
    vectorized compare of adjacent sorted rows.  Python-level work drops
    from O(rows × depth) dict inserts to O(distinct prefixes), which is
    what makes trie construction cheap on dense AGM-tight instances.

    The resulting ``levels`` structure (and :meth:`candidates`) is
    identical to the Python version's, so the Generic Join recursion is
    byte-for-byte the same for both backends.
    """

    candidates = _AtomIndex.candidates

    def __init__(
        self,
        relation: ColumnarRelation,
        atom_variables: Sequence[str],
        global_order: Sequence[str],
    ) -> None:
        distinct, first_pos, codes = atom_codes(relation, atom_variables)
        rank = {v: i for i, v in enumerate(global_order)}
        self.ordered_vars: List[str] = sorted(distinct, key=rank.get)
        k = len(self.ordered_vars)
        self.levels: List[Dict[Tuple, Set[object]]] = [{} for _ in range(k)]
        if k == 0 or not len(codes):
            return
        sub = codes[:, [first_pos[v] for v in self.ordered_vars]]
        order = np.lexsort(tuple(sub[:, j] for j in reversed(range(k))))
        sub = sub[order]
        # first_diff[i]: first column where row i differs from row i-1
        # (-1 for row 0).  Row i starts a new (d+1)-prefix group iff
        # first_diff[i] <= d.
        if len(sub) > 1:
            neq = sub[1:] != sub[:-1]
            any_neq = neq.any(axis=1)
            first_diff = np.where(any_neq, neq.argmax(axis=1), k)
            first_diff = np.concatenate(([-1], first_diff))
        else:
            first_diff = np.asarray([-1])
        decode = relation.dictionary.decode
        for depth in range(k):
            new_prefix = np.flatnonzero(first_diff <= depth)
            prefix_rows = sub[new_prefix]
            values = [decode(int(c)) for c in prefix_rows[:, depth]]
            # Within the distinct (depth+1)-prefixes, a new key (first
            # ``depth`` columns) starts where the difference occurred
            # strictly before column ``depth``.
            group_start = np.flatnonzero(first_diff[new_prefix] < depth)
            bounds = list(group_start) + [len(new_prefix)]
            level = self.levels[depth]
            for g in range(len(group_start)):
                lo, hi = bounds[g], bounds[g + 1]
                key = tuple(
                    decode(int(c)) for c in prefix_rows[lo, :depth]
                )
                level[key] = set(values[lo:hi])


def _choose_order(
    query: ConjunctiveQuery, order: Optional[Sequence[str]]
) -> List[str]:
    if order is not None:
        order = list(order)
        if set(order) != set(query.variables) or len(order) != len(
            set(order)
        ):
            raise ValueError(
                "variable order must be a permutation of query variables"
            )
        return order
    # Heuristic: repeatedly pick the variable appearing in the most
    # atoms among those adjacent to already-chosen variables (connected
    # orders avoid needless cross products).
    chosen: List[str] = []
    remaining = set(query.variables)
    while remaining:
        def score(v: str) -> Tuple[int, int, str]:
            in_atoms = sum(1 for a in query.atoms if v in a.scope)
            connected = any(
                v in a.scope and any(c in a.scope for c in chosen)
                for a in query.atoms
            )
            return (1 if connected or not chosen else 0, in_atoms, v)

        best = max(sorted(remaining), key=score)
        chosen.append(best)
        remaining.discard(best)
    return chosen


def generic_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> Set[Tuple]:
    """All answers to ``query`` by Generic Join; Õ(m^{ρ*}) for join queries.

    Projections are applied at the end (set semantics); for genuinely
    projected queries prefer the free-connex pipeline.  ``limit`` stops
    the search once that many *head* tuples were produced — with
    ``limit=1`` this is the Boolean early-exit used by
    :func:`generic_join_boolean`.
    """
    query.validate_database(db)
    # Arity-0 atoms bind no variables, so the recursion below never
    # consults them; an empty one nevertheless falsifies the query.
    if any(
        not atom.scope and db[atom.relation].is_empty()
        for atom in query.atoms
    ):
        return set()
    global_order = _choose_order(query, order)
    indexes = [
        (
            _ColumnarAtomIndex(db[a.relation], a.variables, global_order)
            if isinstance(db[a.relation], ColumnarRelation)
            else _AtomIndex(db[a.relation], a.variables, global_order)
        )
        for a in query.atoms
    ]
    head = tuple(query.head)
    answers: Set[Tuple] = set()

    def recurse(depth: int, assignment: Assignment) -> bool:
        """Returns True when the limit was reached (cut the search)."""
        if depth == len(global_order):
            answers.add(tuple(assignment[v] for v in head))
            return limit is not None and len(answers) >= limit
        var = global_order[depth]
        candidate_sets = [
            c
            for idx in indexes
            if (c := idx.candidates(assignment, var)) is not None
        ]
        if not candidate_sets:  # pragma: no cover - defensive
            # Cannot happen: every query variable occurs in some atom,
            # and atom tries are keyed consistently with the global
            # order, so at least one atom constrains ``var`` here.
            raise RuntimeError(f"variable {var!r} is unconstrained")
        smallest = min(candidate_sets, key=len)
        for value in smallest:
            if all(value in c for c in candidate_sets if c is not smallest):
                assignment[var] = value
                if recurse(depth + 1, assignment):
                    del assignment[var]
                    return True
                del assignment[var]
        return False

    recurse(0, {})
    return answers


def generic_join_boolean(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[str]] = None,
) -> bool:
    """Boolean evaluation with early exit on the first witness."""
    return bool(generic_join(query.as_boolean(), db, order=order, limit=1))
