"""A worst-case-optimal join (Generic Join / NPRR, paper Section 2.1).

Generic Join processes variables one at a time: having fixed a prefix
assignment, the candidate values for the next variable are obtained by
intersecting, over all atoms containing it, the values consistent with
the prefix — always iterating the smallest candidate set.  Ngo–Porat–
Ré–Rudra / Ngo's survey [65] show this runs in Õ(m^{ρ*}), matching the
AGM output bound, for *any* variable order.

This is the algorithm behind:

- the Õ(m^{3/2}) triangle join of Section 3.1.1 (ρ* = 3/2), and
- the Õ(m^{1+1/(k-1)}) Loomis–Whitney evaluation of Example 3.4
  (ρ* = k/(k-1)).

**Two execution strategies.**

On columnar databases (every atom relation a
:class:`~repro.db.columnar.ColumnarRelation` over one shared
dictionary) the join runs *breadth-first over frontier arrays*: instead
of recursing per prefix, level ``t`` extends **all** currently-alive
prefixes at once.  The *frontier* at level ``t`` is an ``(n_t, t)``
int64 code matrix whose columns are the first ``t`` variables of the
global order and whose rows are exactly the prefixes Generic Join's
recursion would visit — distinct by construction, in a canonical order
(parent frontier order × ascending candidate code).  One level step is
pure array work:

1. **Range lookup.**  Each atom constraining the new variable holds
   sorted prefix tables (:class:`_FrontierAtomIndex`): the distinct
   ``d``-prefixes of its lexsorted code matrix plus offsets into the
   ``(d+1)``-prefix children.  A single :func:`~repro.db.columnar.
   lookup_rows` binary search maps every frontier row to its prefix
   group; the group's candidate count is an offset difference.
2. **Smallest-set choice.**  Stacking the per-atom counts gives, per
   frontier row, the classic "iterate the smallest candidate set"
   choice as one ``argmin``; rows where any atom offers zero
   candidates die here (dangling prefixes cost O(1) each, never a
   decode).
3. **Run-length expansion.**  The chosen ranges are expanded with the
   ``repeat``/``cumsum`` arithmetic of :func:`~repro.db.columnar.
   match_pairs` — candidates are gathered straight out of the atoms'
   child-value arrays into their final positions.
4. **k-way intersection.**  Every other constraining atom filters the
   candidates by one binary search against its ``(group, value)``
   member keys — the pairwise-merge intersection, done for all
   prefixes at once.

No tuple is ever decoded (``decoded_row_count`` stays zero up to the
public value boundary), and no per-prefix Python runs: the interpreter
cost per level is O(#atoms), not O(#prefixes).  On the sharded backend
the frontier is split into shard-count contiguous chunks per level and
the chunks are extended through the relation's
:class:`~repro.db.executor.ShardExecutor`, merged in chunk order —
bit-identical to the serial result because the level step is a pure
function of its chunk and the output order is canonical.

Python-backend databases (and mixed-dictionary inputs, where codes are
not comparable across atoms) fall back to the legacy depth-first
strategy, now driven by an explicit stack so deep variable orders can
never hit Python's recursion limit.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.db.columnar import (
    ColumnarRelation,
    Dictionary,
    atom_codes,
    lookup_rows,
    unique_rows,
)
from repro.db.database import Database
from repro.db.executor import SERIAL, ShardExecutor
from repro.db.sharded import ShardedColumnarRelation
from repro.query.cq import ConjunctiveQuery

Assignment = Dict[str, object]

# Frontier chunks smaller than this are not worth a dispatch through
# the shard executor; below it the level step runs as one chunk.
_CHUNK_MIN = 1024

# Capped-witness search: with ``limit`` set the breadth-first run first
# caps every frontier at max(limit, _WITNESS_CAP) rows — almost always
# enough to find the requested witnesses — and falls back to the
# uncapped run only when the truncated search came up short.
_WITNESS_CAP = 1024


def _frontier_enabled() -> bool:
    """The ``REPRO_FRONTIER`` escape hatch (default: on).

    ``REPRO_FRONTIER=0`` forces the legacy depth-first strategy on
    every backend — the parity tests and benchmarks use it to compare
    the two strategies on identical inputs.
    """
    return os.environ.get("REPRO_FRONTIER", "1").strip().lower() not in (
        "0",
        "off",
        "recursive",
    )


class _AtomIndex:
    """Per-atom trie-like access path for one global variable order.

    For an atom with variables ordered consistently with the global
    order, stores hash indexes from each prefix of the atom's variables
    to the possible next values — the 'sorted trie' of Leapfrog-style
    implementations, realized with dictionaries.
    """

    def __init__(
        self,
        relation_rows: Iterable[Tuple[object, ...]],
        atom_variables: Sequence[str],
        global_order: Sequence[str],
    ) -> None:
        rank = {v: i for i, v in enumerate(global_order)}
        distinct: List[str] = []
        first_pos: Dict[str, int] = {}
        for pos, var in enumerate(atom_variables):
            if var not in first_pos:
                first_pos[var] = pos
                distinct.append(var)
        self.ordered_vars: List[str] = sorted(distinct, key=rank.get)
        positions = [first_pos[v] for v in self.ordered_vars]
        # levels[d] maps a length-d prefix key to the set of values the
        # (d+1)-th ordered variable can take.
        self.levels: List[Dict[Tuple, Set[object]]] = [
            {} for _ in self.ordered_vars
        ]
        for row in relation_rows:
            ok = all(
                row[pos] == row[first_pos[var]]
                for pos, var in enumerate(atom_variables)
            )
            if not ok:
                continue
            key: Tuple = ()
            for depth, pos in enumerate(positions):
                value = row[pos]
                self.levels[depth].setdefault(key, set()).add(value)
                key = key + (value,)

    def candidates(self, assignment: Assignment, var: str) -> Optional[Set[object]]:
        """Possible values of ``var`` given the assignment so far.

        Returns ``None`` when the atom does not constrain ``var`` yet
        (``var`` not in the atom), otherwise the candidate set (possibly
        empty).
        """
        if var not in self.ordered_vars:
            return None
        depth = self.ordered_vars.index(var)
        key = tuple(assignment[v] for v in self.ordered_vars[:depth])
        return self.levels[depth].get(key, set())


class _ColumnarAtomIndex:
    """The prefix trie of :class:`_AtomIndex`, built from sorted arrays.

    Instead of inserting every row into per-depth dictionaries, lexsort
    the atom's code matrix once; then, at each depth ``d``, the distinct
    ``(d+1)``-prefixes and their group boundaries fall out of a single
    vectorized compare of adjacent sorted rows.  Python-level work drops
    from O(rows × depth) dict inserts to O(distinct prefixes), which is
    what makes trie construction cheap on dense AGM-tight instances.

    The resulting ``levels`` structure (and :meth:`candidates`) is
    identical to the Python version's, so the legacy depth-first search
    is byte-for-byte the same for both backends.  The frontier strategy
    uses :class:`_FrontierAtomIndex` instead, which keeps the same
    sorted arrays *as* arrays and never decodes a value.
    """

    candidates = _AtomIndex.candidates

    def __init__(
        self,
        relation: ColumnarRelation,
        atom_variables: Sequence[str],
        global_order: Sequence[str],
    ) -> None:
        distinct, first_pos, codes = atom_codes(relation, atom_variables)
        rank = {v: i for i, v in enumerate(global_order)}
        self.ordered_vars: List[str] = sorted(distinct, key=rank.get)
        k = len(self.ordered_vars)
        self.levels: List[Dict[Tuple, Set[object]]] = [{} for _ in range(k)]
        if k == 0 or not len(codes):
            return
        sub, first_diff = _sorted_prefixes(codes, first_pos, self.ordered_vars)
        decode = relation.dictionary.decode
        for depth in range(k):
            new_prefix = np.flatnonzero(first_diff <= depth)
            prefix_rows = sub[new_prefix]
            values = [decode(int(c)) for c in prefix_rows[:, depth]]
            # Within the distinct (depth+1)-prefixes, a new key (first
            # ``depth`` columns) starts where the difference occurred
            # strictly before column ``depth``.
            group_start = np.flatnonzero(first_diff[new_prefix] < depth)
            bounds = list(group_start) + [len(new_prefix)]
            level = self.levels[depth]
            for g in range(len(group_start)):
                lo, hi = bounds[g], bounds[g + 1]
                key = tuple(
                    decode(int(c)) for c in prefix_rows[lo, :depth]
                )
                level[key] = set(values[lo:hi])


def _sorted_prefixes(
    codes: np.ndarray,
    first_pos: Dict[str, int],
    ordered_vars: Sequence[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Lexsort an atom's distinct-variable submatrix; tag prefix breaks.

    Returns ``(sub, first_diff)``: the rows of ``codes`` restricted to
    the first-occurrence columns of ``ordered_vars`` in lexicographic
    order, and per row the first column where it differs from its
    predecessor (``-1`` for row 0, ``k`` for a duplicate row).  Row
    ``i`` starts a new ``d``-prefix group iff ``first_diff[i] < d``.
    """
    k = len(ordered_vars)
    sub = codes[:, [first_pos[v] for v in ordered_vars]]
    order = np.lexsort(tuple(sub[:, j] for j in reversed(range(k))))
    sub = sub[order]
    if len(sub) > 1:
        neq = sub[1:] != sub[:-1]
        any_neq = neq.any(axis=1)
        first_diff = np.where(any_neq, neq.argmax(axis=1), k)
        first_diff = np.concatenate(([-1], first_diff))
    else:
        first_diff = np.asarray([-1])
    return sub, first_diff


class _FrontierAtomIndex:
    """Sorted prefix tables for one atom, consumed a whole level at a time.

    Built once per query from one lexsort of the atom's code matrix
    (restricted to its distinct variables, reordered by global rank).
    Per atom depth ``d`` (``0 <= d < k``) it stores, as flat arrays:

    ``tables[d]``
        the distinct ``d``-prefixes, one row each, in lex order — the
        lookup table a frontier binary-searches to find its group;
    ``starts[d]``
        ``(G_d + 1,)`` offsets: the children of ``tables[d][g]`` (its
        possible next values) are ``ext[d][starts[d][g] :
        starts[d][g+1]]``, ascending;
    ``ext[d]``
        the next-value code of every distinct ``(d+1)``-prefix, grouped
        by parent prefix;
    ``member_keys[d]``
        ``group * M_d + value`` for every child, globally ascending —
        one sorted array that answers "is ``value`` among group ``g``'s
        children?" with a single ``searchsorted`` (``M_d`` is one past
        the largest child code).  When the product would overflow 63
        bits the index keeps the 2-column ``(group, value)`` table and
        answers through :func:`~repro.db.columnar.lookup_rows` instead.

    Everything is dictionary codes; nothing is ever decoded.
    """

    def __init__(
        self,
        relation: ColumnarRelation,
        atom_variables: Sequence[str],
        global_order: Sequence[str],
    ) -> None:
        distinct, first_pos, codes = atom_codes(relation, atom_variables)
        rank = {v: i for i, v in enumerate(global_order)}
        self.ordered_vars: List[str] = sorted(distinct, key=rank.get)
        self.depth_of: Dict[str, int] = {
            v: d for d, v in enumerate(self.ordered_vars)
        }
        # Frontier columns holding the atom's first d ordered variables
        # (all bound before the atom constrains its depth-d variable,
        # because ordered_vars is sorted by global rank).
        self.frontier_cols: List[List[int]] = [
            [rank[v] for v in self.ordered_vars[:d]]
            for d in range(len(self.ordered_vars))
        ]
        k = len(self.ordered_vars)
        self.tables: List[np.ndarray] = []
        self.starts: List[np.ndarray] = []
        self.ext: List[np.ndarray] = []
        self.member_keys: List[Optional[np.ndarray]] = []
        self.member_mult: List[int] = []
        self.member_table: List[Optional[np.ndarray]] = []
        if k == 0:
            return
        if not len(codes):
            empty64 = np.empty(0, dtype=np.int64)
            for d in range(k):
                self.tables.append(np.empty((0, d), dtype=np.int64))
                self.starts.append(np.zeros(1, dtype=np.int64))
                self.ext.append(empty64)
                self.member_keys.append(empty64)
                self.member_mult.append(1)
                self.member_table.append(None)
            return
        sub, first_diff = _sorted_prefixes(codes, first_pos, self.ordered_vars)
        for d in range(k):
            parents = np.flatnonzero(first_diff < d)
            children = np.flatnonzero(first_diff < d + 1)
            self.tables.append(sub[parents][:, :d])
            group_start = np.flatnonzero(first_diff[children] < d)
            self.starts.append(
                np.concatenate(
                    [group_start, [len(children)]]
                ).astype(np.int64, copy=False)
            )
            ext = sub[children, d]
            self.ext.append(ext)
            counts = np.diff(self.starts[d])
            groups = np.repeat(
                np.arange(len(parents), dtype=np.int64), counts
            )
            mult = int(ext.max()) + 1 if len(ext) else 1
            if len(parents) <= (2**62) // max(mult, 1):
                self.member_keys.append(groups * mult + ext)
                self.member_mult.append(mult)
                self.member_table.append(None)
            else:  # pragma: no cover - needs ~2^62 group×code product
                self.member_keys.append(None)
                self.member_mult.append(mult)
                self.member_table.append(
                    np.stack([groups, ext], axis=1)
                )

    def lookup(
        self, frontier: np.ndarray, depth: int, cardinality: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per frontier row: its prefix group (or -1) and candidate count."""
        table = self.tables[depth]
        sub = frontier[:, self.frontier_cols[depth]]
        if not len(table):
            n = len(frontier)
            return (
                np.full(n, -1, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
            )
        group = lookup_rows(sub, table, cardinality)
        safe = np.maximum(group, 0)
        starts = self.starts[depth]
        counts = np.where(group >= 0, starts[safe + 1] - starts[safe], 0)
        return group, counts

    def member(
        self, depth: int, groups: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Is ``values[i]`` among the children of group ``groups[i]``?"""
        keys = self.member_keys[depth]
        if keys is None:  # pragma: no cover - overflow fallback
            cand = np.stack([groups, values], axis=1)
            card = max(
                len(self.tables[depth]) + 1, self.member_mult[depth]
            )
            return lookup_rows(cand, self.member_table[depth], card) >= 0
        mult = self.member_mult[depth]
        valid = values < mult
        probe = groups * mult + np.minimum(values, mult - 1)
        pos = np.searchsorted(keys, probe)
        pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
        ok = np.zeros(len(values), dtype=bool)
        if len(keys):
            ok = keys[pos] == probe
        return ok & valid


def _extend_frontier(
    frontier: np.ndarray,
    constraining: List[Tuple[_FrontierAtomIndex, int]],
    cardinality: int,
) -> np.ndarray:
    """One breadth-first level step: extend every prefix at once.

    ``constraining`` pairs each atom containing the new variable with
    the variable's depth inside that atom.  Output rows are the alive
    extensions in canonical order (frontier order × ascending candidate
    code), as a fresh ``(n', t+1)`` matrix.
    """
    width = frontier.shape[1]
    if not len(frontier):
        return np.empty((0, width + 1), dtype=np.int64)
    # 1. range lookup: per atom, each prefix's group and candidate count.
    groups: List[np.ndarray] = []
    count_rows: List[np.ndarray] = []
    for index, depth in constraining:
        group, counts = index.lookup(frontier, depth, cardinality)
        groups.append(group)
        count_rows.append(counts)
    counts = np.stack(count_rows, axis=0)
    alive = (counts > 0).all(axis=0)
    if not alive.any():
        return np.empty((0, width + 1), dtype=np.int64)
    if not alive.all():
        frontier = frontier[alive]
        counts = counts[:, alive]
        groups = [g[alive] for g in groups]
    n = len(frontier)
    # 2. smallest candidate set per prefix (first minimal atom wins —
    # deterministic, and set semantics make any minimal choice correct).
    chooser = np.argmin(counts, axis=0)
    chosen = counts[chooser, np.arange(n)]
    offsets = np.cumsum(chosen) - chosen
    total = int(chosen.sum())
    # 3. run-length expansion of the chosen ranges into final positions.
    values = np.empty(total, dtype=np.int64)
    parent = np.repeat(np.arange(n, dtype=np.int64), chosen)
    for j, (index, depth) in enumerate(constraining):
        rows = np.flatnonzero(chooser == j)
        if not len(rows):
            continue
        cj = chosen[rows]
        tot = int(cj.sum())
        within = np.arange(tot, dtype=np.int64) - np.repeat(
            np.cumsum(cj) - cj, cj
        )
        src = np.repeat(index.starts[depth][groups[j][rows]], cj) + within
        dst = np.repeat(offsets[rows], cj) + within
        values[dst] = index.ext[depth][src]
    # 4. k-way intersection: every non-chooser atom filters by one
    # binary search against its (group, value) member keys.
    keep = np.ones(total, dtype=bool)
    if len(constraining) > 1:
        chooser_of = chooser[parent]
        for j, (index, depth) in enumerate(constraining):
            rows = np.flatnonzero(chooser_of != j)
            if not len(rows):
                continue
            keep[rows] &= index.member(
                depth, groups[j][parent[rows]], values[rows]
            )
    if not keep.all():
        parent = parent[keep]
        values = values[keep]
    out = np.empty((len(values), width + 1), dtype=np.int64)
    out[:, :width] = frontier[parent]
    out[:, width] = values
    return out


def _frontier_executor(
    query: ConjunctiveQuery, db: Database
) -> Tuple[ShardExecutor, int]:
    """The shard executor and chunk count for the level-step fan-out.

    Sharded inputs extend the frontier shard-count contiguous chunks at
    a time through the relation's executor (merged in chunk order —
    bit-identical to serial); unsharded inputs run one chunk.
    """
    executor: ShardExecutor = SERIAL
    chunks = 1
    for atom in query.atoms:
        rel = db[atom.relation]
        if isinstance(rel, ShardedColumnarRelation):
            executor = rel._exec()
            chunks = max(chunks, rel.shard_count)
    return executor, chunks


def _shared_dictionary(
    query: ConjunctiveQuery, db: Database
) -> Optional[Dictionary]:
    """The single dictionary of the query's relations, or ``None``.

    ``None`` means the frontier strategy does not apply: a python
    -backend relation has no codes, and codes from different
    dictionaries are not comparable across atoms.
    """
    from repro.joins.vectorized import relation_family

    return relation_family(db[atom.relation] for atom in query.atoms)


def _frontier_run(
    query: ConjunctiveQuery,
    db: Database,
    global_order: Sequence[str],
    cardinality: int,
    cap: Optional[int],
) -> Tuple[np.ndarray, bool]:
    """The breadth-first join over the full order; (matrix, truncated?).

    The returned matrix has one column per variable of
    ``global_order`` and one (distinct) row per answer of the join
    query over all variables.  ``cap`` bounds every frontier for the
    capped witness search; the flag reports whether it ever bit.
    """
    indexes = [
        _FrontierAtomIndex(db[a.relation], a.variables, global_order)
        for a in query.atoms
    ]
    executor, chunks = _frontier_executor(query, db)
    frontier = np.zeros((1, 0), dtype=np.int64)
    truncated = False
    for t, var in enumerate(global_order):
        constraining = [
            (index, index.depth_of[var])
            for index in indexes
            if var in index.depth_of
        ]

        def extend(chunk: np.ndarray) -> np.ndarray:
            return _extend_frontier(chunk, constraining, cardinality)

        if chunks > 1 and len(frontier) >= max(_CHUNK_MIN, chunks):
            parts = executor.map(
                extend, np.array_split(frontier, chunks)
            )
            frontier = np.concatenate(parts, axis=0)
        else:
            frontier = extend(frontier)
        if cap is not None and len(frontier) > cap:
            frontier = frontier[:cap]
            truncated = True
        if not len(frontier):
            # A dead level kills every prefix: the join is empty.
            return (
                np.empty((0, len(global_order)), dtype=np.int64),
                False,
            )
    return frontier, truncated


def _project_head(
    matrix: np.ndarray,
    global_order: Sequence[str],
    head: Sequence[str],
    cardinality: int,
) -> np.ndarray:
    """Project full-order answer rows onto the head (set semantics)."""
    position = {v: i for i, v in enumerate(global_order)}
    sub = matrix[:, [position[v] for v in head]]
    if len(head) == len(global_order):
        return sub  # a permutation: rows stay distinct
    return unique_rows(sub, cardinality)


def _empty_atom_falsifies(query: ConjunctiveQuery, db: Database) -> bool:
    # Arity-0 atoms bind no variables, so neither strategy ever
    # consults them; an empty one nevertheless falsifies the query.
    return any(
        not atom.scope and db[atom.relation].is_empty()
        for atom in query.atoms
    )


def generic_join_codes(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[str]] = None,
) -> Optional[Tuple[np.ndarray, Tuple[str, ...]]]:
    """Code-level Generic Join: the head's answer code matrix, no decodes.

    Returns ``(codes, head)`` — one distinct row per answer, columns in
    head order, values as dictionary codes — or ``None`` when the
    frontier strategy does not apply (python backend, mixed
    dictionaries, or disabled via ``REPRO_FRONTIER=0``).  This is the
    zero-decode entry point for counting and semiring aggregation over
    cyclic queries; :func:`generic_join` is the same computation with a
    decode at the value boundary.
    """
    query.validate_database(db)
    dictionary = _shared_dictionary(query, db)
    if dictionary is None or not _frontier_enabled():
        return None
    head = tuple(query.head)
    if _empty_atom_falsifies(query, db):
        return np.empty((0, len(head)), dtype=np.int64), head
    global_order = _choose_order(query, order, db)
    cardinality = len(dictionary)
    matrix, _ = _frontier_run(query, db, global_order, cardinality, None)
    return _project_head(matrix, global_order, head, cardinality), head


def generic_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> Set[Tuple]:
    """All answers to ``query`` by Generic Join; Õ(m^{ρ*}) for join queries.

    Projections are applied at the end (set semantics); for genuinely
    projected queries prefer the free-connex pipeline.  ``limit`` stops
    the search once that many *head* tuples were produced — with
    ``limit=1`` this is the Boolean early-exit used by
    :func:`generic_join_boolean`.

    Columnar inputs run the breadth-first frontier strategy (module
    docstring) and decode only the final head rows; everything else
    runs the legacy depth-first search.  Both strategies visit the
    same prefix tree, so their answer sets are identical.
    """
    query.validate_database(db)
    if _empty_atom_falsifies(query, db):
        return set()
    global_order = _choose_order(query, order, db)
    dictionary = _shared_dictionary(query, db)
    if dictionary is None or not _frontier_enabled():
        return _generic_join_stack(query, db, global_order, limit)
    cardinality = len(dictionary)
    head = tuple(query.head)
    cap = None if limit is None else max(limit, _WITNESS_CAP)
    while True:
        matrix, truncated = _frontier_run(
            query, db, global_order, cardinality, cap
        )
        head_codes = _project_head(matrix, global_order, head, cardinality)
        if limit is None or not truncated or len(head_codes) >= limit:
            break
        cap = None  # capped witness search came up short: run in full
    answers = set(dictionary.decode_rows(head_codes))
    if limit is not None and len(answers) > limit:
        answers = set(list(answers)[:limit])
    return answers


def _generic_join_stack(
    query: ConjunctiveQuery,
    db: Database,
    global_order: Sequence[str],
    limit: Optional[int],
) -> Set[Tuple]:
    """The legacy depth-first strategy, driven by an explicit stack.

    One stack frame per bound variable — an iterator over the smallest
    candidate set plus the other sets to intersect against — so a
    60-variable chain is 60 list entries, not 60 interpreter frames:
    deep variable orders can never trip Python's recursion limit.
    """
    indexes = [
        (
            _ColumnarAtomIndex(db[a.relation], a.variables, global_order)
            if isinstance(db[a.relation], ColumnarRelation)
            else _AtomIndex(db[a.relation], a.variables, global_order)
        )
        for a in query.atoms
    ]
    head = tuple(query.head)
    answers: Set[Tuple] = set()
    depth_target = len(global_order)
    if depth_target == 0:
        answers.add(())
        return answers
    assignment: Assignment = {}
    frames: List[Tuple[str, object, List[Set[object]]]] = []

    def push(depth: int) -> None:
        var = global_order[depth]
        candidate_sets = [
            c
            for idx in indexes
            if (c := idx.candidates(assignment, var)) is not None
        ]
        if not candidate_sets:  # pragma: no cover - defensive
            # Cannot happen: every query variable occurs in some atom,
            # and atom tries are keyed consistently with the global
            # order, so at least one atom constrains ``var`` here.
            raise RuntimeError(f"variable {var!r} is unconstrained")
        smallest = min(candidate_sets, key=len)
        others = [c for c in candidate_sets if c is not smallest]
        frames.append((var, iter(smallest), others))

    push(0)
    while frames:
        var, values, others = frames[-1]
        descended = False
        for value in values:
            if others and not all(value in c for c in others):
                continue
            assignment[var] = value
            if len(frames) == depth_target:
                answers.add(tuple(assignment[v] for v in head))
                if limit is not None and len(answers) >= limit:
                    return answers
                # Leaf level: keep draining this iterator in place.
                continue
            push(len(frames))
            descended = True
            break
        if not descended:
            frames.pop()
    return answers


def _choose_order(
    query: ConjunctiveQuery,
    order: Optional[Sequence[str]],
    db: Optional[Database] = None,
) -> List[str]:
    if order is not None:
        order = list(order)
        if set(order) != set(query.variables) or len(order) != len(
            set(order)
        ):
            raise ValueError(
                "variable order must be a permutation of query variables"
            )
        return order
    # Heuristic: repeatedly pick the variable appearing in the most
    # atoms among those adjacent to already-chosen variables (connected
    # orders avoid needless cross products).  Ties break toward the
    # variable with the fewest distinct values in any column holding it
    # (measured from the dictionary codes, cached per relation): a
    # low-cardinality variable keeps the breadth-first frontier narrow
    # on skewed inputs, where a purely structural tie-break can pick an
    # order whose frontier explodes.
    distinct_of: Dict[str, int] = {}
    if db is not None:
        for atom in query.atoms:
            rel = db[atom.relation]
            counter = getattr(rel, "column_distinct_counts", None)
            if counter is None:
                continue
            counts = counter()
            for pos, var in enumerate(atom.variables):
                count = counts[pos]
                if var not in distinct_of or count < distinct_of[var]:
                    distinct_of[var] = count
    chosen: List[str] = []
    remaining = set(query.variables)
    while remaining:
        def score(v: str) -> Tuple[int, int, int, str]:
            in_atoms = sum(1 for a in query.atoms if v in a.scope)
            connected = any(
                v in a.scope and any(c in a.scope for c in chosen)
                for a in query.atoms
            )
            return (
                1 if connected or not chosen else 0,
                in_atoms,
                -distinct_of.get(v, 0),
                v,
            )

        best = max(sorted(remaining), key=score)
        chosen.append(best)
        remaining.discard(best)
    return chosen


def generic_join_boolean(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[str]] = None,
) -> bool:
    """Boolean evaluation with early exit on the first witness.

    On columnar inputs the frontier strategy runs its capped witness
    search — every level's frontier is truncated, which finds a
    witness after touching a bounded slice of the prefix tree.
    """
    return bool(generic_join(query.as_boolean(), db, order=order, limit=1))
