"""Loomis–Whitney joins (paper Example 3.4).

The k-dimensional Loomis–Whitney query q^LW_k has one atom per
(k-1)-subset of its k variables.  Its fractional edge cover number is
k/(k-1) (weight 1/(k-1) on every atom), so a worst-case-optimal join
evaluates it in Õ(m^{1+1/(k-1)}) — the bound of [66] the paper quotes,
and the bound Theorem 3.5 shows optimal under the Hyperclique
Hypothesis.

We evaluate through :func:`repro.joins.generic_join.generic_join`,
whose runtime matches the AGM exponent for any variable order; the
wrapper exists so experiments and reductions can speak in terms of the
LW family directly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.db.database import Database
from repro.joins.generic_join import generic_join
from repro.query.catalog import loomis_whitney_query
from repro.query.cq import ConjunctiveQuery


def loomis_whitney_exponent(k: int) -> float:
    """The claimed runtime exponent 1 + 1/(k-1)."""
    if k < 3:
        raise ValueError("Loomis-Whitney queries need k >= 3")
    return 1.0 + 1.0 / (k - 1)


def loomis_whitney_join(
    db: Database, k: int, order: Optional[Sequence[str]] = None
) -> Set[Tuple]:
    """All answers of the full LW_k join on ``db``.

    ``db`` must supply the relations named as by
    :func:`repro.query.catalog.loomis_whitney_query` (R1_2_..., one per
    (k-1)-subset).
    """
    query = loomis_whitney_query(k, boolean=False)
    return generic_join(query, db, order=order)


def loomis_whitney_boolean(
    db: Database, k: int, order: Optional[Sequence[str]] = None
) -> bool:
    """Decide the Boolean LW_k query with early exit."""
    query = loomis_whitney_query(k, boolean=False)
    return bool(generic_join(query, db, order=order, limit=1))
