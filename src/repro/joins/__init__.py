"""Join algorithms: the paper's upper bounds.

- :mod:`repro.joins.frame` — the internal (variables, rows) table type;
- :mod:`repro.joins.vectorized` — the columnar (NumPy) frame backend
  implementing the same algebra over dictionary-encoded code columns;
- :mod:`repro.joins.hashjoin` — binary hash joins and left-deep plans;
- :mod:`repro.joins.semijoin` — semijoins and full reducers;
- :mod:`repro.joins.yannakakis` — Theorem 3.1 (Boolean acyclic in
  linear time) and full/projected evaluation of acyclic queries;
- :mod:`repro.joins.generic_join` — a worst-case-optimal join with
  runtime Õ(m^{ρ*}) matching the AGM bound (Section 2.1);
- :mod:`repro.joins.triangle` — the Alon–Yuster–Zwick degree-split +
  BMM triangle algorithm of Theorem 3.2;
- :mod:`repro.joins.loomis_whitney` — Example 3.4's Õ(m^{1+1/(k-1)})
  Loomis–Whitney evaluation.
"""

from repro.joins.cycles import (
    count_triangles,
    cycle_boolean_generic,
    cycle_boolean_meet_in_middle,
)
from repro.joins.frame import Frame
from repro.joins.generic_join import generic_join, generic_join_boolean
from repro.joins.hashjoin import hash_join, left_deep_plan_join
from repro.joins.loomis_whitney import (
    loomis_whitney_boolean,
    loomis_whitney_join,
)
from repro.joins.semijoin import atom_frames, full_reducer_pass, semijoin
from repro.joins.triangle import (
    triangle_boolean_ayz,
    triangle_boolean_naive,
    triangle_join_naive,
)
from repro.joins.vectorized import ColumnarFrame
from repro.joins.yannakakis import (
    yannakakis_boolean,
    yannakakis_full,
    yannakakis_project,
)

__all__ = [
    "ColumnarFrame",
    "Frame",
    "atom_frames",
    "count_triangles",
    "cycle_boolean_generic",
    "cycle_boolean_meet_in_middle",
    "full_reducer_pass",
    "generic_join",
    "generic_join_boolean",
    "hash_join",
    "left_deep_plan_join",
    "loomis_whitney_boolean",
    "loomis_whitney_join",
    "semijoin",
    "triangle_boolean_ayz",
    "triangle_boolean_naive",
    "triangle_join_naive",
    "yannakakis_boolean",
    "yannakakis_full",
    "yannakakis_project",
]
