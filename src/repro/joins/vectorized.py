"""Vectorized frames: the columnar execution backend's operators.

The algorithms in this package (binary hash joins, semijoin reducers,
Yannakakis, Generic Join) are written against a small frame algebra —
``project`` / ``select_in`` / ``semijoin`` / ``join`` / ``reorder``.
:class:`ColumnarFrame` implements that algebra over dictionary-encoded
NumPy code matrices (see :mod:`repro.db.columnar` for the encoding
scheme), so an algorithm runs unchanged on either backend:

- **semijoin** — pack the shared-variable columns of both sides into
  64-bit keys and keep rows via one :func:`numpy.isin`;
- **join** — sort the right side's keys once, binary-search every left
  key's run, and expand matches with ``repeat``/``cumsum`` index
  arithmetic (:func:`repro.db.columnar.match_pairs`) — a hash join in
  shape, realized as a sort join because sorted int64 arrays beat
  Python dict probing by a wide margin;
- **project / distinct** — one-dimensional :func:`numpy.unique` on
  packed keys.

Set semantics are preserved by construction: every frame's code matrix
holds distinct rows, and each operator either provably preserves
distinctness (join, semijoin, select) or re-uniquifies (project,
raw-row construction).

**When this backend wins** — see the :mod:`repro.db.columnar` module
docstring: bulk operators over ≳10³ rows run one to two orders of
magnitude faster; per-row Python callbacks and single-tuple updates do
not.  The Python :class:`~repro.joins.frame.Frame` therefore remains
the default; pass ``backend="columnar"`` at the :class:`Database` /
workload / evaluator boundary to opt in.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.db.columnar import (
    ColumnarRelation,
    Dictionary,
    atom_codes,
    common_keys,
    group_rows,
    match_pairs,
    pack_rows,
    unique_rows,
)
from repro.db.executor import ShardExecutor, get_default_executor
from repro.db.interface import BACKENDS, check_backend
from repro.db.sharded import ShardedColumnarRelation, note_coalesce
from repro.joins.frame import Frame

Row = Tuple[object, ...]

PYTHON_BACKEND, COLUMNAR_BACKEND, SHARDED_BACKEND = BACKENDS


class ColumnarFrame:
    """A set of rows over named variables, stored as int64 code columns.

    Mirrors :class:`repro.joins.frame.Frame`: immutable-ish operators
    returning new frames, set semantics, same method names.  ``rows``
    is exposed as a (lazily decoded, cached) set property so code
    written against the Python frame's attribute keeps working.
    """

    def __init__(
        self,
        variables: Sequence[str],
        codes: np.ndarray,
        dictionary: Dictionary,
        _distinct: bool = False,
    ) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("frame variables must be distinct")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:  # width-0 frames defeat reshape(-1, 0)
            codes = codes.reshape(len(codes), len(self.variables))
        if not _distinct:
            codes = unique_rows(codes, len(dictionary))
        self._codes = codes
        self.dictionary = dictionary
        self._rows_cache: Optional[Set[Row]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        variables: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        dictionary: Optional[Dictionary] = None,
    ) -> "ColumnarFrame":
        """Build a frame from Python value rows (the encode boundary)."""
        dictionary = dictionary if dictionary is not None else Dictionary()
        variables = tuple(variables)
        codes = dictionary.encode_rows(rows, len(variables))
        return cls(variables, codes, dictionary)

    @classmethod
    def from_atom(
        cls, relation: ColumnarRelation, variables: Sequence[str]
    ) -> "ColumnarFrame":
        """Bind a columnar relation to atom variables.

        Repeated variables act as equality selections, applied as
        vectorized column comparisons; only the first occurrence of
        each variable is kept as a column.
        """
        variables = tuple(variables)
        if len(variables) != relation.arity:
            raise ValueError(
                f"atom has {len(variables)} positions, relation "
                f"{relation.name} has arity {relation.arity}"
            )
        distinct, first_position, codes = atom_codes(relation, variables)
        positions = [first_position[v] for v in distinct]
        taken = codes[:, positions] if positions else codes[:, :0]
        # Rows of a relation are distinct, and every column equals the
        # first-occurrence column of its variable, so the projection
        # onto first occurrences is still duplicate-free.
        return cls(distinct, taken, relation.dictionary, _distinct=True)

    @classmethod
    def unit(cls, dictionary: Optional[Dictionary] = None) -> "ColumnarFrame":
        """The frame with no variables and one (empty) row — join identity."""
        dictionary = dictionary if dictionary is not None else Dictionary()
        return cls(
            (), np.empty((1, 0), dtype=np.int64), dictionary, _distinct=True
        )

    @classmethod
    def empty(
        cls,
        variables: Sequence[str] = (),
        dictionary: Optional[Dictionary] = None,
    ) -> "ColumnarFrame":
        """A frame with no rows — join absorber."""
        dictionary = dictionary if dictionary is not None else Dictionary()
        return cls(
            variables,
            np.empty((0, len(tuple(variables))), dtype=np.int64),
            dictionary,
            _distinct=True,
        )

    def unit_like(self) -> "ColumnarFrame":
        """A unit frame sharing this frame's dictionary (common interface)."""
        return ColumnarFrame.unit(self.dictionary)

    def empty_like(self, variables: Sequence[str] = ()) -> "ColumnarFrame":
        """An empty frame sharing this frame's dictionary."""
        return ColumnarFrame.empty(variables, self.dictionary)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def rows(self) -> Set[Row]:
        """Decoded rows as a set (cached) — Python-frame compatibility."""
        if self._rows_cache is None:
            self._rows_cache = set(self.dictionary.decode_rows(self._codes))
        return self._rows_cache

    def codes(self) -> np.ndarray:
        """The distinct ``(n, width)`` int64 code matrix."""
        return self._codes

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self.rows

    def is_empty(self) -> bool:
        return not len(self._codes)

    def positions(self, variables: Sequence[str]) -> Tuple[int, ...]:
        """Column positions of the given variables."""
        index = {v: i for i, v in enumerate(self.variables)}
        try:
            return tuple(index[v] for v in variables)
        except KeyError as exc:
            raise KeyError(f"variable {exc.args[0]!r} not in frame") from None

    def key_of(self, row: Row, positions: Sequence[int]) -> Row:
        return tuple(row[p] for p in positions)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "ColumnarFrame":
        """The other operand's codes re-expressed in *this* dictionary."""
        if not isinstance(other, ColumnarFrame):
            # A Python Frame (or anything frame-shaped): encode its rows.
            return ColumnarFrame.from_rows(
                other.variables, other.rows, self.dictionary
            )
        if other.dictionary is self.dictionary:
            return other
        if not other._codes.size:
            return ColumnarFrame(
                other.variables, other._codes, self.dictionary, _distinct=True
            )
        # Translate only the codes this frame actually uses, so a small
        # frame carrying a huge dictionary neither does dictionary-sized
        # encode work nor bloats the target dictionary.
        other_values = other.dictionary.values()
        used = np.unique(other._codes)
        table = np.zeros(int(used[-1]) + 1, dtype=np.int64)
        encode = self.dictionary.encode
        for code in used.tolist():
            table[code] = encode(other_values[code])
        return ColumnarFrame(
            other.variables, table[other._codes], self.dictionary,
            _distinct=True,
        )

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def project(self, variables: Sequence[str]) -> "ColumnarFrame":
        """Projection (set semantics; one packed-key ``unique``)."""
        pos = list(self.positions(variables))
        taken = self._codes[:, pos] if pos else self._codes[:, :0]
        return ColumnarFrame(variables, taken, self.dictionary)

    def rename(self, mapping: Dict[str, str]) -> "ColumnarFrame":
        """Rename variables through ``mapping`` (missing keys unchanged)."""
        return ColumnarFrame(
            tuple(mapping.get(v, v) for v in self.variables),
            self._codes,
            self.dictionary,
            _distinct=True,
        )

    def select_in(
        self, variables: Sequence[str], allowed: Set[Row]
    ) -> "ColumnarFrame":
        """Keep rows whose projection onto ``variables`` is in ``allowed``."""
        pos = list(self.positions(variables))
        encode_existing = self.dictionary.encode_existing
        coded: List[Tuple[int, ...]] = []
        for key in allowed:
            codes = tuple(
                c
                for c in (encode_existing(v) for v in key)
                if c is not None
            )
            if len(codes) == len(key):
                coded.append(codes)
        allowed_codes = np.asarray(coded, dtype=np.int64).reshape(
            len(coded), len(pos)
        )
        sub = self._codes[:, pos] if pos else self._codes[:, :0]
        mine, theirs = common_keys(
            sub, allowed_codes, len(self.dictionary)
        )
        mask = np.isin(mine, theirs)
        return ColumnarFrame(
            self.variables, self._codes[mask], self.dictionary, _distinct=True
        )

    def semijoin(self, other) -> "ColumnarFrame":
        """Rows of self that agree with some row of ``other`` on the
        shared variables — one packed-key membership test."""
        shared = tuple(v for v in self.variables if v in other.variables)
        if not shared:
            return (
                self
                if not other.is_empty()
                else self.empty_like(self.variables)
            )
        other = self._coerce(other)
        mine = self._codes[:, list(self.positions(shared))]
        theirs = other._codes[:, list(other.positions(shared))]
        my_keys, their_keys = common_keys(mine, theirs, len(self.dictionary))
        mask = np.isin(my_keys, their_keys)
        return ColumnarFrame(
            self.variables, self._codes[mask], self.dictionary, _distinct=True
        )

    def join(self, other) -> "ColumnarFrame":
        """Natural join on the shared variables (sort-probe, vectorized)."""
        other = self._coerce(other)
        shared = tuple(v for v in self.variables if v in other.variables)
        other_only = tuple(
            v for v in other.variables if v not in self.variables
        )
        out_vars = self.variables + other_only
        extra_pos = list(other.positions(other_only))
        if not shared:
            n_left, n_right = len(self._codes), len(other._codes)
            left = np.repeat(self._codes, n_right, axis=0)
            extras = other._codes[:, extra_pos]
            right = np.tile(extras, (n_left, 1))
            out = np.concatenate([left, right], axis=1)
            return ColumnarFrame(
                out_vars, out, self.dictionary, _distinct=True
            )
        mine = self._codes[:, list(self.positions(shared))]
        theirs = other._codes[:, list(other.positions(shared))]
        my_keys, their_keys = common_keys(mine, theirs, len(self.dictionary))
        left_index, right_index = match_pairs(my_keys, their_keys)
        out = np.concatenate(
            [
                self._codes[left_index],
                other._codes[right_index][:, extra_pos],
            ],
            axis=1,
        )
        # Both inputs hold distinct rows and the right side's columns
        # are (shared ∪ extra), so each (left row, extra) pair appears
        # at most once: the output is distinct without re-uniquifying.
        return ColumnarFrame(out_vars, out, self.dictionary, _distinct=True)

    def reorder(self, variables: Sequence[str]) -> "ColumnarFrame":
        """The same rows with columns permuted to ``variables``."""
        if set(variables) != set(self.variables):
            raise ValueError("reorder must use exactly the frame's variables")
        pos = list(self.positions(variables))
        taken = self._codes[:, pos] if pos else self._codes[:, :0]
        return ColumnarFrame(
            variables, taken, self.dictionary, _distinct=True
        )

    def group_by(
        self, variables: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Group rows by their projection onto ``variables``.

        Returns ``(representatives, group_ids, group_count)`` as in
        :func:`repro.db.columnar.group_rows`: the distinct key rows (as
        a code matrix over ``variables``), a dense group id per frame
        row, and the group count.  This is the grouping primitive the
        vectorized semiring aggregation and direct-access builders
        reduce over.
        """
        pos = list(self.positions(variables))
        sub = self._codes[:, pos] if pos else self._codes[:, :0]
        return group_rows(sub, len(self.dictionary))

    def to_tuples(
        self, variables: Optional[Sequence[str]] = None
    ) -> Set[Row]:
        """Rows as a set of tuples, optionally in a given variable order."""
        if variables is None:
            return set(self.rows)
        return set(
            self.dictionary.decode_rows(self.project(variables)._codes)
        )

    def to_frame(self) -> Frame:
        """The equivalent Python-backend :class:`Frame` (decoded)."""
        return Frame(self.variables, self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarFrame({self.variables}, {len(self._codes)} rows)"


# ----------------------------------------------------------------------
# sharded frames: shard x build broadcasts
# ----------------------------------------------------------------------
# A semijoin build table (boolean array over the packed-key span) is
# used when the span stays within max(_TABLE_SPAN_MIN, 4*cardinality)
# entries — i.e. when it is proportional to the merged separator
# domain, the scratch size the sharded substrate allows.  Wider spans
# fall back to per-shard-deduplicated sorted keys.
_TABLE_SPAN_MIN = 1 << 20


def _shard_build_keys(
    frame, shared: Tuple[str, ...], cardinality: int
) -> Optional[np.ndarray]:
    """Packed build-side keys of ``frame``'s projection onto ``shared``.

    For a sharded build side the keys are *deduplicated per shard*
    before concatenating, so the build table is bounded by the merged
    separator domain instead of the global row count — this is what
    keeps the full-reducer semijoins on the aggregate path free of
    global materializations.  Returns ``None`` when the keys cannot be
    packed into 64 bits (callers fall back to the coalesced path).
    """
    positions = list(frame.positions(shared))
    if isinstance(frame, ShardedColumnarFrame):
        parts: List[np.ndarray] = []
        for shard in frame.shards:
            keys = pack_rows(shard.codes()[:, positions], cardinality)
            if keys is None:
                return None
            parts.append(np.unique(keys))
        return np.concatenate(parts)
    return pack_rows(frame.codes()[:, positions], cardinality)


def _shard_build_table(
    frame, shared: Tuple[str, ...], cardinality: int, span: int
) -> Optional[np.ndarray]:
    """Boolean membership table over the packed-key span of ``frame``.

    One scatter per build part, no sorts: probing a shard is then one
    O(shard) gather.  ``None`` when some part's keys cannot be packed.
    """
    parts = (
        frame.shards
        if isinstance(frame, ShardedColumnarFrame)
        else [frame]
    )
    table = np.zeros(span, dtype=bool)
    for part in parts:
        positions = list(part.positions(shared))
        keys = pack_rows(part.codes()[:, positions], cardinality)
        if keys is None:
            return None
        table[keys] = True
    return table


class ShardedColumnarFrame(ColumnarFrame):
    """A columnar frame partitioned into per-shard code matrices.

    Subclasses :class:`ColumnarFrame`, so every consumer of the frame
    algebra accepts it; the inherited operators see the *coalesced*
    matrix through the lazy ``_codes`` property (correct, merely
    unsharded, and reported via
    :func:`repro.db.sharded.note_coalesce`), while the hot operators
    below run shard-parallel-by-construction:

    - **semijoin** — shard x shard when the two sides are
      co-partitioned (:meth:`_co_partitioned`); otherwise one build
      table of per-shard-deduplicated packed keys (bounded by the
      merged separator domain), broadcast against every shard's probe
      keys;
    - **join** — shard x shard when co-partitioned (shard *i* joins
      shard *i* only, no build-side materialization); otherwise the
      build side is broadcast against each shard (shard x build).
      Either way the output inherits the partitioning because the
      probe side keeps all its columns;
    - **project / select_in / rename / reorder** — per-shard maps;
      a projection that drops the partition variable coalesces (rows
      from different shards may collide, so per-shard dedup would no
      longer be global dedup).

    Every per-shard map dispatches through the frame's
    :class:`~repro.db.executor.ShardExecutor` (inherited from the
    originating relation), so shards run in parallel when a worker
    pool is configured — results are bit-identical to the serial
    order because the executor preserves shard-index ordering.

    Invariant: the shard frames hold pairwise-disjoint row sets — every
    row lives in the shard given by hashing its ``partition_var`` code
    (``partition_var=None`` only for width-0 frames, where at most one
    shard is nonempty).
    """

    def __init__(
        self,
        variables: Sequence[str],
        shards: Sequence[ColumnarFrame],
        dictionary: Dictionary,
        partition_var: Optional[str] = None,
        executor: Optional[ShardExecutor] = None,
    ) -> None:
        self.variables = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("frame variables must be distinct")
        self.shards: List[ColumnarFrame] = list(shards)
        if not self.shards:
            raise ValueError("a sharded frame needs at least one shard")
        self.dictionary = dictionary
        self.partition_var = (
            partition_var if partition_var in self.variables else None
        )
        # Injected ShardExecutor for the per-shard operators (None =>
        # the process default); inherited from the originating relation
        # and propagated through every derived frame.
        self.executor = executor
        self._rows_cache: Optional[Set[Row]] = None
        self._coalesced: Optional[np.ndarray] = None

    def _exec(self) -> ShardExecutor:
        executor = self.executor
        return executor if executor is not None else get_default_executor()

    @classmethod
    def from_sharded_atom(
        cls, relation: ShardedColumnarRelation, variables: Sequence[str]
    ) -> "ShardedColumnarFrame":
        """Bind a sharded relation to atom variables, shard by shard.

        Repeated-variable selections are applied per shard (vectorized
        column compares on each shard's matrix).  The frame stays
        partitioned on the relation's key column's variable: routing
        hashed that column's code, and rows passing the equality
        selection carry the same code at the variable's first
        occurrence.
        """
        variables = tuple(variables)
        if len(variables) != relation.arity:
            raise ValueError(
                f"atom has {len(variables)} positions, relation "
                f"{relation.name} has arity {relation.arity}"
            )
        shard_frames = [
            ColumnarFrame.from_atom(shard, variables)
            for shard in relation.shards
        ]
        partition_var = (
            variables[relation.key_column] if relation.arity else None
        )
        return cls(
            shard_frames[0].variables,
            shard_frames,
            relation.dictionary,
            partition_var,
            executor=relation.executor,
        )

    # ------------------------------------------------------------------
    # coalescing (compatibility with every inherited operator)
    # ------------------------------------------------------------------
    @property
    def _codes(self) -> np.ndarray:
        if self._coalesced is None:
            parts = self._exec().map(
                lambda shard: shard.codes(), self.shards
            )
            if len(parts) == 1:
                self._coalesced = parts[0]
            else:
                note_coalesce(sum(len(part) for part in parts))
                self._coalesced = np.concatenate(parts, axis=0)
        return self._coalesced

    def to_plain(self) -> ColumnarFrame:
        """The equivalent single-matrix :class:`ColumnarFrame`."""
        return ColumnarFrame(
            self.variables, self._codes, self.dictionary, _distinct=True
        )

    def __len__(self) -> int:
        # Shards are disjoint by the partitioning invariant.
        return sum(len(shard) for shard in self.shards)

    def is_empty(self) -> bool:
        return all(shard.is_empty() for shard in self.shards)

    def _resharded(
        self,
        shards: Sequence[ColumnarFrame],
        variables: Optional[Sequence[str]] = None,
        partition_var: Optional[str] = None,
    ) -> "ShardedColumnarFrame":
        return ShardedColumnarFrame(
            variables if variables is not None else self.variables,
            shards,
            self.dictionary,
            partition_var if partition_var is not None
            else self.partition_var,
            executor=self.executor,
        )

    # ------------------------------------------------------------------
    # shard-parallel algebra
    # ------------------------------------------------------------------
    def _co_partitioned(self, other) -> bool:
        """True when shard *i* of ``self`` can pair with shard *i* of
        ``other`` directly: both sides hash-partition on the same
        shared variable, over the same dictionary (identical codes =>
        identical hashes), into the same number of shards.  Rows of
        ``self`` shard *i* then only ever match rows of ``other``
        shard *i*, so no build-side materialization is needed."""
        return (
            isinstance(other, ShardedColumnarFrame)
            and self.partition_var is not None
            and other.partition_var == self.partition_var
            and other.dictionary is self.dictionary
            and len(other.shards) == len(self.shards)
        )

    def project(self, variables: Sequence[str]) -> ColumnarFrame:
        if self.partition_var is not None and self.partition_var in variables:
            # Equal projected rows agree on the partition variable, so
            # they live in the same shard: per-shard dedup is global.
            return self._resharded(
                self._exec().map(
                    lambda shard: shard.project(variables), self.shards
                ),
                variables=tuple(variables),
            )
        return self.to_plain().project(variables)

    def rename(self, mapping: Dict[str, str]) -> "ShardedColumnarFrame":
        renamed_partition = (
            mapping.get(self.partition_var, self.partition_var)
            if self.partition_var is not None
            else None
        )
        return ShardedColumnarFrame(
            tuple(mapping.get(v, v) for v in self.variables),
            self._exec().map(
                lambda shard: shard.rename(mapping), self.shards
            ),
            self.dictionary,
            renamed_partition,
            executor=self.executor,
        )

    def select_in(
        self, variables: Sequence[str], allowed: Set[Row]
    ) -> "ShardedColumnarFrame":
        return self._resharded(
            self._exec().map(
                lambda shard: shard.select_in(variables, allowed),
                self.shards,
            )
        )

    def reorder(self, variables: Sequence[str]) -> "ShardedColumnarFrame":
        return self._resharded(
            self._exec().map(
                lambda shard: shard.reorder(variables), self.shards
            ),
            variables=tuple(variables),
        )

    def semijoin(self, other) -> ColumnarFrame:
        shared = tuple(v for v in self.variables if v in other.variables)
        if not shared:
            return (
                self
                if not other.is_empty()
                else self.empty_like(self.variables)
            )
        other = self._coerce(other)
        if self._co_partitioned(other):
            # Shard x shard: matching rows agree on the partition
            # variable, hence live in same-index shards on both sides.
            # No build table, no coalesce of either side.
            pairs = list(zip(self.shards, other.shards))
            new_shards = self._exec().map(
                lambda pair: pair[0].semijoin(pair[1]), pairs
            )
            return self._resharded(new_shards)
        cardinality = len(self.dictionary)
        positions = list(self.positions(shared))
        probes = self._exec().map(
            lambda shard: pack_rows(
                shard.codes()[:, positions], cardinality
            ),
            self.shards,
        )
        if any(probe is None for probe in probes):
            return self.to_plain().semijoin(other)  # keys too wide
        # Domain-sized packed span -> one boolean scatter table (no
        # sorts, one gather per probe shard); wider spans fall back to
        # sorted per-shard-deduplicated build keys.
        bits = (
            max(int(cardinality - 1).bit_length(), 1)
            if cardinality > 1
            else 1
        )
        span_bits = min(bits * len(shared), 63)
        span = 1 << span_bits
        table: Optional[np.ndarray] = None
        if span <= max(_TABLE_SPAN_MIN, 4 * cardinality):
            table = _shard_build_table(other, shared, cardinality, span)
        if table is not None:
            masks = self._exec().map(
                lambda probe: table[probe], probes
            )
        else:
            build = _shard_build_keys(other, shared, cardinality)
            if build is None:
                return self.to_plain().semijoin(other)
            masks = self._exec().map(
                lambda probe: np.isin(probe, build), probes
            )
        new_shards = self._exec().map(
            lambda pair: ColumnarFrame(
                pair[0].variables,
                pair[0].codes()[pair[1]],
                self.dictionary,
                _distinct=True,
            ),
            list(zip(self.shards, masks)),
        )
        return self._resharded(new_shards)

    def join(self, other) -> ColumnarFrame:
        other = self._coerce(other)
        if self._co_partitioned(other):
            # Shard x shard co-partitioned join: shard i joins shard i
            # only — neither side is materialized globally, extending
            # the coalesced_row_peak promise to the build side.
            pairs = list(zip(self.shards, other.shards))
            new_shards = self._exec().map(
                lambda pair: pair[0].join(pair[1]), pairs
            )
            return self._resharded(
                new_shards, variables=new_shards[0].variables
            )
        if isinstance(other, ShardedColumnarFrame):
            other = other.to_plain()  # the broadcast build side
        build = other
        new_shards = self._exec().map(
            lambda shard: shard.join(build), self.shards
        )
        # The join keeps every probe-side column, so the output stays
        # partitioned on the same variable.
        return self._resharded(
            new_shards, variables=new_shards[0].variables
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedColumnarFrame({self.variables}, {len(self)} rows, "
            f"{len(self.shards)} shards on {self.partition_var!r})"
        )


# ----------------------------------------------------------------------
# backend dispatch helpers
# ----------------------------------------------------------------------
def frame_backend(frame) -> str:
    """Which backend a frame object belongs to."""
    if isinstance(frame, ShardedColumnarFrame):
        return SHARDED_BACKEND
    return (
        COLUMNAR_BACKEND
        if isinstance(frame, ColumnarFrame)
        else PYTHON_BACKEND
    )


def relation_backend(relation) -> str:
    """Which backend a relation object belongs to."""
    if isinstance(relation, ShardedColumnarRelation):
        return SHARDED_BACKEND
    return (
        COLUMNAR_BACKEND
        if isinstance(relation, ColumnarRelation)
        else PYTHON_BACKEND
    )


def columnar_family(frames: Iterable) -> Optional[Dictionary]:
    """The shared dictionary of an all-columnar frame family, else None.

    The vectorized pipelines (FAQ aggregation, direct access,
    enumeration preprocessing) compare codes across frames, which is
    only sound when every frame is a :class:`ColumnarFrame` over one
    :class:`Dictionary`.  Returns that dictionary when so, and ``None``
    for empty, mixed-backend, or mixed-dictionary collections (callers
    then take the scalar path).
    """
    dictionary: Optional[Dictionary] = None
    for frame in frames:
        if not isinstance(frame, ColumnarFrame):
            return None
        if dictionary is None:
            dictionary = frame.dictionary
        elif frame.dictionary is not dictionary:
            return None
    return dictionary


def relation_family(relations: Iterable) -> Optional[Dictionary]:
    """The shared dictionary of an all-columnar relation family, else None.

    The relation-level counterpart of :func:`columnar_family`, with the
    same soundness rule: cross-relation code comparisons (the frontier
    Generic Join probes every atom's prefix tables with one shared
    frontier matrix) require every relation to be a
    :class:`~repro.db.columnar.ColumnarRelation` — sharded ones
    included — over one :class:`~repro.db.columnar.Dictionary`.
    ``None`` sends callers to their decoded fallback.
    """
    dictionary: Optional[Dictionary] = None
    for relation in relations:
        if not isinstance(relation, ColumnarRelation):
            return None
        if dictionary is None:
            dictionary = relation.dictionary
        elif relation.dictionary is not dictionary:
            return None
    return dictionary


def frame_for_atom(relation, variables: Sequence[str]):
    """An atom frame of the backend matching the stored relation."""
    if isinstance(relation, ShardedColumnarRelation):
        return ShardedColumnarFrame.from_sharded_atom(relation, variables)
    if isinstance(relation, ColumnarRelation):
        return ColumnarFrame.from_atom(relation, variables)
    return Frame.from_atom(relation, variables)


def unit_frame_like(frames: Iterable) -> "Frame | ColumnarFrame":
    """A join-identity frame of the same backend as ``frames``.

    Falls back to the Python backend when the collection is empty.
    """
    for frame in frames:
        return frame.unit_like()
    return Frame.unit()


def empty_frame_like(
    frames: Iterable, variables: Sequence[str] = ()
) -> "Frame | ColumnarFrame":
    """A join-absorber frame of the same backend as ``frames``."""
    for frame in frames:
        return frame.empty_like(variables)
    return Frame.empty(variables)


# Make isinstance checks against the common backend interface work.
from repro.db.interface import register_backends as _register_backends

_register_backends()
