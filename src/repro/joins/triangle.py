"""Triangle detection for the query q△ (paper Theorem 3.2).

Implements the Alon–Yuster–Zwick degree-split algorithm exactly as the
paper's proof describes:

1. call a domain element *light* when its degree (number of tuples it
   appears in) is at most Δ = m^{(ω-1)/(ω+1)}, *heavy* otherwise;
2. answers with a light element at some position are found by extending
   the light tuples in at most Δ ways and filtering with the third
   relation — time Õ(m·Δ);
3. answers among heavy elements only are found by Boolean matrix
   multiplication over the ≤ m/Δ heavy elements — time Õ((m/Δ)^ω).

Balancing gives Õ(m^{2ω/(ω+1)}); with the effective ω of the chosen
backend this is the exponent the benchmark checks.

Inputs are databases for the triangle query's relations R1(x,y),
R2(y,z), R3(z,x).  Plain-graph triangle finding (every Ri = the edge
set, both directions) is wrapped by :mod:`repro.solvers.triangle`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.db.database import Database
from repro.matmul.dense import get_backend
from repro.query.catalog import triangle_query

DEFAULT_OMEGA = 3.0  # effective exponent of the naive backend


def triangle_relations(db: Database) -> Tuple[Set, Set, Set]:
    """Extract (R1, R2, R3) tuple sets for q△ and validate arity."""
    rels = []
    for name in ("R1", "R2", "R3"):
        rel = db[name]
        if rel.arity != 2:
            raise ValueError(f"{name} must be binary for the triangle query")
        rels.append(set(rel))
    return tuple(rels)  # type: ignore[return-value]


def triangle_boolean_naive(db: Database) -> bool:
    """Baseline: for each R1 edge, intersect neighbor sets — O(m^{3/2})
    on AGM-tight inputs, O(m^2) worst case; no matrix multiplication.

    This is the 'combinatorial' reference point the AYZ algorithm is
    compared against.
    """
    r1, r2, r3 = triangle_relations(db)
    by_y: Dict[object, Set[object]] = {}
    for y, z in r2:
        by_y.setdefault(y, set()).add(z)
    by_x: Dict[object, Set[object]] = {}
    for z, x in r3:
        by_x.setdefault(x, set()).add(z)
    for x, y in r1:
        zs_from_y = by_y.get(y)
        if not zs_from_y:
            continue
        zs_to_x = by_x.get(x)
        if not zs_to_x:
            continue
        small, large = (
            (zs_from_y, zs_to_x)
            if len(zs_from_y) <= len(zs_to_x)
            else (zs_to_x, zs_from_y)
        )
        if any(z in large for z in small):
            return True
    return False


def triangle_join_naive(db: Database) -> Set[Tuple]:
    """All (x, y, z) triangles by the same neighbor-intersection scan.

    Worst-case optimal in the AGM sense (Õ(m^{3/2}) on any input when
    driven by the lighter relation): this materializes q̄△.
    """
    r1, r2, r3 = triangle_relations(db)
    by_y: Dict[object, Set[object]] = {}
    for y, z in r2:
        by_y.setdefault(y, set()).add(z)
    r3_set = r3
    out: Set[Tuple] = set()
    for x, y in r1:
        for z in by_y.get(y, ()):
            if (z, x) in r3_set:
                out.add((x, y, z))
    return out


def _degrees(relations: Iterable[Set]) -> Dict[object, int]:
    degree: Dict[object, int] = {}
    for rel in relations:
        for tup in rel:
            for value in tup:
                degree[value] = degree.get(value, 0) + 1
    return degree


def split_threshold(m: int, omega: float) -> float:
    """The paper's Δ = m^{(ω-1)/(ω+1)} degree threshold."""
    if m <= 0:
        return 0.0
    return float(m) ** ((omega - 1.0) / (omega + 1.0))


def triangle_boolean_ayz(
    db: Database,
    backend: str = "numpy",
    omega: float = DEFAULT_OMEGA,
    delta: Optional[float] = None,
) -> bool:
    """Theorem 3.2: decide q△ in Õ(m^{2ω/(ω+1)}).

    ``omega`` is the exponent assumed for the backend when computing the
    split threshold (the ablation bench varies both); ``delta``
    overrides the threshold directly.
    """
    r1, r2, r3 = triangle_relations(db)
    m = len(r1) + len(r2) + len(r3)
    if m == 0:
        return False
    if delta is None:
        delta = split_threshold(m, omega)
    degree = _degrees((r1, r2, r3))

    def is_light(value: object) -> bool:
        return degree.get(value, 0) <= delta

    # Part 1 — answers containing a light element at x, y or z.  For a
    # light y: take R1 tuples with light y, extend through R2 (at most
    # Δ ways), filter with R3; symmetrically for x (drive from R3
    # through R1) and z (drive from R2 through R3).
    if _light_pass(r1, r2, r3, is_light):
        return True
    if _light_pass(r3, r1, r2, is_light):  # light x: R3(z,x), R1(x,y)
        return True
    if _light_pass(r2, r3, r1, is_light):  # light z: R2(y,z), R3(z,x)
        return True

    # Part 2 — all three elements heavy: Boolean matrix multiplication
    # over the heavy domain.
    heavy = sorted(
        (v for v, d in degree.items() if d > delta), key=repr
    )
    if not heavy:
        return False
    position = {v: i for i, v in enumerate(heavy)}
    n = len(heavy)
    a = np.zeros((n, n), dtype=bool)
    for x, y in r1:
        if x in position and y in position:
            a[position[x], position[y]] = True
    b = np.zeros((n, n), dtype=bool)
    for y, z in r2:
        if y in position and z in position:
            b[position[y], position[z]] = True
    product = get_backend(backend)(a, b)
    for z, x in r3:
        if z in position and x in position:
            if product[position[x], position[z]]:
                return True
    return False


def _light_pass(first: Set, second: Set, third: Set, is_light) -> bool:
    """Detect a triangle whose middle element (joining ``first`` to
    ``second``) is light.

    ``first`` ⊆ A×B, ``second`` ⊆ B×C, ``third`` ⊆ C×A; reports whether
    some (a,b) ∈ first, (b,c) ∈ second with b light and (c,a) ∈ third.
    """
    successors: Dict[object, List[object]] = {}
    for b, c in second:
        if is_light(b):
            successors.setdefault(b, []).append(c)
    for a, b in first:
        for c in successors.get(b, ()):
            if (c, a) in third:
                return True
    return False
