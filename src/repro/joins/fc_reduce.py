"""Linear-time reduction of free-connex queries to acyclic join queries.

This implements the construction behind the upper bounds of Theorems
3.13 (counting), 3.17 (enumeration) and 3.18 (direct access): for a
free-connex acyclic query ``q`` with free variables ``S``, compute in
O(m) an acyclic *join* query ``q'`` over ``S`` with ``q'(D') = q(D)``
(see the discussion of [14, Section 4.1] in the paper).  All three
linear-preprocessing algorithms then run on ``q'``.

Construction (correctness argument in the docstring of
:func:`free_connex_reduce`):

1. fully semijoin-reduce the body over a join tree of ``H``;
2. build a join tree of ``H ∪ {S}`` rooted at the virtual ``S`` node;
3. for every child ``c`` of the root, output the reduced frame of
   ``c`` projected onto ``F_c = vars(c) ∩ S``.

Why this is correct: root the extended tree at the S-node.  For any
node ``e`` and any free variable ``v`` occurring in the subtree of
``e``, the tree path from that occurrence to the S-node passes through
``e``, so the running intersection property forces ``v ∈ vars(e)``.
Hence every free variable below a child ``c`` of the root is already
in ``F_c``.  After full reduction the database is globally consistent,
so every tuple of the frame at ``c`` extends to a join of the whole
subtree of ``c`` — therefore the S-tuples realizable by ``c``'s subtree
are exactly ``π_{F_c}`` of its reduced frame.  Distinct children share
no *existential* variables (their connecting path goes through the
S-node, whose bag is all-free), so subtree extensions glue, giving
``q(D) = ⋈_c π_{F_c}(frame_c)``.  Finally the hypergraph ``{F_c}``
inherits acyclicity (checked, not assumed — a failed check would be a
bug, and tests compare against brute force throughout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.hypergraph.freeconnex import free_connex_join_tree
from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.joins.vectorized import empty_frame_like, unit_frame_like
from repro.query.cq import ConjunctiveQuery


@dataclass
class ReducedJoinQuery:
    """An acyclic join query over frames, equivalent to the original.

    ``head`` is the original query's head order; ``frames`` maps node id
    to a frame whose variables are a subset of ``head``; ``tree`` is a
    join tree over exactly those node ids.  ``is_empty`` short-circuits
    the downstream algorithms when some relation died during reduction.
    """

    head: Tuple[str, ...]
    frames: Dict[int, Frame]
    tree: JoinTree
    is_empty: bool = False

    def answer_frame(self) -> Frame:
        """Materialize the full answer set (test helper, output-sized)."""
        if self.is_empty:
            return empty_frame_like(self.frames.values(), self.head)
        result = unit_frame_like(self.frames.values())
        order: List[int] = []
        for node in self.tree.bottom_up():
            order.append(node)
        accumulated = dict(self.frames)
        for node in order:
            parent = self.tree.parent.get(node)
            if parent is not None:
                accumulated[parent] = accumulated[parent].join(
                    accumulated[node]
                )
        for root in self.tree.roots:
            result = result.join(accumulated[root])
        return result.reorder(self.head)


def free_connex_reduce(
    query: ConjunctiveQuery,
    db: Database,
) -> ReducedJoinQuery:
    """Reduce a free-connex query plus database to an equivalent
    acyclic join query over the free variables, in O(m).

    Raises :class:`ValueError` for non-free-connex queries (callers
    should dispatch on :func:`repro.hypergraph.is_free_connex` first).
    """
    head = tuple(query.head)
    if not head:
        raise ValueError(
            "Boolean queries have no free variables to reduce to; "
            "use yannakakis_boolean"
        )
    extended_tree, s_node = free_connex_join_tree(query)
    body_tree = join_tree(query.hypergraph())
    reduced = full_reducer_pass(
        dict(enumerate(atom_frames(query, db))), body_tree
    )
    if any(frame.is_empty() for frame in reduced.values()):
        placeholder = empty_frame_like(reduced.values(), head)
        return ReducedJoinQuery(
            head=head,
            frames={0: placeholder},
            tree=JoinTree(bags={0: frozenset(head)}),
            is_empty=True,
        )
    free = frozenset(head)
    frames: Dict[int, Frame] = {}
    for index, child in enumerate(extended_tree.children(s_node)):
        scope = extended_tree.bags[child] & free
        ordered_scope = tuple(v for v in head if v in scope)
        if not ordered_scope:
            # The child's subtree carries no free variables; its
            # satisfiability was already verified by the reduction.
            continue
        frames[index] = reduced[child].project(ordered_scope)
    if not frames:  # pragma: no cover - impossible for safe queries
        raise AssertionError("no free variables found under the S node")
    hypergraph = Hypergraph(
        vertices=free,
        edges=[frozenset(f.variables) for f in frames.values()],
    )
    if not is_acyclic(hypergraph):  # pragma: no cover - would be a bug
        raise AssertionError(
            "free-connex reduction produced a cyclic join query; "
            "this contradicts the construction's correctness argument"
        )
    # Hypergraph edges were listed in ascending frame-key order, so the
    # GYO node ids coincide with the frame keys after re-indexing.
    keys = sorted(frames)
    tree_raw = join_tree(hypergraph)
    remap = {i: keys[i] for i in range(len(keys))}
    tree = JoinTree(
        bags={remap[i]: bag for i, bag in tree_raw.bags.items()},
        parent={
            remap[c]: remap[p] for c, p in tree_raw.parent.items()
        },
    )
    return ReducedJoinQuery(head=head, frames=frames, tree=tree)
