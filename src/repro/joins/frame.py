"""The :class:`Frame`: an intermediate result with named columns.

Relations store positional tuples; join algorithms need to know *which
variable* each column binds.  A frame pairs a variable tuple with a set
of rows and provides the small relational algebra the algorithms are
written in (project, select, semijoin, join, rename).

Frames are deliberately immutable-ish (operations return new frames) so
algorithm code reads like the algebra in the paper.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.db.relation import Relation

Row = Tuple[object, ...]


class Frame:
    """A set of rows over an ordered tuple of variables."""

    def __init__(
        self, variables: Sequence[str], rows: Iterable[Sequence[object]] = ()
    ) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("frame variables must be distinct")
        self.rows: Set[Row] = set()
        width = len(self.variables)
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row of width {len(tup)} for frame of width {width}"
                )
            self.rows.add(tup)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_atom(cls, relation: Relation, variables: Sequence[str]) -> "Frame":
        """Bind a stored relation to atom variables.

        Repeated variables act as equality selections: ``R(x, x)`` keeps
        only tuples with equal components and exposes one column.
        """
        variables = tuple(variables)
        if len(variables) != relation.arity:
            raise ValueError(
                f"atom has {len(variables)} positions, relation "
                f"{relation.name} has arity {relation.arity}"
            )
        distinct: List[str] = []
        first_position: Dict[str, int] = {}
        for pos, var in enumerate(variables):
            if var not in first_position:
                first_position[var] = pos
                distinct.append(var)
        rows = []
        for tup in relation:
            ok = all(
                tup[pos] == tup[first_position[var]]
                for pos, var in enumerate(variables)
            )
            if ok:
                rows.append(tuple(tup[first_position[v]] for v in distinct))
        return cls(distinct, rows)

    @classmethod
    def unit(cls) -> "Frame":
        """The frame with no variables and one (empty) row — join identity."""
        return cls((), [()])

    @classmethod
    def empty(cls, variables: Sequence[str] = ()) -> "Frame":
        """A frame with no rows — join absorber."""
        return cls(variables, [])

    def unit_like(self) -> "Frame":
        """A unit frame of the same backend (common frame interface)."""
        return Frame.unit()

    def empty_like(self, variables: Sequence[str] = ()) -> "Frame":
        """An empty frame of the same backend (common frame interface)."""
        return Frame.empty(variables)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self.rows

    def is_empty(self) -> bool:
        return not self.rows

    def positions(self, variables: Sequence[str]) -> Tuple[int, ...]:
        """Column positions of the given variables."""
        index = {v: i for i, v in enumerate(self.variables)}
        try:
            return tuple(index[v] for v in variables)
        except KeyError as exc:
            raise KeyError(f"variable {exc.args[0]!r} not in frame") from None

    def key_of(self, row: Row, positions: Sequence[int]) -> Row:
        return tuple(row[p] for p in positions)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def project(self, variables: Sequence[str]) -> "Frame":
        """Projection (set semantics, duplicates collapse)."""
        pos = self.positions(variables)
        return Frame(
            variables, {tuple(row[p] for p in pos) for row in self.rows}
        )

    def rename(self, mapping: Dict[str, str]) -> "Frame":
        """Rename variables through ``mapping`` (missing keys unchanged)."""
        return Frame(
            tuple(mapping.get(v, v) for v in self.variables), self.rows
        )

    def select_in(
        self, variables: Sequence[str], allowed: Set[Row]
    ) -> "Frame":
        """Keep rows whose projection onto ``variables`` is in ``allowed``."""
        pos = self.positions(variables)
        return Frame(
            self.variables,
            (r for r in self.rows if self.key_of(r, pos) in allowed),
        )

    def semijoin(self, other: "Frame") -> "Frame":
        """Rows of self that agree with some row of ``other`` on the
        shared variables."""
        shared = tuple(v for v in self.variables if v in other.variables)
        if not shared:
            return self if not other.is_empty() else Frame.empty(self.variables)
        other_keys = {
            other.key_of(row, other.positions(shared)) for row in other.rows
        }
        return self.select_in(shared, other_keys)

    def join(self, other: "Frame") -> "Frame":
        """Natural join (hash join on the shared variables)."""
        shared = tuple(v for v in self.variables if v in other.variables)
        other_only = tuple(
            v for v in other.variables if v not in self.variables
        )
        out_vars = self.variables + other_only
        if not shared:
            if not self.rows:
                return Frame(out_vars, [])
            # Hoisted: building the distinct right-side extensions once
            # keeps the cross product O(|L|·|extras|) instead of
            # re-evaluating the set comprehension per left row.
            extras = {
                tuple(r[p] for p in other.positions(other_only))
                for r in other.rows
            }
            rows = [
                left + right_extra
                for left in self.rows
                for right_extra in extras
            ]
            return Frame(out_vars, rows)
        # Build on the smaller side.
        build, probe, build_is_self = (
            (self, other, True)
            if len(self.rows) <= len(other.rows)
            else (other, self, False)
        )
        build_pos = build.positions(shared)
        table: Dict[Row, List[Row]] = {}
        for row in build.rows:
            table.setdefault(build.key_of(row, build_pos), []).append(row)
        probe_pos = probe.positions(shared)
        rows = []
        other_pos_in = other.positions(other_only) if other_only else ()
        for probe_row in probe.rows:
            matches = table.get(probe.key_of(probe_row, probe_pos))
            if not matches:
                continue
            for build_row in matches:
                self_row = build_row if build_is_self else probe_row
                other_row = probe_row if build_is_self else build_row
                extra = tuple(other_row[p] for p in other_pos_in)
                rows.append(self_row + extra)
        return Frame(out_vars, rows)

    def reorder(self, variables: Sequence[str]) -> "Frame":
        """The same rows with columns permuted to ``variables``."""
        if set(variables) != set(self.variables):
            raise ValueError("reorder must use exactly the frame's variables")
        pos = self.positions(variables)
        return Frame(
            variables, (tuple(r[p] for p in pos) for r in self.rows)
        )

    def to_tuples(self, variables: Optional[Sequence[str]] = None) -> Set[Row]:
        """Rows as a set of tuples, optionally in a given variable order."""
        if variables is None:
            return set(self.rows)
        pos = self.positions(variables)
        return {tuple(r[p] for p in pos) for r in self.rows}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Frame({self.variables}, {len(self.rows)} rows)"
