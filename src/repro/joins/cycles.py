"""Cycle query evaluation and triangle counting.

The survey touches cycle joins twice: cycle queries q°k are the
canonical cyclic family (Prop 3.3 embeds triangles into all of them;
Section 4.1.1 cites lower bounds for "cycle joins" under the
Combinatorial k-Clique Hypothesis; Example 4.2 embeds K5 into q°5).
This module adds the standard evaluation algorithms:

- :func:`cycle_boolean_meet_in_middle` — decide q°k by joining two
  half-paths of length ⌈k/2⌉/⌊k/2⌋ and intersecting on the endpoint
  pair: Õ(m^{⌈k/2⌉}) worst case, the classical combinatorial bound;
- :func:`cycle_boolean_generic` — the worst-case-optimal route,
  Õ(m^{k/2}) by the AGM exponent of the k-cycle;
- :func:`count_triangles` — count answers of q̄△ exactly, either
  combinatorially or via the trace of A·B·C using integer matrix
  multiplication (the counting sibling of Theorem 3.2's technique,
  from the same Alon–Yuster–Zwick paper [6]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.db.database import Database
from repro.joins.frame import Frame
from repro.joins.generic_join import generic_join
from repro.joins.triangle import triangle_relations
from repro.query.catalog import cycle_query


def _cycle_relations(db: Database, k: int) -> List[Set[Tuple]]:
    relations = []
    for i in range(1, k + 1):
        rel = db[f"R{i}"]
        if rel.arity != 2:
            raise ValueError(f"R{i} must be binary for the {k}-cycle query")
        relations.append(set(rel))
    return relations


def cycle_boolean_generic(db: Database, k: int) -> bool:
    """Decide q°k through the worst-case-optimal join (Õ(m^{k/2}))."""
    query = cycle_query(k)
    return bool(generic_join(query, db, limit=1))


def cycle_boolean_meet_in_middle(db: Database, k: int) -> bool:
    """Decide q°k by splitting the cycle into two paths.

    Join R1..R⌈k/2⌉ into a frame over (v1, v_mid) and R⌈k/2⌉+1..Rk
    into a frame over (v_mid, v1); the cycle exists iff the two agree
    on some endpoint pair.  This is the textbook combinatorial
    algorithm whose optimality for combinatorial algorithms [41] cites.
    """
    if k < 3:
        raise ValueError("cycles need k >= 3")
    relations = _cycle_relations(db, k)
    half = (k + 1) // 2

    def path_pairs(parts: List[Set[Tuple]]) -> Set[Tuple]:
        """Endpoint pairs (start, end) reachable along the chain."""
        current: Dict[object, Set[object]] = {}
        for a, b in parts[0]:
            current.setdefault(a, set()).add(b)
        for rel in parts[1:]:
            nxt_index: Dict[object, Set[object]] = {}
            for a, b in rel:
                nxt_index.setdefault(a, set()).add(b)
            merged: Dict[object, Set[object]] = {}
            for start, mids in current.items():
                targets: Set[object] = set()
                for mid in mids:
                    targets |= nxt_index.get(mid, set())
                if targets:
                    merged[start] = targets
            current = merged
            if not current:
                return set()
        return {
            (start, end) for start, ends in current.items() for end in ends
        }

    first = path_pairs(relations[:half])
    if not first:
        return False
    second = path_pairs(relations[half:])
    if not second:
        return False
    # first: v1 -> v_{half+1}; second: v_{half+1} -> v1 (wrapping).
    flipped = {(b, a) for (a, b) in second}
    return bool(first & flipped)


def count_triangles_combinatorial(db: Database) -> int:
    """Count q̄△ answers by the neighbor-intersection scan."""
    r1, r2, r3 = triangle_relations(db)
    by_y: Dict[object, Set[object]] = {}
    for y, z in r2:
        by_y.setdefault(y, set()).add(z)
    count = 0
    for x, y in r1:
        for z in by_y.get(y, ()):
            if (z, x) in r3:
                count += 1
    return count


def count_triangles_matrix(db: Database) -> int:
    """Count q̄△ answers as trace(A·B·C) over the integers.

    A, B, C are the adjacency matrices of R1, R2, R3 on the active
    domain; entry (x, x) of A·B·C counts the (y, z) completions, so
    the trace counts all answers.  This is the counting use of fast
    matrix multiplication from [6] that Section 2.3 alludes to.
    """
    r1, r2, r3 = triangle_relations(db)
    domain: Set[object] = set()
    for rel in (r1, r2, r3):
        for a, b in rel:
            domain.add(a)
            domain.add(b)
    if not domain:
        return 0
    index = {value: i for i, value in enumerate(sorted(domain, key=repr))}
    n = len(index)
    a = np.zeros((n, n), dtype=np.int64)
    b = np.zeros((n, n), dtype=np.int64)
    c = np.zeros((n, n), dtype=np.int64)
    for x, y in r1:
        a[index[x], index[y]] = 1
    for y, z in r2:
        b[index[y], index[z]] = 1
    for z, x in r3:
        c[index[z], index[x]] = 1
    product = a @ b @ c
    return int(np.trace(product))


def count_triangles(db: Database, method: str = "matrix") -> int:
    """Count triangle-query answers (``method``: matrix/combinatorial)."""
    if method == "matrix":
        return count_triangles_matrix(db)
    if method == "combinatorial":
        return count_triangles_combinatorial(db)
    raise ValueError(f"unknown triangle counting method {method!r}")
