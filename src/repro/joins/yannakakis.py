"""The Yannakakis algorithm (Theorem 3.1 and its output variants).

Given an acyclic query and a join tree:

- :func:`yannakakis_boolean` — linear-time Boolean evaluation
  (Theorem 3.1): full reduction, then check no relation died.
- :func:`yannakakis_full` — full join results for acyclic join queries
  in O(m + output) after reduction (the generalization used by
  Theorem 3.8 / [19, Lemma 19]).
- :func:`yannakakis_project` — general acyclic CQ evaluation with
  projections: bottom-up joins, projecting each intermediate onto the
  free variables seen so far plus the separator to the parent.  For
  non-free-connex queries intermediates may exceed the output size —
  that is exactly the gap Theorems 3.12/3.16 prove unavoidable.

The engine facade (:mod:`repro.engine`) routes Boolean prepared
queries through :func:`yannakakis_boolean` and acyclic
materialize-then-serve plans through :func:`yannakakis_project`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.db.database import Database
from repro.hypergraph.gyo import join_tree
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.semijoin import full_reducer_pass, atom_frames
from repro.joins.vectorized import empty_frame_like, unit_frame_like
from repro.query.cq import ConjunctiveQuery


def _tree_for(query: ConjunctiveQuery, tree: Optional[JoinTree]) -> JoinTree:
    if tree is not None:
        return tree
    return join_tree(query.hypergraph())


def yannakakis_boolean(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[JoinTree] = None,
    backend: Optional[str] = None,
) -> bool:
    """Decide a Boolean acyclic query in linear time (Theorem 3.1).

    Works for any head (the head is ignored — satisfiability of the
    body is what is decided).  Raises on cyclic queries.
    """
    tree = _tree_for(query, tree)
    frames = dict(enumerate(atom_frames(query, db, backend=backend)))
    if any(frame.is_empty() for frame in frames.values()):
        return False
    reduced = full_reducer_pass(frames, tree)
    return all(not frame.is_empty() for frame in reduced.values())


def yannakakis_full(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[JoinTree] = None,
    backend: Optional[str] = None,
) -> Frame:
    """Materialize an acyclic *join* query in O(m + output).

    After full reduction every partial join along the tree is supported
    by at least one output tuple, so intermediate results never exceed
    the final output — the classical output-sensitivity argument.
    ``backend`` forces the frame backend; by default each atom frame
    matches its stored relation, so a columnar database is evaluated by
    the vectorized reducer/join stack end to end.
    """
    if not query.is_join_query():
        raise ValueError(
            "yannakakis_full requires a join query; use "
            "yannakakis_project for queries with projections"
        )
    tree = _tree_for(query, tree)
    frames = dict(enumerate(atom_frames(query, db, backend=backend)))
    reduced = full_reducer_pass(frames, tree)
    if any(frame.is_empty() for frame in reduced.values()):
        return empty_frame_like(reduced.values(), tuple(query.head))
    accumulated: Dict[int, Frame] = dict(reduced)
    for node in tree.bottom_up():
        parent = tree.parent.get(node)
        if parent is not None:
            accumulated[parent] = accumulated[parent].join(accumulated[node])
    result = unit_frame_like(accumulated.values())
    for root in tree.roots:
        result = result.join(accumulated[root])
    return result.reorder(tuple(query.head))


def yannakakis_project(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[JoinTree] = None,
    backend: Optional[str] = None,
) -> Frame:
    """Evaluate an acyclic query with projections.

    Bottom-up DP over the join tree: at each node, join the children's
    partial results into the node's (reduced) relation and project onto
    the free variables plus the separator toward the parent.  Runtime is
    O(m · output) in the worst case; for free-connex queries the
    dedicated pipeline in :mod:`repro.counting`/:mod:`repro.enumeration`
    achieves linear preprocessing instead.
    """
    tree = _tree_for(query, tree)
    reduced = full_reducer_pass(
        dict(enumerate(atom_frames(query, db, backend=backend))), tree
    )
    head = tuple(query.head)
    if any(frame.is_empty() for frame in reduced.values()):
        return empty_frame_like(reduced.values(), head)
    free: Set[str] = set(query.free_variables)
    partial: Dict[int, Frame] = {}
    for node in tree.bottom_up():
        frame = reduced[node]
        for child in tree.children(node):
            frame = frame.join(partial.pop(child))
        keep = [
            v
            for v in frame.variables
            if v in free or v in tree.separator(node)
        ]
        partial[node] = frame.project(keep)
    result = unit_frame_like(partial.values())
    for root in tree.roots:
        result = result.join(partial[root])
    return result.project(head).reorder(head)
