"""Binary hash joins and left-deep join plans.

These are the *baseline* evaluators the worst-case-optimal literature
compares against (paper Section 2.1): any plan that materializes binary
intermediate joins can be forced to Ω(m^2) intermediate size on inputs
where the final output is only O(m^{3/2}) (the triangle query on
AGM-tight instances) — which is the reason worst-case-optimal joins
exist.  The benchmark harness measures that blow-up directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.joins.frame import Frame
from repro.joins.semijoin import atom_frames
from repro.joins.vectorized import unit_frame_like
from repro.query.cq import ConjunctiveQuery


def hash_join(left: Frame, right: Frame) -> Frame:
    """Natural hash join of two frames (delegates to :meth:`Frame.join`)."""
    return left.join(right)


def left_deep_plan_join(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> Frame:
    """Evaluate a join query by a left-deep sequence of binary joins.

    ``order`` lists atom indices; default is ascending by relation size
    (the textbook greedy heuristic).  Returns the full join over all
    body variables projected onto the head.  Intermediates are
    materialized — that is the point: this evaluator exhibits the
    non-worst-case-optimal behaviour.  ``backend`` forces the frame
    backend; by default each atom frame matches its stored relation.
    """
    frames = atom_frames(query, db, backend=backend)
    if order is None:
        order = sorted(range(len(frames)), key=lambda i: len(frames[i]))
    else:
        order = list(order)
        if sorted(order) != list(range(len(frames))):
            raise ValueError("order must be a permutation of atom indices")
    result = unit_frame_like(frames)
    for index in order:
        result = result.join(frames[index])
    head = tuple(query.head)
    return result.project(head).reorder(head)


def plan_intermediate_sizes(
    query: ConjunctiveQuery,
    db: Database,
    order: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """Sizes of every intermediate a left-deep plan materializes.

    The instrumentation used by the benchmark that demonstrates the
    Ω(m^2) intermediate blow-up on AGM-tight triangle instances.
    """
    frames = atom_frames(query, db, backend=backend)
    if order is None:
        order = sorted(range(len(frames)), key=lambda i: len(frames[i]))
    sizes: List[int] = []
    result = unit_frame_like(frames)
    for index in order:
        result = result.join(frames[index])
        sizes.append(len(result))
    return sizes
