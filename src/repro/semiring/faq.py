"""FAQ-style aggregation of join queries over a semiring.

For an acyclic join query with join tree T, message passing computes

    ⊕_{a ∈ q(D)}  ⊗_{i}  w_i(π_{X_i}(a))

in Õ(m): bottom-up, each node's tuple weight is its own weight ⊗ the
⊕-sums of matching child messages, grouped by the child separator.
With the counting semiring and unit weights this is exactly the
linear-time answer counting of Theorem 3.8; with the tropical semiring
it is min-weight aggregation (Section 4.1.2).

Cyclic join queries fall back to :func:`aggregate_generic`: enumerate
the full join with the worst-case-optimal join (Õ(m^{ρ*})) and fold.
The gap between the two paths on the clique query is experiment E13.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.db.database import Database
from repro.hypergraph.gyo import join_tree
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.query.cq import ConjunctiveQuery
from repro.semiring.semirings import Semiring

Row = Tuple[object, ...]
WeightFn = Callable[[int, Row], object]


class WeightedDatabase:
    """A database whose tuples carry semiring weights.

    Weights are stored per relation name and tuple; missing entries
    default to the semiring's ``one`` (unweighted tuples are neutral),
    matching the convention that an unweighted query aggregates to a
    pure count/existence value.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._weights: Dict[str, Dict[Row, object]] = {}

    def set_weight(self, relation: str, row: Row, weight: object) -> None:
        if tuple(row) not in self.db[relation]:
            raise KeyError(
                f"tuple {row} not present in relation {relation!r}"
            )
        self._weights.setdefault(relation, {})[tuple(row)] = weight

    def weight(self, relation: str, row: Row, semiring: Semiring) -> object:
        return self._weights.get(relation, {}).get(tuple(row), semiring.one)

    def atom_weight_fn(
        self, query: ConjunctiveQuery, semiring: Semiring
    ) -> WeightFn:
        """A per-atom weight function for the given query.

        Atom ``i``'s weight of a *frame row* is the stored weight of the
        corresponding relation tuple.  Atoms with repeated variables map
        the deduplicated frame row back to the full relation tuple.
        """
        expanders = []
        for atom in query.atoms:
            distinct: list = []
            for v in atom.variables:
                if v not in distinct:
                    distinct.append(v)
            index = {v: i for i, v in enumerate(distinct)}
            positions = tuple(index[v] for v in atom.variables)
            expanders.append((atom.relation, positions))

        def weight(atom_index: int, frame_row: Row) -> object:
            relation, positions = expanders[atom_index]
            full_row = tuple(frame_row[p] for p in positions)
            return self.weight(relation, full_row, semiring)

        return weight


def aggregate_acyclic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
    tree: Optional[JoinTree] = None,
) -> object:
    """Aggregate an acyclic *join* query over a semiring in Õ(m).

    ``weights(i, row)`` gives atom i's weight of a frame row (defaults
    to the semiring ``one``, so the counting semiring yields the answer
    count of Theorem 3.8).  Raises on cyclic or projected queries.
    """
    if not query.is_join_query():
        raise ValueError(
            "aggregate_acyclic requires a join query; project first "
            "(for free-connex counting see repro.counting)"
        )
    if tree is None:
        tree = join_tree(query.hypergraph())
    frames = dict(enumerate(atom_frames(query, db)))
    reduced = full_reducer_pass(frames, tree)
    return aggregate_frames(reduced, tree, semiring, weights)


def aggregate_frames(
    frames: Mapping[int, Frame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Message passing over already-reduced frames on a join tree.

    ``frames`` must be globally consistent (run the full reducer first);
    otherwise tuples without child matches are ⊕-skipped, which computes
    the aggregate over the actual join but may visit dead tuples.
    """
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    # messages[node]: dict mapping separator key -> ⊕-sum over the
    # node's tuples (matching that key) of (own weight ⊗ children sums).
    messages: Dict[int, Dict[Row, object]] = {}
    node_value: Dict[int, object] = {}
    for node in tree.bottom_up():
        frame = frames[node]
        child_info = []
        for child in tree.children(node):
            # Key order must match the order the child used when it
            # grouped its message — sorted() on both sides makes the
            # exchange canonical (multi-variable separators!).
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            child_info.append(
                (frame.positions(sep), messages.pop(child))
            )
        sep_to_parent = tree.separator(node)
        parent_key_vars = tuple(
            sorted(v for v in frame.variables if v in sep_to_parent)
        )
        parent_positions = frame.positions(parent_key_vars)
        out: Dict[Row, object] = {}
        for row in frame.rows:
            value = weights(node, row)
            dead = False
            for sep_positions, child_message in child_info:
                key = tuple(row[p] for p in sep_positions)
                incoming = child_message.get(key)
                if incoming is None:
                    dead = True
                    break
                value = semiring.times(value, incoming)
            if dead:
                continue
            key = tuple(row[p] for p in parent_positions)
            if key in out:
                out[key] = semiring.plus(out[key], value)
            else:
                out[key] = value
        messages[node] = out
        node_value[node] = semiring.sum(out.values())
    return semiring.product(node_value[root] for root in tree.roots)


def aggregate_generic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Aggregate any join query via worst-case-optimal enumeration.

    Runs in Õ(m^{ρ*}); this is the baseline path for cyclic queries
    such as the k-clique and k-cycle queries of Section 4.
    """
    if not query.is_join_query():
        raise ValueError("aggregate_generic requires a join query")
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    head = tuple(query.head)
    position = {v: i for i, v in enumerate(head)}
    atom_positions = []
    for atom in query.atoms:
        distinct: list = []
        for v in atom.variables:
            if v not in distinct:
                distinct.append(v)
        atom_positions.append(tuple(position[v] for v in distinct))
    total = semiring.zero
    for answer in generic_join(query, db):
        value = semiring.one
        for i, positions in enumerate(atom_positions):
            row = tuple(answer[p] for p in positions)
            value = semiring.times(value, weights(i, row))
        total = semiring.plus(total, value)
    return total
