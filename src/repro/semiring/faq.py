"""FAQ-style aggregation of join queries over a semiring.

For an acyclic join query with join tree T, message passing computes

    ⊕_{a ∈ q(D)}  ⊗_{i}  w_i(π_{X_i}(a))

in Õ(m): bottom-up, each node's tuple weight is its own weight ⊗ the
⊕-sums of matching child messages, grouped by the child separator.
With the counting semiring and unit weights this is exactly the
linear-time answer counting of Theorem 3.8; with the tropical semiring
it is min-weight aggregation (Section 4.1.2).

**Two execution paths.**  On Python-backend frames the passing is the
classical dict fold: one Python dict per message, one fold per tuple.
On columnar frames (:class:`repro.joins.vectorized.ColumnarFrame`
sharing one dictionary) the same recurrence runs as an array program —
a *message* is a pair ``(separator code matrix, weight column)``;
receiving one is a binary-search gather
(:func:`repro.db.columnar.lookup_rows`) plus an elementwise ⊗; sending
one is a sort-based group-by (:func:`repro.db.columnar.group_rows`)
plus one segment reduce (``⊕.reduceat``,
:func:`repro.db.columnar.group_reduce`).  Semirings without native
NumPy kernels fall back to object-dtype ``frompyfunc`` folds (see
:meth:`repro.semiring.semirings.Semiring.kernels`), keeping a single
code path.  No tuple is ever decoded back into Python values.

Cyclic join queries fall back to :func:`aggregate_generic`: enumerate
the full join with the worst-case-optimal join (Õ(m^{ρ*})) and fold.
The gap between the two paths on the clique query is experiment E13.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.db.columnar import (
    ColumnarRelation,
    group_reduce,
    group_rows,
    lookup_rows,
)
from repro.db.database import Database
from repro.hypergraph.gyo import join_tree
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.joins.vectorized import ColumnarFrame, columnar_family
from repro.query.cq import ConjunctiveQuery
from repro.semiring.semirings import Semiring

Row = Tuple[object, ...]
WeightFn = Callable[[int, Row], object]


class WeightedDatabase:
    """A database whose tuples carry semiring weights.

    Weights are stored per relation name and tuple; missing entries
    default to the semiring's ``one`` (unweighted tuples are neutral),
    matching the convention that an unweighted query aggregates to a
    pure count/existence value.

    For columnar relations the store additionally keys every weight by
    the tuple's *dictionary codes*, so the vectorized aggregation reads
    whole weight columns (:meth:`_AtomWeights.column`) without decoding
    a single relation row — membership checks go through
    :meth:`repro.db.columnar.ColumnarRelation.has_coded`.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._weights: Dict[str, Dict[Row, object]] = {}
        # relation name -> {coded tuple: weight}; columnar relations only.
        self._coded: Dict[str, Dict[Tuple[int, ...], object]] = {}

    def set_weight(self, relation: str, row: Row, weight: object) -> None:
        tup = tuple(row)
        rel = self.db[relation]
        if isinstance(rel, ColumnarRelation):
            coded = []
            for value in tup:
                code = rel.dictionary.encode_existing(value)
                if code is None:
                    raise KeyError(
                        f"tuple {row} not present in relation {relation!r}"
                    )
                coded.append(code)
            if not rel.has_coded(coded):
                raise KeyError(
                    f"tuple {row} not present in relation {relation!r}"
                )
            self._coded.setdefault(relation, {})[tuple(coded)] = weight
        elif tup not in rel:
            raise KeyError(
                f"tuple {row} not present in relation {relation!r}"
            )
        self._weights.setdefault(relation, {})[tup] = weight

    def weight(self, relation: str, row: Row, semiring: Semiring) -> object:
        return self._weights.get(relation, {}).get(tuple(row), semiring.one)

    def coded_weights(
        self, relation: str
    ) -> Dict[Tuple[int, ...], object]:
        """Stored weights of a columnar relation, keyed by code tuples."""
        return self._coded.get(relation, {})

    def atom_weight_fn(
        self, query: ConjunctiveQuery, semiring: Semiring
    ) -> "_AtomWeights":
        """A per-atom weight function for the given query.

        The returned object is callable as ``weights(i, frame_row)``
        for the scalar path and additionally exposes
        :meth:`_AtomWeights.column` for the vectorized path.  Atoms
        with repeated variables map the deduplicated frame row back to
        the full relation tuple in both cases.
        """
        return _AtomWeights(self, query, semiring)


class _AtomWeights:
    """Per-atom tuple weights, usable scalar-wise or as weight columns."""

    def __init__(
        self,
        weighted: WeightedDatabase,
        query: ConjunctiveQuery,
        semiring: Semiring,
    ) -> None:
        self.weighted = weighted
        self.semiring = semiring
        self.expanders: List[Tuple[str, Tuple[int, ...]]] = []
        for atom in query.atoms:
            distinct: list = []
            for v in atom.variables:
                if v not in distinct:
                    distinct.append(v)
            index = {v: i for i, v in enumerate(distinct)}
            positions = tuple(index[v] for v in atom.variables)
            self.expanders.append((atom.relation, positions))

    def __call__(self, atom_index: int, frame_row: Row) -> object:
        relation, positions = self.expanders[atom_index]
        full_row = tuple(frame_row[p] for p in positions)
        return self.weighted.weight(relation, full_row, self.semiring)

    def column(self, atom_index: int, frame: ColumnarFrame) -> np.ndarray:
        """The weight column of ``frame``'s rows, aligned with its codes.

        Zero-decode when the frame shares the columnar relation's
        dictionary (the ``backend="columnar"`` database path): stored
        code-keyed weights are scattered into the column via one
        binary-search lookup.  Foreign dictionaries fall back to
        per-row scalar lookups over decoded rows.
        """
        relation, positions = self.expanders[atom_index]
        semiring = self.semiring
        rel = self.weighted.db[relation]
        codes = frame.codes()
        if (
            isinstance(rel, ColumnarRelation)
            and frame.dictionary is rel.dictionary
        ):
            stored = self.weighted.coded_weights(relation)
            if not stored:
                return semiring.unit_column(len(codes))
            full = codes[:, list(positions)]
            keys = np.asarray(list(stored), dtype=np.int64).reshape(
                len(stored), len(positions)
            )
            weight_values = list(stored.values())
            index = lookup_rows(full, keys, len(frame.dictionary))
            found = index >= 0
            _, _, dtype = semiring.kernels()
            if np.dtype(dtype) != np.dtype(object):
                try:
                    values = np.asarray(weight_values)
                except (OverflowError, ValueError):
                    values = None
                if (
                    values is not None
                    and values.ndim == 1
                    and values.dtype != np.dtype(object)
                ):
                    gathered = values[np.where(found, index, 0)]
                    return np.where(found, gathered, semiring.one)
            # Exotic carriers (sequence-valued weights, ints >= 2^63):
            # fill an object column element by element — exact, and no
            # slower than the object-dtype fold that consumes it.
            column = semiring.unit_column(len(codes))
            if column.dtype != np.dtype(object):
                fallback = np.empty(len(codes), dtype=object)
                fallback[:] = column
                column = fallback
            for position, slot in enumerate(index.tolist()):
                if slot >= 0:
                    column[position] = weight_values[slot]
            return column
        return np.asarray(
            [
                self(atom_index, row)
                for row in frame.dictionary.decode_rows(codes)
            ],
            dtype=object,
        )


def aggregate_acyclic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
    tree: Optional[JoinTree] = None,
) -> object:
    """Aggregate an acyclic *join* query over a semiring in Õ(m).

    ``weights(i, row)`` gives atom i's weight of a frame row (defaults
    to the semiring ``one``, so the counting semiring yields the answer
    count of Theorem 3.8).  Raises on cyclic or projected queries.
    """
    if not query.is_join_query():
        raise ValueError(
            "aggregate_acyclic requires a join query; project first "
            "(for free-connex counting see repro.counting)"
        )
    if tree is None:
        tree = join_tree(query.hypergraph())
    frames = dict(enumerate(atom_frames(query, db)))
    reduced = full_reducer_pass(frames, tree)
    return aggregate_frames(reduced, tree, semiring, weights)


def aggregate_frames(
    frames: Mapping[int, Frame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Message passing over already-reduced frames on a join tree.

    ``frames`` must be globally consistent (run the full reducer first);
    otherwise tuples without child matches are ⊕-skipped, which computes
    the aggregate over the actual join but may visit dead tuples.

    Dispatches on the frame backend: columnar frames sharing one
    dictionary run the vectorized array program (when the weights are
    ``None`` or column-capable, as returned by
    :meth:`WeightedDatabase.atom_weight_fn`); everything else runs the
    scalar dict fold.
    """
    if weights is None or hasattr(weights, "column"):
        if columnar_family(frames.values()) is not None:
            return _aggregate_frames_columnar(
                frames, tree, semiring, weights
            )
    return _aggregate_frames_python(frames, tree, semiring, weights)


def _aggregate_frames_python(
    frames: Mapping[int, Frame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """The scalar message passing: dicts of separator keys."""
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    # messages[node]: dict mapping separator key -> ⊕-sum over the
    # node's tuples (matching that key) of (own weight ⊗ children sums).
    messages: Dict[int, Dict[Row, object]] = {}
    node_value: Dict[int, object] = {}
    for node in tree.bottom_up():
        frame = frames[node]
        child_info = []
        for child in tree.children(node):
            # Key order must match the order the child used when it
            # grouped its message — sorted() on both sides makes the
            # exchange canonical (multi-variable separators!).
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            child_info.append(
                (frame.positions(sep), messages.pop(child))
            )
        sep_to_parent = tree.separator(node)
        parent_key_vars = tuple(
            sorted(v for v in frame.variables if v in sep_to_parent)
        )
        parent_positions = frame.positions(parent_key_vars)
        out: Dict[Row, object] = {}
        for row in frame.rows:
            value = weights(node, row)
            dead = False
            for sep_positions, child_message in child_info:
                key = tuple(row[p] for p in sep_positions)
                incoming = child_message.get(key)
                if incoming is None:
                    dead = True
                    break
                value = semiring.times(value, incoming)
            if dead:
                continue
            key = tuple(row[p] for p in parent_positions)
            if key in out:
                out[key] = semiring.plus(out[key], value)
            else:
                out[key] = value
        messages[node] = out
        node_value[node] = semiring.sum(out.values())
    return semiring.product(node_value[root] for root in tree.roots)


def _aggregate_frames_columnar(
    frames: Mapping[int, ColumnarFrame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional["_AtomWeights"],
) -> object:
    """The vectorized message passing: weight columns along separators.

    A message is ``(separator representatives, reduced weight column)``.
    Per node: gather each child's column by binary search on the node's
    separator codes, ⊗ into the node's own weight column, drop rows
    some child cannot extend, then group by the parent separator and
    ⊕-reduce each segment.  Everything is O(n log n) array work; the
    only Python-level loop is over the (constant-size) tree.
    """
    plus_ufunc, times_fn, _ = semiring.kernels()
    messages: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    node_value: Dict[int, object] = {}
    for node in tree.bottom_up():
        frame = frames[node]
        codes = frame.codes()
        cardinality = len(frame.dictionary)
        if weights is None:
            values = semiring.unit_column(len(codes))
        else:
            values = weights.column(node, frame)
        alive = np.ones(len(codes), dtype=bool)
        for child in tree.children(node):
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            child_keys, child_values = messages.pop(child)
            sub = codes[:, list(frame.positions(sep))]
            index = lookup_rows(sub, child_keys, cardinality)
            found = index >= 0
            alive &= found
            incoming = child_values[np.where(found, index, 0)]
            # Dead rows pick up garbage here; they are masked out below.
            values = times_fn(values, incoming)
        if not alive.all():
            codes = codes[alive]
            values = values[alive]
        sep_to_parent = tree.separator(node)
        parent_key_vars = tuple(
            sorted(v for v in frame.variables if v in sep_to_parent)
        )
        sub = codes[:, list(frame.positions(parent_key_vars))]
        representatives, group_ids, group_count = group_rows(
            sub, cardinality
        )
        reduced = group_reduce(values, group_ids, group_count, plus_ufunc)
        messages[node] = (representatives, reduced)
        node_value[node] = (
            semiring.as_scalar(plus_ufunc.reduce(reduced))
            if len(reduced)
            else semiring.zero
        )
    return semiring.as_scalar(
        semiring.product(node_value[root] for root in tree.roots)
    )


def aggregate_generic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Aggregate any join query via worst-case-optimal enumeration.

    Runs in Õ(m^{ρ*}); this is the baseline path for cyclic queries
    such as the k-clique and k-cycle queries of Section 4.
    """
    if not query.is_join_query():
        raise ValueError("aggregate_generic requires a join query")
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    head = tuple(query.head)
    position = {v: i for i, v in enumerate(head)}
    atom_positions = []
    for atom in query.atoms:
        distinct: list = []
        for v in atom.variables:
            if v not in distinct:
                distinct.append(v)
        atom_positions.append(tuple(position[v] for v in distinct))
    total = semiring.zero
    for answer in generic_join(query, db):
        value = semiring.one
        for i, positions in enumerate(atom_positions):
            row = tuple(answer[p] for p in positions)
            value = semiring.times(value, weights(i, row))
        total = semiring.plus(total, value)
    return total
