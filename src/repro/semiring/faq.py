"""FAQ-style aggregation of join queries over a semiring.

For an acyclic join query with join tree T, message passing computes

    ⊕_{a ∈ q(D)}  ⊗_{i}  w_i(π_{X_i}(a))

in Õ(m): bottom-up, each node's tuple weight is its own weight ⊗ the
⊕-sums of matching child messages, grouped by the child separator.
With the counting semiring and unit weights this is exactly the
linear-time answer counting of Theorem 3.8; with the tropical semiring
it is min-weight aggregation (Section 4.1.2).

**Two execution paths.**  On Python-backend frames the passing is the
classical dict fold: one Python dict per message, one fold per tuple.
On columnar frames (:class:`repro.joins.vectorized.ColumnarFrame`
sharing one dictionary) the same recurrence runs as an array program —
a *message* is a pair ``(separator code matrix, weight column)``;
receiving one is a binary-search gather
(:func:`repro.db.columnar.lookup_rows`) plus an elementwise ⊗; sending
one is a sort-based group-by (:func:`repro.db.columnar.group_rows`)
plus one segment reduce (``⊕.reduceat``,
:func:`repro.db.columnar.group_reduce`).  Semirings without native
NumPy kernels fall back to object-dtype ``frompyfunc`` folds (see
:meth:`repro.semiring.semirings.Semiring.kernels`), keeping a single
code path.  No tuple is ever decoded back into Python values.

**Incremental maintenance.**  :class:`AggregateMaintainer` keeps the
aggregate of an acyclic join query current under single-tuple updates:
it stores, per join-tree node, the (unreduced) code matrix, a *weight
column aligned to the relation's delta segments* (rows appended or
dropped in step with :class:`repro.db.columnar.ColumnarRelation`'s op
log), and the node's message as lex-sorted ``(separator reps, value
column)`` arrays.  A single-tuple update becomes a one-row delta
message that is folded into the node's message and propagated along
the root path — k updates cost O(k · depth) group-merges (each over
the touched keys) plus one vectorized row scan per tree level (to
locate affected parent rows, and a deleted tuple's own row) instead
of a full recompute.  Deletions fold as ⊕-negated deltas, so they need the
semiring to be a ring in ⊕ (``np_negate``, e.g. counting); otherwise,
and whenever a relation's delta history is gone (compaction / bulk
rewrite), the maintainer falls back to a full rebuild.

Cyclic join queries fall back to :func:`aggregate_generic`: enumerate
the full join with the worst-case-optimal join (Õ(m^{ρ*})) and fold.
The gap between the two paths on the clique query is experiment E13.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.db.columnar import (
    ColumnarRelation,
    atom_projection,
    common_keys,
    fused_group_lookup,
    group_reduce,
    group_rows,
    lookup_rows,
    note_scratch,
)
from repro.db.database import Database
from repro.db.executor import SERIAL
from repro.db.interface import (
    TruncatedHistoryError,
    snapshot_stamps,
    stale_relations,
)
from repro.db.sharded import ShardedColumnarRelation, shard_of_code
from repro.hypergraph.gyo import join_tree
from repro.hypergraph.jointree import JoinTree
from repro.joins.frame import Frame
from repro.joins.generic_join import generic_join, generic_join_codes
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.joins.vectorized import (
    ColumnarFrame,
    ShardedColumnarFrame,
    columnar_family,
)
from repro.query.cq import ConjunctiveQuery
from repro.semiring.semirings import Semiring

Row = Tuple[object, ...]
WeightFn = Callable[[int, Row], object]


class WeightedDatabase:
    """A database whose tuples carry semiring weights.

    Weights are stored per relation name and tuple; missing entries
    default to the semiring's ``one`` (unweighted tuples are neutral),
    matching the convention that an unweighted query aggregates to a
    pure count/existence value.

    For columnar relations the store additionally keys every weight by
    the tuple's *dictionary codes*, so the vectorized aggregation reads
    whole weight columns (:meth:`coded_weight_column`) without decoding
    a single relation row — membership checks go through
    :meth:`repro.db.columnar.ColumnarRelation.has_coded`.

    Mutate weighted relations through :meth:`add` / :meth:`discard`:
    ``discard`` purges the stored weight along with the tuple.
    (Discarding through the bare relation used to leave the weight
    behind, so a later re-add silently resurrected it — the lingering
    -weights bug.)  ``mutation_stamp`` counts weight-store changes the
    relations' own stamps cannot see; maintained aggregates record it
    and rebuild when it drifts.
    """

    # Weight-change log length bound; older history is truncated and
    # maintainers that synced before the truncation point rebuild.
    _WEIGHT_LOG_LIMIT = 4096

    def __init__(self, db: Database) -> None:
        self.db = db
        self._weights: Dict[str, Dict[Row, object]] = {}
        # relation name -> {coded tuple: weight}; columnar relations only.
        self._coded: Dict[str, Dict[Tuple[int, ...], object]] = {}
        self._stamp = 0
        # Which (relation, coded tuple) weights changed, in order; None
        # marks a change on a non-columnar relation (not code-addressable).
        self._weight_log: List[Tuple[str, Optional[Tuple[int, ...]]]] = []
        self._weight_log_start = 0

    @property
    def mutation_stamp(self) -> int:
        """Monotone stamp over *weight-store* changes (not tuple churn)."""
        return self._stamp

    @property
    def weight_log_position(self) -> int:
        """Cursor into the weight-change log (for maintainers to record)."""
        return self._weight_log_start + len(self._weight_log)

    def weight_changes_since(
        self, position: int
    ) -> Optional[List[Tuple[str, Optional[Tuple[int, ...]]]]]:
        """Weight-store changes after ``position``, or None if truncated."""
        if position < self._weight_log_start:
            return None
        return self._weight_log[position - self._weight_log_start :]

    def _log_weight_change(
        self, relation: str, coded: Optional[Tuple[int, ...]]
    ) -> None:
        self._stamp += 1
        self._weight_log.append((relation, coded))
        if len(self._weight_log) > 2 * self._WEIGHT_LOG_LIMIT:
            dropped = len(self._weight_log) - self._WEIGHT_LOG_LIMIT
            self._weight_log = self._weight_log[dropped:]
            self._weight_log_start += dropped

    def set_weight(self, relation: str, row: Row, weight: object) -> None:
        tup = tuple(row)
        rel = self.db[relation]
        if isinstance(rel, ColumnarRelation):
            coded = []
            for value in tup:
                code = rel.dictionary.encode_existing(value)
                if code is None:
                    raise KeyError(
                        f"tuple {row} not present in relation {relation!r}"
                    )
                coded.append(code)
            if not rel.has_coded(coded):
                raise KeyError(
                    f"tuple {row} not present in relation {relation!r}"
                )
            self._coded.setdefault(relation, {})[tuple(coded)] = weight
            self._weights.setdefault(relation, {})[tup] = weight
            self._log_weight_change(relation, tuple(coded))
            return
        elif tup not in rel:
            raise KeyError(
                f"tuple {row} not present in relation {relation!r}"
            )
        self._weights.setdefault(relation, {})[tup] = weight
        self._log_weight_change(relation, None)

    def add(
        self, relation: str, row: Row, weight: Optional[object] = None
    ) -> None:
        """Insert a tuple, optionally with a weight, through the store."""
        self.db[relation].add(tuple(row))
        if weight is not None:
            self.set_weight(relation, row, weight)

    def discard(self, relation: str, row: Row) -> None:
        """Remove a tuple *and* its stored weight.

        The purge is the point: without it a discarded tuple's weight
        lingered in ``_weights``/``_coded`` and a later re-add of the
        same tuple silently resurrected the old weight instead of
        defaulting to the semiring's ``one``.
        """
        tup = tuple(row)
        rel = self.db[relation]
        rel.discard(tup)
        purged = False
        coded_key: Optional[Tuple[int, ...]] = None
        weights = self._weights.get(relation)
        if weights is not None and weights.pop(tup, None) is not None:
            purged = True
        coded_store = self._coded.get(relation)
        if coded_store is not None and isinstance(rel, ColumnarRelation):
            coded = []
            for value in tup:
                code = rel.dictionary.encode_existing(value)
                if code is None:
                    coded = None
                    break
                coded.append(code)
            if coded is not None and (
                coded_store.pop(tuple(coded), None) is not None
            ):
                purged = True
                coded_key = tuple(coded)
        if purged:
            self._log_weight_change(relation, coded_key)

    def weight(self, relation: str, row: Row, semiring: Semiring) -> object:
        return self._weights.get(relation, {}).get(tuple(row), semiring.one)

    def coded_weights(
        self, relation: str
    ) -> Dict[Tuple[int, ...], object]:
        """Stored weights of a columnar relation, keyed by code tuples."""
        return self._coded.get(relation, {})

    def coded_weight_column(
        self,
        relation: str,
        full_codes: np.ndarray,
        semiring: Semiring,
        cardinality: int,
    ) -> np.ndarray:
        """A weight column aligned with already-encoded relation rows.

        ``full_codes`` holds full-arity coded tuples of ``relation`` —
        a frame's expansion, a main segment, or a *delta segment* (the
        incremental maintainer calls this for the handful of rows an
        update touched, which is what keeps delta weight columns
        aligned to the delta code arrays).  Stored code-keyed weights
        are scattered in via one binary-search lookup; missing entries
        default to the semiring's ``one``.  Zero decodes.
        """
        stored = self._coded.get(relation)
        if not stored:
            return semiring.unit_column(len(full_codes))
        keys = np.asarray(list(stored), dtype=np.int64).reshape(
            len(stored), full_codes.shape[1]
        )
        weight_values = list(stored.values())
        index = lookup_rows(full_codes, keys, cardinality)
        found = index >= 0
        _, _, dtype = semiring.kernels()
        if np.dtype(dtype) != np.dtype(object):
            try:
                values = np.asarray(weight_values)
            except (OverflowError, ValueError):
                values = None
            if (
                values is not None
                and values.ndim == 1
                and values.dtype != np.dtype(object)
            ):
                gathered = values[np.where(found, index, 0)]
                return np.where(found, gathered, semiring.one)
        # Exotic carriers (sequence-valued weights, ints >= 2^63):
        # fill an object column element by element — exact, and no
        # slower than the object-dtype fold that consumes it.
        column = semiring.unit_column(len(full_codes))
        if column.dtype != np.dtype(object):
            fallback = np.empty(len(full_codes), dtype=object)
            fallback[:] = column
            column = fallback
        for position, slot in enumerate(index.tolist()):
            if slot >= 0:
                column[position] = weight_values[slot]
        return column

    def atom_weight_fn(
        self, query: ConjunctiveQuery, semiring: Semiring
    ) -> "_AtomWeights":
        """A per-atom weight function for the given query.

        The returned object is callable as ``weights(i, frame_row)``
        for the scalar path and additionally exposes
        :meth:`_AtomWeights.column` for the vectorized path.  Atoms
        with repeated variables map the deduplicated frame row back to
        the full relation tuple in both cases.
        """
        return _AtomWeights(self, query, semiring)


class _AtomWeights:
    """Per-atom tuple weights, usable scalar-wise or as weight columns."""

    def __init__(
        self,
        weighted: WeightedDatabase,
        query: ConjunctiveQuery,
        semiring: Semiring,
    ) -> None:
        self.weighted = weighted
        self.semiring = semiring
        self.expanders: List[Tuple[str, Tuple[int, ...]]] = []
        for atom in query.atoms:
            distinct: list = []
            for v in atom.variables:
                if v not in distinct:
                    distinct.append(v)
            index = {v: i for i, v in enumerate(distinct)}
            positions = tuple(index[v] for v in atom.variables)
            self.expanders.append((atom.relation, positions))

    def __call__(self, atom_index: int, frame_row: Row) -> object:
        relation, positions = self.expanders[atom_index]
        full_row = tuple(frame_row[p] for p in positions)
        return self.weighted.weight(relation, full_row, self.semiring)

    def column(self, atom_index: int, frame: ColumnarFrame) -> np.ndarray:
        """The weight column of ``frame``'s rows, aligned with its codes.

        Zero-decode when the frame shares the columnar relation's
        dictionary (the ``backend="columnar"`` database path): stored
        code-keyed weights are scattered into the column via one
        binary-search lookup.  Foreign dictionaries fall back to
        per-row scalar lookups over decoded rows.
        """
        relation, positions = self.expanders[atom_index]
        semiring = self.semiring
        rel = self.weighted.db[relation]
        codes = frame.codes()
        if (
            isinstance(rel, ColumnarRelation)
            and frame.dictionary is rel.dictionary
        ):
            return self.weighted.coded_weight_column(
                relation,
                codes[:, list(positions)],
                semiring,
                len(frame.dictionary),
            )
        return np.asarray(
            [
                self(atom_index, row)
                for row in frame.dictionary.decode_rows(codes)
            ],
            dtype=object,
        )


def aggregate_acyclic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
    tree: Optional[JoinTree] = None,
) -> object:
    """Aggregate an acyclic *join* query over a semiring in Õ(m).

    ``weights(i, row)`` gives atom i's weight of a frame row (defaults
    to the semiring ``one``, so the counting semiring yields the answer
    count of Theorem 3.8).  Raises on cyclic or projected queries.
    """
    if not query.is_join_query():
        raise ValueError(
            "aggregate_acyclic requires a join query; project first "
            "(for free-connex counting see repro.counting)"
        )
    if tree is None:
        tree = join_tree(query.hypergraph())
    frames = dict(enumerate(atom_frames(query, db)))
    reduced = full_reducer_pass(frames, tree)
    return aggregate_frames(reduced, tree, semiring, weights)


def aggregate_free_connex(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
) -> object:
    """⊕-fold ``semiring.one`` over the *distinct answers* of a
    free-connex query, in Õ(m).

    Generalizes :func:`repro.counting.algorithms.count_free_connex`
    beyond the counting semiring: the query is reduced to an acyclic
    join query over the free variables
    (:func:`repro.joins.fc_reduce.free_connex_reduce`) and the message
    passing runs over the reduced frames with unit weights, so the
    result is ``⊕_{a ∈ q(D)} 1`` — the answer count in ``K``.  Boolean
    queries aggregate their single empty answer when satisfiable.
    Per-atom weights make no sense for projected queries (several body
    assignments collapse onto one answer); use
    :func:`aggregate_acyclic` on join queries for weighted aggregation.
    The engine facade (:mod:`repro.engine`) routes
    ``AnswerSet.aggregate`` here for projected free-connex queries.
    """
    if query.is_boolean():
        from repro.joins.yannakakis import yannakakis_boolean

        return (
            semiring.one
            if yannakakis_boolean(query, db)
            else semiring.zero
        )
    from repro.joins.fc_reduce import free_connex_reduce

    reduced = free_connex_reduce(query, db)
    if reduced.is_empty:
        return semiring.zero
    return aggregate_frames(reduced.frames, reduced.tree, semiring)


def aggregate_frames(
    frames: Mapping[int, Frame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Message passing over already-reduced frames on a join tree.

    ``frames`` must be globally consistent (run the full reducer first);
    otherwise tuples without child matches are ⊕-skipped, which computes
    the aggregate over the actual join but may visit dead tuples.

    Dispatches on the frame backend: columnar frames sharing one
    dictionary run the vectorized array program (when the weights are
    ``None`` or column-capable, as returned by
    :meth:`WeightedDatabase.atom_weight_fn`); everything else runs the
    scalar dict fold.
    """
    if weights is None or hasattr(weights, "column"):
        if columnar_family(frames.values()) is not None:
            return _aggregate_frames_columnar(
                frames, tree, semiring, weights
            )
    return _aggregate_frames_python(frames, tree, semiring, weights)


def _aggregate_frames_python(
    frames: Mapping[int, Frame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """The scalar message passing: dicts of separator keys."""
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    # messages[node]: dict mapping separator key -> ⊕-sum over the
    # node's tuples (matching that key) of (own weight ⊗ children sums).
    messages: Dict[int, Dict[Row, object]] = {}
    node_value: Dict[int, object] = {}
    for node in tree.bottom_up():
        frame = frames[node]
        child_info = []
        for child in tree.children(node):
            # Key order must match the order the child used when it
            # grouped its message — sorted() on both sides makes the
            # exchange canonical (multi-variable separators!).
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            child_info.append(
                (frame.positions(sep), messages.pop(child))
            )
        sep_to_parent = tree.separator(node)
        parent_key_vars = tuple(
            sorted(v for v in frame.variables if v in sep_to_parent)
        )
        parent_positions = frame.positions(parent_key_vars)
        out: Dict[Row, object] = {}
        for row in frame.rows:
            value = weights(node, row)
            dead = False
            for sep_positions, child_message in child_info:
                key = tuple(row[p] for p in sep_positions)
                incoming = child_message.get(key)
                if incoming is None:
                    dead = True
                    break
                value = semiring.times(value, incoming)
            if dead:
                continue
            key = tuple(row[p] for p in parent_positions)
            if key in out:
                out[key] = semiring.plus(out[key], value)
            else:
                out[key] = value
        messages[node] = out
        node_value[node] = semiring.sum(out.values())
    return semiring.product(node_value[root] for root in tree.roots)


def _faq_fused_enabled() -> bool:
    """The ``REPRO_FAQ_FUSED`` escape hatch (default: on).

    ``REPRO_FAQ_FUSED=0`` forces the chained gather/group-reduce
    message passing — the parity tests compare the two pipelines on
    identical inputs.
    """
    return os.environ.get("REPRO_FAQ_FUSED", "1").strip().lower() not in (
        "0",
        "off",
        "chained",
    )


def _aggregate_frames_fused(
    frames: Mapping[int, ColumnarFrame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional["_AtomWeights"],
) -> object:
    """Fused message passing for unsharded columnar trees.

    The chained pipeline sends a child's message as group-reduced
    ``(separator reps, reduced values)`` and receives it with a
    binary-search gather plus an elementwise ⊗ — three full-frame
    intermediates per child (the clamped index, the gathered incoming
    column, and the fresh ⊗ result).  Here a child's message stays
    *unreduced* — its surviving separator codes and combined values,
    arrays it owns anyway — and the parent consumes it with one
    :func:`~repro.db.columnar.fused_group_lookup` call per child:
    group-reduce, gather, and in-place ⊗ into the parent's running
    column, reusing a single scratch buffer across children.  The only
    per-child allocation is the reduced message itself (one entry per
    distinct separator key); ``scratch_peak`` asserts it.  Fold orders
    are identical to the chained pipeline's (both group with stable
    sorts, so each ⊕ segment folds the child's rows in frame order,
    and children ⊗-apply in the same tree order), so results match
    bit for bit.  Semirings with a compiled kernel
    (:meth:`~repro.semiring.semirings.Semiring.fused_kernel`) run the
    whole consume as one jitted loop.
    """
    plus_ufunc, times_fn, dtype = semiring.kernels()
    kernel = semiring.fused_kernel()
    # pending[child]: the child's surviving separator codes and
    # combined values, unreduced; consumed exactly once by the parent.
    pending: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    node_value: Dict[int, object] = {}
    root_set = set(tree.roots)
    for node in tree.bottom_up():
        frame = frames[node]
        cardinality = len(frame.dictionary)
        codes = frame.codes()
        n = len(codes)
        if weights is None:
            values = semiring.unit_column(n)
        else:
            values = weights.column(node, frame)
        alive = np.ones(n, dtype=bool)
        scratch = (
            np.empty(n, dtype=dtype)
            if dtype is not None and np.dtype(dtype) != np.dtype(object)
            else None
        )
        for child in tree.children(node):
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            positions = list(frame.positions(sep))
            child_sub, child_values = pending.pop(child)
            found = fused_group_lookup(
                child_sub,
                child_values,
                codes[:, positions],
                cardinality,
                plus_ufunc,
                times_fn,
                values,
                scratch=scratch,
                kernel=kernel,
            )
            # Dead rows hold garbage combinations; masked out below.
            alive &= found
        if not alive.all():
            codes = codes[alive]
            values = values[alive]
        if node in root_set:
            node_value[node] = (
                semiring.as_scalar(plus_ufunc.reduce(values))
                if len(values)
                else semiring.zero
            )
        else:
            sep_to_parent = tree.separator(node)
            parent_key_vars = tuple(
                sorted(v for v in frame.variables if v in sep_to_parent)
            )
            parent_pos = list(frame.positions(parent_key_vars))
            pending[node] = (codes[:, parent_pos], values)
    return semiring.as_scalar(
        semiring.product(node_value[root] for root in tree.roots)
    )


def _aggregate_frames_columnar(
    frames: Mapping[int, ColumnarFrame],
    tree: JoinTree,
    semiring: Semiring,
    weights: Optional["_AtomWeights"],
) -> object:
    """The vectorized message passing: weight columns along separators.

    A message is ``(separator representatives, reduced weight column)``.
    Per node: gather each child's column by binary search on the node's
    separator codes, ⊗ into the node's own weight column, drop rows
    some child cannot extend, then group by the parent separator and
    ⊕-reduce each segment.  Everything is O(n log n) array work; the
    only Python-level loop is over the (constant-size) tree.

    **Sharded frames** (:class:`~repro.joins.vectorized.
    ShardedColumnarFrame`) run the same recurrence shard by shard —
    one (separator codes, weight column) message *per shard* — and
    merge the per-shard messages with one
    :func:`~repro.db.columnar.group_reduce` over their concatenation.
    Because messages live in the merged separator domain, no array
    larger than one shard (plus that domain) is ever materialized:
    distributed aggregation is literally a merge of messages, with no
    shared state beyond the append-only dictionary.
    """
    if _faq_fused_enabled() and not any(
        isinstance(f, ShardedColumnarFrame) for f in frames.values()
    ):
        return _aggregate_frames_fused(frames, tree, semiring, weights)
    plus_ufunc, times_fn, _ = semiring.kernels()
    messages: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    node_value: Dict[int, object] = {}
    for node in tree.bottom_up():
        frame = frames[node]
        cardinality = len(frame.dictionary)
        child_gathers: List[Tuple[List[int], Tuple[np.ndarray, np.ndarray]]]
        child_gathers = []
        for child in tree.children(node):
            sep = tuple(
                sorted(
                    v for v in frame.variables
                    if v in frames[child].variables
                )
            )
            child_gathers.append(
                (list(frame.positions(sep)), messages.pop(child))
            )
        sep_to_parent = tree.separator(node)
        parent_key_vars = tuple(
            sorted(v for v in frame.variables if v in sep_to_parent)
        )
        parent_pos = list(frame.positions(parent_key_vars))
        if isinstance(frame, ShardedColumnarFrame):
            shard_frames = list(frame.shards)
            executor = frame._exec()
        else:
            shard_frames = [frame]
            executor = SERIAL

        def shard_message(shard_frame):
            """One shard's (separator reps, reduced weights) message.

            Pure per-shard array work over read-only inputs (the
            child messages and the weight store), so shards run on
            executor workers; the ordered map keeps the merge below
            bit-identical to the serial loop.
            """
            codes = shard_frame.codes()
            if weights is None:
                values = semiring.unit_column(len(codes))
            else:
                values = weights.column(node, shard_frame)
            alive = np.ones(len(codes), dtype=bool)
            for positions, (child_keys, child_values) in child_gathers:
                sub = codes[:, positions]
                index = lookup_rows(sub, child_keys, cardinality)
                found = index >= 0
                alive &= found
                incoming = child_values[np.where(found, index, 0)]
                # Dead rows pick up garbage here; masked out below.
                note_scratch(len(incoming))
                values = times_fn(values, incoming)
            if not alive.all():
                codes = codes[alive]
                values = values[alive]
            sub = codes[:, parent_pos]
            representatives, group_ids, group_count = group_rows(
                sub, cardinality
            )
            reduced = group_reduce(
                values, group_ids, group_count, plus_ufunc
            )
            return representatives, reduced, values[:0]

        shard_results = executor.map(shard_message, shard_frames)
        rep_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        empty_values = semiring.unit_column(0)
        for representatives, reduced, empty in shard_results:
            if len(reduced):
                rep_parts.append(representatives)
                value_parts.append(reduced)
            empty_values = empty
        if not rep_parts:
            representatives = np.empty(
                (0, len(parent_pos)), dtype=np.int64
            )
            reduced = empty_values
        elif len(rep_parts) == 1:
            representatives, reduced = rep_parts[0], value_parts[0]
        else:
            # The cross-shard merge: ⊕-combine equal separator keys of
            # the concatenated per-shard messages.
            all_reps = np.concatenate(rep_parts, axis=0)
            all_values = np.concatenate(value_parts)
            representatives, group_ids, group_count = group_rows(
                all_reps, cardinality
            )
            reduced = group_reduce(
                all_values, group_ids, group_count, plus_ufunc
            )
        messages[node] = (representatives, reduced)
        node_value[node] = (
            semiring.as_scalar(plus_ufunc.reduce(reduced))
            if len(reduced)
            else semiring.zero
        )
    return semiring.as_scalar(
        semiring.product(node_value[root] for root in tree.roots)
    )


def aggregate_generic(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional[WeightFn] = None,
) -> object:
    """Aggregate any join query via worst-case-optimal enumeration.

    Runs in Õ(m^{ρ*}); this is the baseline path for cyclic queries
    such as the k-clique and k-cycle queries of Section 4.

    On columnar databases the answers come from the frontier join as a
    code matrix (:func:`~repro.joins.generic_join.generic_join_codes`)
    and the fold runs as weight-column ⊗ products plus one ⊕ reduce —
    zero per-answer Python, zero decodes.  Arbitrary scalar weight
    functions (anything without the coded-column protocol of
    :meth:`WeightedDatabase.atom_weight_fn`) keep the decoded fold.
    """
    if not query.is_join_query():
        raise ValueError("aggregate_generic requires a join query")
    if weights is None or hasattr(weights, "expanders"):
        coded = generic_join_codes(query, db)
        if coded is not None:
            return _aggregate_codes(query, db, semiring, weights, coded[0])
    if weights is None:
        weights = lambda i, row: semiring.one  # noqa: E731
    head = tuple(query.head)
    position = {v: i for i, v in enumerate(head)}
    atom_positions = []
    for atom in query.atoms:
        distinct: list = []
        for v in atom.variables:
            if v not in distinct:
                distinct.append(v)
        atom_positions.append(tuple(position[v] for v in distinct))
    total = semiring.zero
    for answer in generic_join(query, db):
        value = semiring.one
        for i, positions in enumerate(atom_positions):
            row = tuple(answer[p] for p in positions)
            value = semiring.times(value, weights(i, row))
        total = semiring.plus(total, value)
    return total


def _aggregate_codes(
    query: ConjunctiveQuery,
    db: Database,
    semiring: Semiring,
    weights: Optional["_AtomWeights"],
    codes: np.ndarray,
) -> object:
    """⊕-fold the coded answer matrix of a join query, zero decodes.

    One weight column per atom (scattered from the stored code-keyed
    weights, defaulting to ``one``), ⊗-combined in atom order exactly
    like the scalar fold, then one ⊕ reduce.
    """
    plus_ufunc, times_fn, _ = semiring.kernels()
    if not len(codes):
        return semiring.as_scalar(semiring.zero)
    if weights is None:
        return semiring.as_scalar(
            plus_ufunc.reduce(semiring.unit_column(len(codes)))
        )
    position = {v: i for i, v in enumerate(query.head)}
    values = semiring.unit_column(len(codes))
    cardinality = len(db[query.atoms[0].relation].dictionary)
    for atom in query.atoms:
        full = codes[:, [position[v] for v in atom.variables]]
        column = weights.weighted.coded_weight_column(
            atom.relation, full, semiring, cardinality
        )
        values = times_fn(values, column)
    return semiring.as_scalar(plus_ufunc.reduce(values))


# ----------------------------------------------------------------------
# incremental maintenance
# ----------------------------------------------------------------------
class _Message:
    """A message as aligned arrays: unique lex-sorted reps + values.

    Both the 64-bit packing and the joint-``unique`` fallback of
    :func:`repro.db.columnar.common_keys` map lexicographic row order
    monotonically to sorted 1-D keys, so keeping ``reps`` lex-sorted
    makes gathers and folds binary searches even though the shared
    dictionary (and hence the packing width) may grow between calls.
    """

    __slots__ = ("reps", "values")

    def __init__(self, reps: np.ndarray, values: np.ndarray) -> None:
        self.reps = reps
        self.values = values

    def gather(
        self, sub: np.ndarray, cardinality: int, zero: object
    ) -> np.ndarray:
        """Per-row message values for ``sub``'s keys, ``zero``-filled.

        Zero-filling (instead of the batch path's alive-masking) is
        what lets the maintainer keep dead rows around: ``zero``
        ⊗-absorbs and is ⊕-neutral, so a dead row contributes nothing
        until a later update revives it.
        """
        n = len(sub)
        if not len(self.reps):
            return _constant_column(n, zero, self.values.dtype)
        q_keys, t_keys = common_keys(sub, self.reps, cardinality)
        pos = np.searchsorted(t_keys, q_keys)
        pos = np.minimum(pos, len(t_keys) - 1)
        found = t_keys[pos] == q_keys
        gathered = self.values[pos]
        if bool(found.all()):
            return gathered
        if gathered.dtype == np.dtype(object):
            out = _constant_column(n, zero, gathered.dtype)
            out[found] = gathered[found]
            return out
        return np.where(found, gathered, zero)

    def fold(
        self,
        delta_reps: np.ndarray,
        delta_values: np.ndarray,
        cardinality: int,
        plus_ufunc,
    ) -> None:
        """⊕-fold a delta message (unique, lex-sorted reps) into this one.

        Existing keys accumulate in place; new keys are spliced in at
        their sort position — one binary search plus one ``np.insert``
        memmove, never a re-sort.
        """
        if not len(delta_reps):
            return
        if not len(self.reps):
            self.reps = delta_reps.copy()
            self.values = delta_values.copy()
            return
        q_keys, t_keys = common_keys(delta_reps, self.reps, cardinality)
        pos = np.searchsorted(t_keys, q_keys)
        clipped = np.minimum(pos, len(t_keys) - 1)
        found = t_keys[clipped] == q_keys
        hits = clipped[found]
        if len(hits):
            self.values[hits] = plus_ufunc(
                self.values[hits], delta_values[found]
            )
        if not bool(found.all()):
            miss = ~found
            self.reps = np.insert(
                self.reps, pos[miss], delta_reps[miss], axis=0
            )
            self.values = np.insert(
                self.values, pos[miss], delta_values[miss]
            )


def _constant_column(length: int, value: object, dtype) -> np.ndarray:
    if np.dtype(dtype) == np.dtype(object):
        out = np.empty(length, dtype=object)
        out.fill(value)
        return out
    return np.full(length, value, dtype=dtype)


class AggregateMaintainer:
    """Maintain an acyclic join-query aggregate under tuple updates.

    Built over the *unreduced* atom frames of a columnar database (all
    relations sharing one dictionary): per join-tree node it stores the
    code matrix, a weight column aligned row-for-row with it (appended
    and dropped in step with the relation's delta segments), and the
    node's message toward its parent as a :class:`_Message`.

    Usage: mutate the relations (or the :class:`WeightedDatabase`)
    directly, then call :meth:`value` — it resynchronizes through
    ``mutation_stamp`` / ``delta_since`` before answering, so it can
    never serve a stale aggregate.  Each single-tuple update costs one
    delta-message fold per node on the path to the root — O(depth)
    group-merges, each over the handful of touched keys, plus one
    vectorized scan per level to find the affected parent rows (a
    deletion locates its own row by the same kind of scan).

    Full-rebuild fallbacks (counted in ``rebuilds``): a relation's
    delta history is gone (compaction or bulk rewrite — the delta was
    no longer small), a deletion under a semiring without ``np_negate``
    (⊕ has no inverse, so negative deltas cannot fold), or a drifted
    weight store.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        semiring: Semiring,
        weights: Optional[WeightedDatabase] = None,
        tree: Optional[JoinTree] = None,
    ) -> None:
        if not query.is_join_query():
            raise ValueError(
                "AggregateMaintainer requires a join query; project "
                "first (free-connex queries reduce to one)"
            )
        self.query = query
        self.db = db
        self.semiring = semiring
        self.weights = weights
        self.tree = (
            tree if tree is not None else join_tree(query.hypergraph())
        )
        self.rebuilds = -1  # _build below is construction, not a rebuild
        plus_ufunc, times_fn, _ = semiring.kernels()
        self._plus = plus_ufunc
        self._times = times_fn
        self._negate = semiring.np_negate
        self._atom_nodes: Dict[str, List[int]] = {}
        self._atom_proj: Dict[
            int, Tuple[Tuple[int, ...], List[Tuple[int, int]]]
        ] = {}
        for node, atom in enumerate(query.atoms):
            self._atom_nodes.setdefault(atom.relation, []).append(node)
            self._atom_proj[node] = atom_projection(atom.variables)
        self._rebuild()

    # ------------------------------------------------------------------
    # build / rebuild
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self.rebuilds += 1
        query, db, semiring = self.query, self.db, self.semiring
        frames = dict(enumerate(atom_frames(query, db)))
        dictionary = columnar_family(frames.values())
        if dictionary is None:
            raise ValueError(
                "AggregateMaintainer requires a columnar database whose "
                "relations share one dictionary (Database(backend="
                "'columnar'))"
            )
        self.dictionary = dictionary
        self._stamps = snapshot_stamps(db, query.relation_symbols)
        self._weight_stamp = (
            self.weights.mutation_stamp if self.weights is not None else 0
        )
        self._weight_pos = (
            self.weights.weight_log_position
            if self.weights is not None
            else 0
        )
        atom_weights = (
            self.weights.atom_weight_fn(query, semiring)
            if self.weights is not None
            else None
        )
        cardinality = len(dictionary)
        # Node storage is *partitioned*: per node a list of aligned
        # (codes, values) parts — one part per shard of the stored
        # relation when it is sharded (so rebuilds never coalesce and
        # a single-tuple delta later touches only its owning part),
        # one part total otherwise.  _route[node] holds the relation's
        # (key column, shard count) routing map when partitioned.
        self._codes: Dict[int, List[np.ndarray]] = {}
        self._values: Dict[int, List[np.ndarray]] = {}
        self._route: Dict[int, Optional[Tuple[int, int]]] = {}
        self._messages: Dict[int, _Message] = {}
        self._child_pos: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self._parent_pos: Dict[int, Tuple[int, ...]] = {}
        for node in self.tree.bottom_up():
            frame = frames[node]
            relation = db[query.atoms[node].relation]
            if (
                isinstance(frame, ShardedColumnarFrame)
                and isinstance(relation, ShardedColumnarRelation)
                and len(frame.shards) == relation.shard_count
            ):
                part_frames: List[ColumnarFrame] = list(frame.shards)
                self._route[node] = (
                    (relation.key_column, relation.shard_count)
                    if relation.arity
                    else None  # arity 0 routes everything to shard 0
                )
                executor = frame._exec()
            else:
                part_frames = [frame]
                self._route[node] = None
                executor = SERIAL
            codes_parts = [pf.codes() for pf in part_frames]
            if atom_weights is not None:
                values_parts = [
                    atom_weights.column(node, pf) for pf in part_frames
                ]
            else:
                values_parts = [
                    semiring.unit_column(len(c)) for c in codes_parts
                ]
            self._codes[node] = codes_parts
            self._values[node] = values_parts
            child_pos: Dict[int, Tuple[int, ...]] = {}
            for child in self.tree.children(node):
                sep = tuple(
                    sorted(
                        v for v in frame.variables
                        if v in frames[child].variables
                    )
                )
                child_pos[child] = frame.positions(sep)
            self._child_pos[node] = child_pos
            sep_to_parent = self.tree.separator(node)
            parent_vars = tuple(
                sorted(v for v in frame.variables if v in sep_to_parent)
            )
            ppos = frame.positions(parent_vars)
            self._parent_pos[node] = ppos
            child_messages = [
                (list(pos), self._messages[child])
                for child, pos in child_pos.items()
            ]

            def part_message(part):
                """One part's (reps, reduced) toward the parent."""
                codes, values = part
                combined = values
                for pos, message in child_messages:
                    gathered = message.gather(
                        codes[:, pos], cardinality, semiring.zero
                    )
                    combined = self._times(combined, gathered)
                sub = codes[:, list(ppos)] if ppos else codes[:, :0]
                reps, group_ids, group_count = group_rows(
                    sub, cardinality
                )
                reduced = group_reduce(
                    combined, group_ids, group_count, self._plus
                )
                return reps, reduced

            parts_out = executor.map(
                part_message, list(zip(codes_parts, values_parts))
            )
            if len(parts_out) == 1:
                reps, reduced = parts_out[0]
            else:
                # Merge of per-part messages: ⊕-combine equal keys of
                # the shard-order concatenation (the batch path's
                # cross-shard merge).
                all_reps = np.concatenate(
                    [reps for reps, _ in parts_out], axis=0
                )
                all_values = np.concatenate(
                    [reduced for _, reduced in parts_out]
                )
                reps, group_ids, group_count = group_rows(
                    all_reps, cardinality
                )
                reduced = group_reduce(
                    all_values, group_ids, group_count, self._plus
                )
            self._messages[node] = _Message(reps, reduced)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def value(self) -> object:
        """The current aggregate (resynchronizing first)."""
        self.refresh()
        semiring = self.semiring
        total = semiring.one
        for root in self.tree.roots:
            message = self._messages[root]
            if len(message.values):
                root_value = semiring.as_scalar(
                    self._plus.reduce(message.values)
                )
            else:
                root_value = semiring.zero
            total = semiring.times(total, root_value)
        return semiring.as_scalar(total)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Fold the relations' net deltas in (or rebuild if impossible)."""
        weight_drift = (
            self.weights is not None
            and self.weights.mutation_stamp != self._weight_stamp
        )
        drifted = stale_relations(self.db, self._stamps)
        if not drifted and not weight_drift:
            return
        plan: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for name, stamp in drifted.items():
            delta_since = getattr(self.db[name], "delta_since", None)
            if delta_since is None:
                self._rebuild()
                return
            try:
                inserted, deleted = delta_since(stamp)
            except TruncatedHistoryError:
                self._rebuild()
                return
            if len(deleted) and self._negate is None:
                self._rebuild()
                return
            plan.append((name, np.asarray(inserted), np.asarray(deleted)))
        if weight_drift:
            # A weight change is harmless exactly when its tuple is part
            # of the pending net delta: inserts read the *current* weight
            # when applied, and deletes fold the stored (as-of-sync)
            # column value regardless of a later purge.  Anything else —
            # a retroactive change to an already-synced tuple, a purge
            # cancelled by a re-add, a truncated log — needs a rebuild.
            changes = self.weights.weight_changes_since(self._weight_pos)
            if changes is None:
                self._rebuild()
                return
            delta_rows = {
                name: set(map(tuple, inserted.tolist()))
                | set(map(tuple, deleted.tolist()))
                for name, inserted, deleted in plan
            }
            for relation, coded in changes:
                if coded is None or coded not in delta_rows.get(
                    relation, ()
                ):
                    self._rebuild()
                    return
        for name, inserted, deleted in plan:
            nodes = self._atom_nodes.get(name, ())
            for row in map(tuple, deleted.tolist()):
                for node in nodes:
                    self._apply(node, name, row, insert=False)
            for row in map(tuple, inserted.tolist()):
                for node in nodes:
                    self._apply(node, name, row, insert=True)
            self._stamps[name] = self.db[name].mutation_stamp
        if self.weights is not None:
            self._weight_stamp = self.weights.mutation_stamp
            self._weight_pos = self.weights.weight_log_position

    def _all_zero(self, values: np.ndarray) -> bool:
        try:
            return bool(np.all(values == self.semiring.zero))
        except (TypeError, ValueError):  # incomparable carrier
            return False

    def _apply(
        self, node: int, name: str, rel_row: Row, insert: bool
    ) -> None:
        """Apply one net relation delta row to one atom node.

        With a partitioned node (sharded stored relation) the delta
        touches only its *owning* part — the shard given by the
        relation's routing map — so a single-tuple update is O(one
        shard), not O(all shards).
        """
        proj, checks = self._atom_proj[node]
        for pos, first in checks:
            if rel_row[pos] != rel_row[first]:
                return  # fails the atom's repeated-variable selection
        semiring = self.semiring
        cardinality = len(self.dictionary)
        route = self._route[node]
        slot = (
            shard_of_code(rel_row[route[0]], route[1])
            if route is not None
            else 0
        )
        codes = self._codes[node][slot]
        values = self._values[node][slot]
        frame_row = np.asarray(
            [rel_row[p] for p in proj], dtype=np.int64
        ).reshape(1, len(proj))
        if insert:
            weight = semiring.one
            if self.weights is not None:
                weight = self.weights.coded_weights(name).get(
                    rel_row, semiring.one
                )
            weight_arr = _constant_column(1, weight, values.dtype)
            if weight_arr.dtype != np.dtype(object):
                weight_arr = weight_arr.astype(values.dtype, copy=False)
            delta = weight_arr
            for child, pos in self._child_pos[node].items():
                gathered = self._messages[child].gather(
                    frame_row[:, list(pos)], cardinality, semiring.zero
                )
                delta = self._times(delta, gathered)
            self._codes[node][slot] = np.concatenate(
                [codes, frame_row], axis=0
            )
            self._values[node][slot] = np.concatenate(
                [values, weight_arr]
            )
        else:
            if codes.shape[1]:
                mask = np.all(codes == frame_row[0], axis=1)
            else:
                mask = np.ones(len(codes), dtype=bool)
            hit = np.flatnonzero(mask)
            if not len(hit):
                return  # row never reached this node (defensive)
            row_index = int(hit[0])
            delta = values[row_index : row_index + 1].copy()
            for child, pos in self._child_pos[node].items():
                gathered = self._messages[child].gather(
                    frame_row[:, list(pos)], cardinality, semiring.zero
                )
                delta = self._times(delta, gathered)
            delta = self._negate(delta)
            keep = np.ones(len(codes), dtype=bool)
            keep[row_index] = False
            self._codes[node][slot] = codes[keep]
            self._values[node][slot] = values[keep]
        if self._all_zero(delta):
            return  # dead row: ⊕-neutral, nothing to propagate
        ppos = self._parent_pos[node]
        delta_reps = (
            frame_row[:, list(ppos)] if ppos else frame_row[:, :0]
        )
        self._messages[node].fold(
            delta_reps, delta, cardinality, self._plus
        )
        self._propagate(node, delta_reps, delta)

    def _propagate(
        self, child: int, delta_reps: np.ndarray, delta_values: np.ndarray
    ) -> None:
        """Fold a child's delta message up the root path."""
        semiring = self.semiring
        cardinality = len(self.dictionary)
        while True:
            parent = self.tree.parent.get(child)
            if parent is None:
                return
            pos = self._child_pos[parent][child]
            # Collect affected rows part by part (shard-order concat,
            # so a partitioned parent never coalesces).
            row_parts: List[np.ndarray] = []
            value_parts: List[np.ndarray] = []
            for codes, part_values in zip(
                self._codes[parent], self._values[parent]
            ):
                sub = codes[:, list(pos)] if pos else codes[:, :0]
                q_keys, t_keys = common_keys(sub, delta_reps, cardinality)
                affected = np.flatnonzero(np.isin(q_keys, t_keys))
                if len(affected):
                    row_parts.append(codes[affected])
                    value_parts.append(part_values[affected].copy())
            if not row_parts:
                return
            rows = (
                row_parts[0]
                if len(row_parts) == 1
                else np.concatenate(row_parts, axis=0)
            )
            values = (
                value_parts[0]
                if len(value_parts) == 1
                else np.concatenate(value_parts)
            )
            delta_message = _Message(delta_reps, delta_values)
            for other, opos in self._child_pos[parent].items():
                other_sub = (
                    rows[:, list(opos)] if opos else rows[:, :0]
                )
                source = (
                    delta_message
                    if other == child
                    else self._messages[other]
                )
                values = self._times(
                    values,
                    source.gather(other_sub, cardinality, semiring.zero),
                )
            ppos = self._parent_pos[parent]
            sep = rows[:, list(ppos)] if ppos else rows[:, :0]
            reps, group_ids, group_count = group_rows(sep, cardinality)
            reduced = group_reduce(
                values, group_ids, group_count, self._plus
            )
            try:
                alive = np.asarray(
                    reduced != semiring.zero, dtype=bool
                ).reshape(len(reduced))
            except (TypeError, ValueError):
                alive = np.ones(len(reduced), dtype=bool)
            if not bool(alive.all()):
                reps, reduced = reps[alive], reduced[alive]
            if not len(reduced):
                return
            self._messages[parent].fold(
                reps, reduced, cardinality, self._plus
            )
            delta_reps, delta_values = reps, reduced
            child = parent
