"""Commutative semiring abstraction and the standard instances.

Each semiring optionally carries *NumPy kernels* — a ``⊕`` ufunc (with
``reduceat``), an array-capable ``⊗``, and a weight-column dtype — so
the vectorized FAQ message passing of :mod:`repro.semiring.faq` can run
whole weight columns through segment reduces instead of folding Python
scalars.  Semirings without native kernels still vectorize through the
:func:`numpy.frompyfunc` escape hatch over object arrays: the grouping
stays columnar, only the per-element fold is Python.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(K, plus, times, zero, one)``.

    ``zero`` is the ⊕-identity (and ⊗-annihilator), ``one`` the
    ⊗-identity.  No algebraic checking is done at construction; the
    property-based tests verify the laws for the shipped instances.

    ``np_plus`` / ``np_times`` / ``np_dtype``, when provided, are the
    vectorized counterparts of ``plus`` / ``times`` over NumPy arrays
    of ``np_dtype`` (``np_plus`` must be a ufunc supporting
    ``reduceat``).  :meth:`kernels` falls back to object-dtype
    ``frompyfunc`` wrappers when they are absent, so every semiring is
    usable by the columnar aggregation path.

    ``np_negate``, when provided, is the ⊕-inverse kernel (the semiring
    is then a *ring* in ⊕, e.g. counting over ℤ).  Incremental
    maintenance (:class:`repro.semiring.faq.AggregateMaintainer`) uses
    it to fold tuple *deletions* as negated delta messages; semirings
    without it (Boolean, tropical — their ⊕ is idempotent and has no
    inverse) fall back to a full recompute on deletions.
    """

    name: str
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    np_plus: Optional[Any] = None
    np_times: Optional[Any] = None
    np_dtype: Optional[Any] = None
    np_negate: Optional[Any] = None

    def sum(self, values: Iterable[Any]) -> Any:
        """⊕-fold with the correct identity."""
        total = self.zero
        for value in values:
            total = self.plus(total, value)
        return total

    def product(self, values: Iterable[Any]) -> Any:
        """⊗-fold with the correct identity."""
        total = self.one
        for value in values:
            total = self.times(total, value)
        return total

    # ------------------------------------------------------------------
    # vectorized kernels
    # ------------------------------------------------------------------
    def kernels(self) -> Tuple[Any, Any, Any]:
        """``(plus_ufunc, times_fn, dtype)`` for array aggregation.

        Native kernels when declared; otherwise ``frompyfunc`` lifts of
        the scalar operations over ``object`` arrays — slower per
        element but structurally identical, so the vectorized message
        passing never needs a scalar code path.
        """
        if self.np_plus is not None:
            return self.np_plus, self.np_times, self.np_dtype
        return _object_kernels(self)

    def unit_column(self, length: int) -> np.ndarray:
        """A weight column of ``length`` copies of ``one``."""
        _, _, dtype = self.kernels()
        if np.dtype(dtype) == np.dtype(object):
            # np.full would *broadcast* a sequence-valued identity
            # (e.g. a pair semiring's ``one``) instead of repeating it.
            column = np.empty(length, dtype=object)
            column.fill(self.one)
            return column
        return np.full(length, self.one, dtype=dtype)

    def fused_kernel(self) -> Optional[Any]:
        """A compiled fused group-lookup kernel, or ``None``.

        The optional ``numba`` path behind the same seam as
        :meth:`kernels`: when :mod:`repro.semiring.kernels` can build a
        jitted kernel for this semiring it is passed to
        :func:`repro.db.columnar.fused_group_lookup`, which otherwise
        runs its (bit-identical) NumPy form.  Object-dtype semirings
        always return ``None`` — the escape hatch is unchanged.
        """
        if self.np_plus is None:
            return None
        from repro.semiring.kernels import fused_kernel_for

        return fused_kernel_for(self)

    def as_scalar(self, value: Any) -> Any:
        """A NumPy scalar back as the plain Python value.

        Keeps the vectorized aggregates byte-compatible with the
        scalar path: counting returns ``int``, Boolean ``bool``.
        """
        return value.item() if isinstance(value, np.generic) else value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


@lru_cache(maxsize=None)
def _object_kernels(semiring: Semiring) -> Tuple[Any, Any, Any]:
    """Object-dtype fallback kernels (the generic-semiring escape hatch)."""
    return (
        np.frompyfunc(semiring.plus, 2, 1),
        np.frompyfunc(semiring.times, 2, 1),
        np.dtype(object),
    )


BOOLEAN = Semiring(
    name="boolean",
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    zero=False,
    one=True,
    np_plus=np.logical_or,
    np_times=np.logical_and,
    np_dtype=np.bool_,
)

# int64 weight columns: exact as long as intermediate counts stay below
# 2^63, which covers every workload here by orders of magnitude (the
# scalar path's bigints remain available by forcing the Python backend).
COUNTING = Semiring(
    name="counting",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    np_plus=np.add,
    np_times=np.multiply,
    np_dtype=np.int64,
    np_negate=np.negative,
)

# The tropical semiring: ⊕ = min, ⊗ = +.  Aggregating the k-clique join
# query over it is Min-Weight-k-Clique (paper Section 4.1.2).  float64
# columns represent the ±inf identities exactly.
MIN_PLUS = Semiring(
    name="min-plus",
    plus=min,
    times=lambda a, b: a + b,
    zero=math.inf,
    one=0,
    np_plus=np.minimum,
    np_times=np.add,
    np_dtype=np.float64,
)

MAX_PLUS = Semiring(
    name="max-plus",
    plus=max,
    times=lambda a, b: a + b,
    zero=-math.inf,
    one=0,
    np_plus=np.maximum,
    np_times=np.add,
    np_dtype=np.float64,
)
