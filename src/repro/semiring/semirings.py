"""Commutative semiring abstraction and the standard instances."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(K, plus, times, zero, one)``.

    ``zero`` is the ⊕-identity (and ⊗-annihilator), ``one`` the
    ⊗-identity.  No algebraic checking is done at construction; the
    property-based tests verify the laws for the shipped instances.
    """

    name: str
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    zero: Any
    one: Any

    def sum(self, values: Iterable[Any]) -> Any:
        """⊕-fold with the correct identity."""
        total = self.zero
        for value in values:
            total = self.plus(total, value)
        return total

    def product(self, values: Iterable[Any]) -> Any:
        """⊗-fold with the correct identity."""
        total = self.one
        for value in values:
            total = self.times(total, value)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


BOOLEAN = Semiring(
    name="boolean",
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    zero=False,
    one=True,
)

COUNTING = Semiring(
    name="counting",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
)

# The tropical semiring: ⊕ = min, ⊗ = +.  Aggregating the k-clique join
# query over it is Min-Weight-k-Clique (paper Section 4.1.2).
MIN_PLUS = Semiring(
    name="min-plus",
    plus=min,
    times=lambda a, b: a + b,
    zero=math.inf,
    one=0,
)

MAX_PLUS = Semiring(
    name="max-plus",
    plus=max,
    times=lambda a, b: a + b,
    zero=-math.inf,
    one=0,
)
