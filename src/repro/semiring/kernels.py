"""Optional compiled kernels for the fused FAQ aggregation pass.

:func:`~repro.db.columnar.fused_group_lookup` collapses the FAQ
message chain — group-reduce the child's values, binary-search the
parent's keys, ⊗-combine into the running product — into one pass.
Its NumPy form is already allocation-light; this module optionally
compiles the *whole* pass into a single ``numba``-jitted loop per
semiring, removing even the reduced/gathered temporaries: per query
row, walk the child's sorted segment, fold with ⊕, combine into the
target with ⊗, never touching a full-size array.

``numba`` is deliberately **not** a dependency.  Everything here is
import-guarded: without it (or with ``REPRO_KERNELS=numpy``)
:func:`fused_kernel_for` returns ``None`` and callers take the NumPy
path; results are bit-identical either way because both perform the
same ⊕ fold in the same order.  The object-dtype escape hatch in
:mod:`repro.semiring.semirings` is untouched — kernels exist only for
the four native-dtype semirings.

Set ``REPRO_KERNELS=numba`` to *require* compiled kernels (raises if
numba is missing) — used by the CI job that installs numba to make
sure the compiled path actually runs.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Optional

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the common container path
    numba = None


def _mode() -> str:
    return os.environ.get("REPRO_KERNELS", "auto").strip().lower()


def kernel_backend() -> str:
    """``"numba"`` when compiled kernels are active, else ``"numpy"``."""
    mode = _mode()
    if mode == "numpy":
        return "numpy"
    if numba is None:
        if mode == "numba":
            raise RuntimeError(
                "REPRO_KERNELS=numba but numba is not installed"
            )
        return "numpy"
    return "numba"


# name -> (plus scalar fold, times scalar fold, numpy dtype).  The
# names match the Semiring instances in semirings.py; the scalar ops
# are the elementwise forms of their np_plus/np_times ufuncs, so the
# compiled fold is exactly the reduceat/ufunc fold of the NumPy path.
_SPECS = {
    "counting": (lambda a, b: a + b, lambda a, b: a * b, np.int64),
    "min-plus": (min, lambda a, b: a + b, np.float64),
    "max-plus": (max, lambda a, b: a + b, np.float64),
    "boolean": (lambda a, b: a or b, lambda a, b: a and b, np.bool_),
}


@lru_cache(maxsize=None)
def _build(name: str) -> Optional[Callable]:
    if numba is None or name not in _SPECS:
        return None
    plus, times, _ = _SPECS[name]
    plus = numba.njit(plus)
    times = numba.njit(times)

    def kernel(sorted_values, seg_starts, uniq_keys, q_keys, target, found):
        n_seg = len(uniq_keys)
        n_val = len(sorted_values)
        for i in range(len(q_keys)):
            key = q_keys[i]
            # binary search over the distinct source keys
            lo, hi = 0, n_seg
            while lo < hi:
                mid = (lo + hi) // 2
                if uniq_keys[mid] < key:
                    lo = mid + 1
                else:
                    hi = mid
            if lo >= n_seg or uniq_keys[lo] != key:
                found[i] = False
                continue
            found[i] = True
            start = seg_starts[lo]
            end = seg_starts[lo + 1] if lo + 1 < n_seg else n_val
            acc = sorted_values[start]
            for j in range(start + 1, end):
                acc = plus(acc, sorted_values[j])
            target[i] = times(target[i], acc)

    try:  # pragma: no cover - depends on numba version support
        return numba.njit(kernel, cache=False, nogil=True)
    except Exception:
        return None


def fused_kernel_for(semiring) -> Optional[Callable]:
    """The compiled fused kernel for ``semiring``, or ``None``.

    ``None`` means "use the NumPy path" — numba missing, disabled via
    ``REPRO_KERNELS=numpy``, no spec for this semiring, or the jit
    refused to compile on this interpreter.  The returned callable has
    the :func:`~repro.db.columnar.fused_group_lookup` kernel signature
    ``(sorted_values, seg_starts, uniq_keys, q_keys, target, found)``.
    """
    mode = _mode()
    if mode == "numpy":
        return None
    kernel = _build(getattr(semiring, "name", ""))
    if kernel is None and mode == "numba" and numba is not None:
        raise RuntimeError(
            f"REPRO_KERNELS=numba but no compiled kernel for {semiring!r}"
        )
    if kernel is None and mode == "numba":
        raise RuntimeError(
            "REPRO_KERNELS=numba but numba is not installed"
        )
    return kernel
