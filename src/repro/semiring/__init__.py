"""Aggregation over semirings (paper Section 4.1.2).

A commutative semiring ``(K, ⊕, ⊗, 0, 1)`` turns query evaluation into
aggregation: each database tuple carries a weight, an answer's weight is
the ⊗-product of its atoms' tuple weights, and the aggregate is the
⊕-sum over answers.  Instantiations used in the paper and here:

- Boolean semiring — satisfiability;
- counting semiring (ℕ, +, ×) — answer counting (Section 3.2);
- tropical semiring (min, +) — minimum-weight answers; on the k-clique
  query this *is* Min-Weight-k-Clique (Section 4.1.2, Example 4.3).

:mod:`repro.semiring.faq` aggregates acyclic join queries in Õ(m) by
message passing over a join tree (the FAQ / AJAR style algorithm), and
cyclic ones through generic join in Õ(m^{ρ*}).
"""

from repro.semiring.faq import (
    AggregateMaintainer,
    WeightedDatabase,
    aggregate_acyclic,
    aggregate_frames,
    aggregate_generic,
)
from repro.semiring.semirings import (
    BOOLEAN,
    COUNTING,
    MAX_PLUS,
    MIN_PLUS,
    Semiring,
)

__all__ = [
    "AggregateMaintainer",
    "BOOLEAN",
    "COUNTING",
    "MAX_PLUS",
    "MIN_PLUS",
    "Semiring",
    "WeightedDatabase",
    "aggregate_acyclic",
    "aggregate_frames",
    "aggregate_generic",
]
