"""repro — reproduction of "Lower Bounds for Conjunctive Query Evaluation"
(Stefan Mengel, PODS 2025, arXiv:2506.17702).

The package implements, from scratch, every algorithm the survey states
an upper bound for and every fine-grained reduction it proves, plus the
dichotomy classifiers the theorems induce — and, on top of them, a
unified query engine that does the dichotomy dispatch for you.

Which API do I want?
====================

===================================  =======================================
I want to...                         use
===================================  =======================================
serve a query (count / pages /       :func:`connect` → :meth:`Session.
stream / aggregate) without          prepare` → :class:`AnswerSet` — the
picking algorithms                   engine classifies, plans, and stays
                                     live under updates
see *why* a pipeline was chosen      :meth:`PreparedQuery.explain` (the
(theorems, costs, backend)           plan) or :func:`classify` (the full
                                     dichotomy report)
call one algorithm directly          the low-level entry points the engine
(benchmarks, experiments)            wraps: :func:`count_answers`,
                                     :class:`ConstantDelayEnumerator`,
                                     :class:`LexDirectAccess`,
                                     :mod:`repro.joins`,
                                     :mod:`repro.semiring`
maintain one aggregate under         :class:`HierarchicalCountMaintainer`
updates, no serving facade           / :mod:`repro.dynamic`
build inputs                         :class:`Database`, :func:`parse_query`,
                                     :mod:`repro.workloads`
pick a storage backend               ``Database(backend=...)`` —
                                     ``"python"`` (tiny inputs,
                                     per-row callbacks), ``"columnar"``
                                     (bulk analytics, one NumPy code
                                     matrix per relation), ``"sharded"``
                                     (hash-partitioned matrices: batched
                                     ingestion + merge-based
                                     aggregation at out-of-core scale);
                                     the engine planner picks one
                                     automatically by input size
run shards in parallel               ``connect(workers=N)`` (or the
                                     ``REPRO_WORKERS`` environment
                                     variable) — per-shard scans,
                                     joins, and FAQ messages fan out
                                     over a thread pool
                                     (:mod:`repro.db.executor`) and
                                     merge in shard order, so answers
                                     stay bit-identical to serial;
                                     ``explain()`` reports the
                                     executor choice
serve a database larger than RAM     ``connect(spill_dir=...,
                                     max_resident_shards=K)`` — an
                                     LRU :class:`repro.db.spill.
                                     SpillPool` keeps only hot
                                     shards' code matrices resident;
                                     cold shards live on disk as
                                     ``np.memmap`` files and fault
                                     back in on touch
survive crashes / restart warm /     ``connect(path=...)`` — a durable
replicate to read followers          session (CRC-checked WAL +
                                     atomic incremental checkpoints,
                                     :mod:`repro.db.wal`);
                                     :meth:`Session.checkpoint`
                                     persists data *and* prepared
                                     plans; :mod:`repro.engine.
                                     replication` ships
                                     ``delta_since`` batches to
                                     :class:`FollowerSession` replicas
                                     (``connect(replica_of=feed)``;
                                     ``catchup_path`` cold-starts a
                                     follower from the leader's
                                     rotated WAL segment files)
serve sessions to many clients       :mod:`repro.server` — a stdlib
over the network                     asyncio HTTP/1.1 service:
                                     :class:`repro.server.QueryServer`
                                     (or :class:`repro.server.
                                     ServerThread` for sync embedders)
                                     exposes multi-tenant databases,
                                     ``prepare`` → handle, paged
                                     reads, streamed NDJSON ingestion
                                     with backpressure batching, and
                                     SSE ``watch`` streams of
                                     maintained aggregate changes;
                                     :class:`repro.server.
                                     ServerClient` is the matching
                                     stdlib client
replicate across machines            ``connect(replica_of=
over the wire                        "http://host:port/v1/replica/
                                     db")`` — the URL resolves to an
                                     :class:`repro.server.
                                     HttpReplicaTransport` speaking
                                     the leader's replica endpoints;
                                     connection drops and 5xx retry
                                     with backoff, corrupt payloads
                                     fail fast as
                                     :class:`ReplicationError`
join cyclic queries at NumPy         :func:`repro.joins.generic_join.
speed / aggregate without            generic_join_codes` — the
decoding                             breadth-first *frontier* Generic
                                     Join over dictionary-code
                                     matrices (zero per-row decodes;
                                     the default on the columnar and
                                     sharded backends, ``REPRO_
                                     FRONTIER=0`` restores the
                                     depth-first oracle);
                                     :func:`generic_join` is the same
                                     with values decoded at the
                                     boundary
speed up semiring aggregation        nothing — the fused group-lookup
                                     kernel (``fused_group_lookup``)
                                     is the FAQ default on columnar
                                     frames (``REPRO_FAQ_FUSED=0``
                                     restores the chained pipeline);
                                     install ``numba`` and set
                                     ``REPRO_KERNELS=numba`` for
                                     jit-compiled per-semiring
                                     kernels (:mod:`repro.semiring.
                                     kernels`; optional, object
                                     semirings unaffected)
operate the durable store            ``DurableDatabase.verify()`` —
(scrub / verify / repair /           re-check every checkpoint file
quarantine)                          and WAL segment against manifest
                                     checksums;
                                     ``DurableDatabase.repair(path)``
                                     — quarantine damage and restore
                                     the newest consistent state
                                     (:mod:`repro.db.scrub`);
                                     ``attach(path, degraded=True)``
                                     — read-only salvage; damage
                                     raises
                                     :class:`CorruptSnapshotError` /
                                     :class:`CorruptWalError`, never
                                     silent wrong answers
===================================  =======================================

Subpackages:

- :mod:`repro.engine` — Session / PreparedQuery / AnswerSet facade with
  classifier-driven planning (the primary public API);
- :mod:`repro.db` — relations and databases (python / columnar /
  sharded backends; durable WAL + checkpoint storage via
  :func:`repro.db.attach`);
- :mod:`repro.query` — conjunctive query syntax, parser, catalog;
- :mod:`repro.hypergraph` — acyclicity, join trees, free-connexness,
  disruptive trios, Brault-Baron witnesses, star size, AGM exponents;
- :mod:`repro.matmul` — Boolean matrix multiplication backends;
- :mod:`repro.joins` — Yannakakis, generic join (frontier-vectorized),
  AYZ triangle, LW joins;
- :mod:`repro.counting` — answer counting algorithms + interpolation;
- :mod:`repro.semiring` — aggregation over semirings (FAQ; fused
  group-lookup kernels, optional numba compilation);
- :mod:`repro.enumeration` — constant-delay enumeration;
- :mod:`repro.direct_access` — lexicographic / sum-order direct access,
  testing;
- :mod:`repro.dynamic` — maintained counts under updates;
- :mod:`repro.server` — the network service layer (asyncio HTTP/SSE
  server, stdlib client, HTTP replication transport);
- :mod:`repro.solvers` — reference solvers for the source problems;
- :mod:`repro.reductions` — the paper's fine-grained reductions;
- :mod:`repro.classify` — the dichotomy classifier;
- :mod:`repro.workloads` — seeded instance generators;
- :mod:`repro.util` — timing and scaling-exponent estimation.

Quickstart (the engine; ``examples/quickstart.py`` for the full tour)::

    from repro import connect
    session = connect({"R1": [(1, 2)], "R2": [(3, 2)]})
    answers = session.prepare("q(x1, x2) :- R1(x1, z), R2(x2, z)").run()
    print(len(answers), answers[:5])
"""

from repro.classify import QueryClassification, TaskVerdict, classify
from repro.counting import count_answers
from repro.db import (
    CorruptionError,
    CorruptSnapshotError,
    CorruptWalError,
    Database,
    DegradedDatabaseError,
    DurableDatabase,
    Relation,
    TruncatedHistoryError,
    attach,
)
from repro.dynamic import HierarchicalCountMaintainer
from repro.direct_access import (
    LexDirectAccess,
    SumOrderDirectAccess,
    TestingOracle,
)
from repro.engine import (
    AnswerSet,
    FollowerSession,
    LeaderFeed,
    Plan,
    PreparedQuery,
    ReplicationError,
    Session,
    connect,
)
from repro.enumeration import ConstantDelayEnumerator
from repro.hypergraph import (
    Hypergraph,
    is_acyclic,
    is_free_connex,
    join_tree,
    quantified_star_size,
)
from repro.query import Atom, ConjunctiveQuery, catalog, parse_query

__version__ = "1.1.0"

__all__ = [
    "AnswerSet",
    "Atom",
    "ConjunctiveQuery",
    "ConstantDelayEnumerator",
    "CorruptSnapshotError",
    "CorruptWalError",
    "CorruptionError",
    "Database",
    "DegradedDatabaseError",
    "DurableDatabase",
    "FollowerSession",
    "HierarchicalCountMaintainer",
    "Hypergraph",
    "LeaderFeed",
    "LexDirectAccess",
    "Plan",
    "PreparedQuery",
    "QueryClassification",
    "Relation",
    "ReplicationError",
    "Session",
    "SumOrderDirectAccess",
    "TaskVerdict",
    "TestingOracle",
    "TruncatedHistoryError",
    "attach",
    "catalog",
    "classify",
    "connect",
    "count_answers",
    "is_acyclic",
    "is_free_connex",
    "join_tree",
    "parse_query",
    "quantified_star_size",
    "__version__",
]
