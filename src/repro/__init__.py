"""repro — reproduction of "Lower Bounds for Conjunctive Query Evaluation"
(Stefan Mengel, PODS 2025, arXiv:2506.17702).

The package implements, from scratch, every algorithm the survey states
an upper bound for and every fine-grained reduction it proves, plus the
dichotomy classifiers the theorems induce.  Subpackages:

- :mod:`repro.db` — relations and databases;
- :mod:`repro.query` — conjunctive query syntax, parser, catalog;
- :mod:`repro.hypergraph` — acyclicity, join trees, free-connexness,
  disruptive trios, Brault-Baron witnesses, star size, AGM exponents;
- :mod:`repro.matmul` — Boolean matrix multiplication backends;
- :mod:`repro.joins` — Yannakakis, generic join, AYZ triangle, LW joins;
- :mod:`repro.counting` — answer counting algorithms + interpolation;
- :mod:`repro.semiring` — aggregation over semirings (FAQ);
- :mod:`repro.enumeration` — constant-delay enumeration;
- :mod:`repro.direct_access` — lexicographic / sum-order direct access,
  testing;
- :mod:`repro.solvers` — reference solvers for the source problems;
- :mod:`repro.reductions` — the paper's fine-grained reductions;
- :mod:`repro.classify` — the dichotomy classifier;
- :mod:`repro.workloads` — seeded instance generators;
- :mod:`repro.util` — timing and scaling-exponent estimation.

Quickstart::

    from repro import parse_query, classify
    q = parse_query("q(x1, x2) :- R1(x1, z), R2(x2, z)")
    print(classify(q).render())
"""

from repro.classify import QueryClassification, TaskVerdict, classify
from repro.counting import count_answers
from repro.db import Database, Relation
from repro.dynamic import HierarchicalCountMaintainer
from repro.direct_access import (
    LexDirectAccess,
    SumOrderDirectAccess,
    TestingOracle,
)
from repro.enumeration import ConstantDelayEnumerator
from repro.hypergraph import (
    Hypergraph,
    is_acyclic,
    is_free_connex,
    join_tree,
    quantified_star_size,
)
from repro.query import Atom, ConjunctiveQuery, catalog, parse_query

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "ConstantDelayEnumerator",
    "Database",
    "HierarchicalCountMaintainer",
    "Hypergraph",
    "LexDirectAccess",
    "QueryClassification",
    "Relation",
    "SumOrderDirectAccess",
    "TaskVerdict",
    "TestingOracle",
    "catalog",
    "classify",
    "count_answers",
    "is_acyclic",
    "is_free_connex",
    "join_tree",
    "parse_query",
    "quantified_star_size",
    "__version__",
]
