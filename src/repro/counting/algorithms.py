"""Counting algorithms with the complexity profile the paper predicts.

The dichotomy (Theorem 3.13): for self-join free queries, linear-time
counting exists iff the query is free-connex acyclic (assuming SETH +
Triangle + Hyperclique).  The implementations here realize the upper
bounds; the benchmark harness confirms the lower-bound side by watching
the fallback paths go superlinear on exactly the predicted queries.

Both linear counters delegate to the semiring message passing of
:mod:`repro.semiring.faq`, which dispatches on the frame backend: on a
columnar database the whole count is an array program (weight columns,
segment reduces) with zero per-row decodes — the easy side of the
dichotomy then runs at hardware speed (``bench_a07``), while the hard
side still pays its superlinear enumeration.

:func:`count_answers` is the low-level dispatcher; the engine facade
(:mod:`repro.engine`) calls it (or an incremental maintainer) behind
``AnswerSet.count()``.
"""

from __future__ import annotations

from typing import Optional

from repro.db.database import Database
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.joins.fc_reduce import free_connex_reduce
from repro.joins.generic_join import generic_join, generic_join_codes
from repro.query.cq import ConjunctiveQuery
from repro.semiring.faq import aggregate_acyclic, aggregate_frames
from repro.semiring.semirings import COUNTING


def count_acyclic_join(query: ConjunctiveQuery, db: Database) -> int:
    """Count answers of an acyclic join query in Õ(m) (Theorem 3.8)."""
    return aggregate_acyclic(query, db, COUNTING)


def count_free_connex(query: ConjunctiveQuery, db: Database) -> int:
    """Count answers of a free-connex acyclic query in Õ(m)
    (Theorem 3.13's upper bound).

    Boolean queries count their single empty answer when satisfiable.
    """
    if query.is_boolean():
        from repro.joins.yannakakis import yannakakis_boolean

        return 1 if yannakakis_boolean(query, db) else 0
    reduced = free_connex_reduce(query, db)
    if reduced.is_empty:
        return 0
    return aggregate_frames(reduced.frames, reduced.tree, COUNTING)


def count_brute_force(query: ConjunctiveQuery, db: Database) -> int:
    """Materialize-and-count through the worst-case-optimal join.

    Õ(m^{ρ*} ) for join queries; for projected queries the cost is the
    full-join size, which is the superlinear behaviour Theorems 3.12
    and 4.6 say is unavoidable for non-free-connex queries.
    """
    if query.is_boolean():
        return 1 if query.holds(db) else 0
    coded = generic_join_codes(query, db)
    if coded is not None:
        # Columnar inputs: the frontier join's distinct head rows are
        # the count — no tuple ever decodes.
        return len(coded[0])
    return len(generic_join(query, db))


def count_answers(
    query: ConjunctiveQuery,
    db: Database,
    method: Optional[str] = None,
) -> int:
    """Count answers, dispatching to the best applicable algorithm.

    ``method`` forces a specific path (``"acyclic-join"``,
    ``"free-connex"``, ``"brute"``); by default:

    1. free-connex acyclic (includes acyclic join queries and acyclic
       Boolean queries) → linear-time message passing;
    2. everything else → worst-case-optimal enumeration.
    """
    if method == "acyclic-join":
        return count_acyclic_join(query, db)
    if method == "free-connex":
        return count_free_connex(query, db)
    if method == "brute":
        return count_brute_force(query, db)
    if method is not None:
        raise ValueError(f"unknown counting method {method!r}")
    if is_acyclic(query.hypergraph()):
        if query.is_join_query():
            return count_acyclic_join(query, db)
        if is_free_connex(query):
            return count_free_connex(query, db)
    return count_brute_force(query, db)
