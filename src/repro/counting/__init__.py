"""Counting answers to conjunctive queries (paper Section 3.2).

- :func:`count_acyclic_join` — Theorem 3.8's Õ(m) counting for acyclic
  join queries (message passing over the counting semiring);
- :func:`count_free_connex` — Theorem 3.13's Õ(m) counting for
  free-connex acyclic queries (free-connex reduction, then the same
  message passing);
- :func:`count_answers` — dispatching entry point that picks the best
  applicable algorithm and falls back to brute-force enumeration for
  the provably-hard cases (whose superlinearity experiment E6/E14
  measures);
- :mod:`repro.counting.interpolation` — the Dalmau–Jonsson
  interpolation trick that removes the self-join-freeness requirement
  in Theorem 3.8's lower bound.
"""

from repro.counting.algorithms import (
    count_acyclic_join,
    count_answers,
    count_brute_force,
    count_free_connex,
)
from repro.counting.interpolation import (
    count_with_colors,
    star_counts_by_interpolation,
)

__all__ = [
    "count_acyclic_join",
    "count_answers",
    "count_brute_force",
    "count_free_connex",
    "count_with_colors",
    "star_counts_by_interpolation",
]
