"""The interpolation technique for self-joins (Dalmau–Jonsson, [35]).

Theorem 3.8 does not require self-join freeness "since self-joins can
be dealt with in the lower bound with an interpolation argument".  This
module makes that argument executable for the star family: an oracle
counting the *self-join* query

    q*_k(x1..xk) :- R(x1,z), ..., R(xk,z)

suffices to count the *self-join free* query

    q̄*_k(x1..xk) :- R1(x1,z), ..., Rk(xk,z)

exactly — so hardness of the self-join-free query transfers to the
self-join query.

Method.  Tag each input relation so they become pairwise disjoint
without disturbing the join variable: tuples of ``R_i`` become
``((i, x), z)``.  For ``T ⊆ [k]`` let ``B_T`` be the oracle's count on
``R := ⋃_{i∈T} tagged(R_i)``.  Every answer of q*_k on that union picks
a source relation per atom, so ``B_T = Σ_{g:[k]→T} A_g`` where ``A_g``
counts answers whose atom ``i`` uses ``R_{g(i)}``.  Möbius inversion
over the subset lattice gives the sum over *surjective* ``g`` — i.e.
permutations — and since relabelling the (interchangeable) atoms of
q*_k permutes answer coordinates bijectively, ``A_π = A_id`` for every
permutation π.  Hence

    A_id = (1/k!) Σ_{T⊆[k]} (-1)^{k-|T|} B_T,

and ``A_id`` is exactly the (tag-stripped) count of q̄*_k.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.catalog import star_query
from repro.query.cq import ConjunctiveQuery

Pair = Tuple[object, object]
Oracle = Callable[[Set[Pair]], int]


def tag_relations(
    relations: Sequence[Set[Pair]],
) -> List[Set[Pair]]:
    """Make binary relations pairwise disjoint by tagging first columns.

    ``(x, z)`` in relation ``i`` becomes ``((i, x), z)``; the join
    column ``z`` is untouched, so star-query joins are preserved.
    """
    return [
        {((i, x), z) for (x, z) in rel} for i, rel in enumerate(relations)
    ]


def default_star_oracle(k: int) -> Oracle:
    """An oracle counting q*_k via the generic evaluator.

    Used in tests and demos; in a lower-bound argument this would be
    the hypothetical fast counting algorithm being contradicted.
    """
    query = star_query(k)

    def oracle(relation: Set[Pair]) -> int:
        db = Database()
        rel = Relation("R", 2, relation)
        db.add_relation(rel)
        return query.count_brute_force(db)

    return oracle


def count_with_colors(
    relations: Sequence[Set[Pair]], oracle: Oracle
) -> int:
    """Count q̄*_k(R_1..R_k) using only a q*_k counting oracle.

    ``relations`` are the k binary relations; ``oracle`` counts the
    self-join star query on a single binary relation.  Makes 2^k - 1
    oracle calls (the empty union contributes 0 answers for k ≥ 1).
    """
    k = len(relations)
    if k == 0:
        raise ValueError("need at least one relation")
    tagged = tag_relations(relations)
    total = 0
    for size in range(1, k + 1):
        sign = (-1) ** (k - size)
        for subset in combinations(range(k), size):
            union: Set[Pair] = set()
            for i in subset:
                union |= tagged[i]
            total += sign * oracle(union)
    quotient, remainder = divmod(total, factorial(k))
    if remainder:  # pragma: no cover - would indicate an oracle bug
        raise ArithmeticError(
            "interpolation sum not divisible by k!; oracle is inconsistent"
        )
    return quotient


def star_counts_by_interpolation(
    relations: Sequence[Set[Pair]],
    oracle: Oracle = None,
) -> int:
    """Count the self-join-free star query via interpolation.

    Convenience wrapper: supplies :func:`default_star_oracle` when none
    is given, so ``star_counts_by_interpolation(rels)`` can be compared
    directly against a brute-force count of q̄*_k in tests.
    """
    if oracle is None:
        oracle = default_star_oracle(len(relations))
    return count_with_colors(relations, oracle)
