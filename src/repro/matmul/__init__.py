"""Boolean matrix multiplication backends (paper Section 2.3).

The paper's triangle algorithm (Theorem 3.2) and the Nešetřil–Poljak
k-clique algorithm (Theorem 4.1) are parameterized by a Boolean matrix
multiplication routine with exponent ω.  We provide:

- :func:`bmm_numpy` — the "fast" backend: multiply over the integers
  with numpy and threshold (exactly the real-multiplication trick the
  paper describes);
- :func:`bmm_naive` — the cubic *combinatorial* baseline (the reference
  point of the Combinatorial k-Clique Hypothesis discussion, Sec 4.1.1);
- :func:`bmm_strassen` — a from-scratch Strassen implementation
  (ω = log2 7 ≈ 2.807) showing a genuinely sub-cubic algorithm without
  relying on BLAS;
- :mod:`repro.matmul.sparse` — output-sensitive sparse BMM, the object
  of the Sparse BMM Hypothesis (Hypothesis 1).
"""

from repro.matmul.dense import bmm_naive, bmm_numpy, bmm_strassen
from repro.matmul.sparse import (
    SparseBooleanMatrix,
    sparse_bmm,
    sparse_bmm_via_dense,
)

__all__ = [
    "SparseBooleanMatrix",
    "bmm_naive",
    "bmm_numpy",
    "bmm_strassen",
    "sparse_bmm",
    "sparse_bmm_via_dense",
]
