"""Sparse Boolean matrix multiplication (Hypothesis 1's problem).

In the sparse setting the input matrices are given as lists of the
positions of their non-zero entries, and runtime is measured in
``m`` — the total number of non-zeros of inputs *and output*.  The
Sparse BMM Hypothesis (Hypothesis 1) asserts no Õ(m) algorithm exists;
the best known bound is O(m^1.3459) [Abboud et al., SODA 2024].

:class:`SparseBooleanMatrix` is the list-of-coordinates representation;
:func:`sparse_bmm` is the classical output-sensitive "hash join"
algorithm with runtime O(Σ_k in-degree(k)·out-degree(k)) — worst case
m^2, and exactly the algorithm that enumeration of the query q̄*_2
simulates in Theorem 3.15.  Beyond a small size cutoff the pairing is
executed columnar — coordinate arrays matched on the middle index with
the same sort/searchsorted/repeat kernel the join stack uses
(:func:`repro.db.columnar.match_pairs`) — instead of Python dict
loops; both paths compute the identical entry set.
:func:`sparse_bmm_via_dense` routes through a dense backend, which
wins on dense-ish inputs; the crossover between the two is one of the
ablation benches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import numpy as np

from repro.db.columnar import match_pairs

Coordinate = Tuple[int, int]

# Below this many total non-zeros the Python dict pairing beats the
# NumPy path's fixed per-call overhead.
_VECTORIZE_CUTOFF = 256


class SparseBooleanMatrix:
    """A Boolean matrix stored as the set of its non-zero coordinates."""

    def __init__(
        self, entries: Iterable[Coordinate] = (), shape: Tuple[int, int] = None
    ) -> None:
        self.entries: Set[Coordinate] = set()
        for i, j in entries:
            if i < 0 or j < 0:
                raise ValueError("coordinates must be non-negative")
            self.entries.add((int(i), int(j)))
        if shape is None:
            rows = 1 + max((i for i, _ in self.entries), default=-1)
            cols = 1 + max((j for _, j in self.entries), default=-1)
            shape = (rows, cols)
        self.shape = shape
        for i, j in self.entries:
            if i >= shape[0] or j >= shape[1]:
                raise ValueError(
                    f"entry ({i},{j}) outside shape {shape}"
                )

    @property
    def nnz(self) -> int:
        """Number of non-zero entries."""
        return len(self.entries)

    def rows_by_column(self) -> Dict[int, List[int]]:
        """Map j -> sorted list of i with (i, j) non-zero."""
        out: Dict[int, List[int]] = {}
        for i, j in self.entries:
            out.setdefault(j, []).append(i)
        for values in out.values():
            values.sort()
        return out

    def cols_by_row(self) -> Dict[int, List[int]]:
        """Map i -> sorted list of j with (i, j) non-zero."""
        out: Dict[int, List[int]] = {}
        for i, j in self.entries:
            out.setdefault(i, []).append(j)
        for values in out.values():
            values.sort()
        return out

    def transpose(self) -> "SparseBooleanMatrix":
        return SparseBooleanMatrix(
            ((j, i) for i, j in self.entries),
            shape=(self.shape[1], self.shape[0]),
        )

    def coordinate_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The entries as aligned int64 ``(rows, cols)`` arrays."""
        if not self.entries:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        coords = np.asarray(sorted(self.entries), dtype=np.int64)
        return (
            np.ascontiguousarray(coords[:, 0]),
            np.ascontiguousarray(coords[:, 1]),
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=bool)
        rows, cols = self.coordinate_arrays()
        dense[rows, cols] = True
        return dense

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "SparseBooleanMatrix":
        array = np.asarray(matrix).astype(bool)
        coords = zip(*np.nonzero(array))
        return cls(((int(i), int(j)) for i, j in coords), shape=array.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseBooleanMatrix):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseBooleanMatrix(shape={self.shape}, nnz={self.nnz})"


def sparse_bmm(
    a: SparseBooleanMatrix, b: SparseBooleanMatrix
) -> SparseBooleanMatrix:
    """Output-sensitive sparse Boolean product via the middle index.

    For every middle index k, pair the rows i with A[i,k]=1 against the
    columns j with B[k,j]=1.  This is the join-then-project that the
    query q̄*_2(x,y) :- A(x,z), B(z,y) performs, and the algorithm whose
    Õ(m) impossibility is Hypothesis 1.
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    if a.nnz + b.nnz >= _VECTORIZE_CUTOFF:
        return _sparse_bmm_columnar(a, b)
    by_col = a.rows_by_column()
    by_row = b.cols_by_row()
    out: Set[Coordinate] = set()
    for k, left_rows in by_col.items():
        right_cols = by_row.get(k)
        if not right_cols:
            continue
        for i in left_rows:
            for j in right_cols:
                out.add((i, j))
    return SparseBooleanMatrix(out, shape=(a.shape[0], b.shape[1]))


def _sparse_bmm_columnar(
    a: SparseBooleanMatrix, b: SparseBooleanMatrix
) -> SparseBooleanMatrix:
    """The same pairing over coordinate arrays — no per-entry Python.

    Matching A's column index against B's row index is exactly the
    equi-join kernel of the columnar backend; the (i, j) results are
    deduplicated with one ``np.unique`` over packed 64-bit keys.
    """
    rows_a, cols_a = a.coordinate_arrays()
    rows_b, cols_b = b.coordinate_arrays()
    left, right = match_pairs(cols_a, rows_b)
    out = SparseBooleanMatrix(shape=(a.shape[0], b.shape[1]))
    if len(left):
        out_rows = rows_a[left]
        out_cols = cols_b[right]
        packed = np.unique(out_rows * np.int64(b.shape[1]) + out_cols)
        out.entries = set(
            zip(
                (packed // b.shape[1]).tolist(),
                (packed % b.shape[1]).tolist(),
            )
        )
    return out


def sparse_bmm_via_dense(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    backend: str = "numpy",
) -> SparseBooleanMatrix:
    """Sparse product by densifying and using a dense backend.

    The n^ω route: better than :func:`sparse_bmm` when the inputs are
    dense relative to their dimensions, hopeless when n is large and the
    matrices are very sparse — which is precisely why a fast dense
    algorithm (even ω = 2) does not obviously give fast *sparse* BMM
    (paper Section 2.3).
    """
    from repro.matmul.dense import get_backend

    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    multiply = get_backend(backend)
    product = multiply(a.to_dense(), b.to_dense())
    return SparseBooleanMatrix.from_dense(product)
