"""Dense Boolean matrix multiplication backends.

All functions take and return numpy arrays of dtype ``bool`` (inputs of
0/1 integers are accepted and coerced).  The Boolean product is
``C[i,j] = OR_k A[i,k] AND B[k,j]``.

The paper (Section 2.3) notes that the best Boolean MM algorithms just
multiply over the reals and threshold — :func:`bmm_numpy` does exactly
that.  :func:`bmm_naive` is the O(n^3) combinatorial reference, and
:func:`bmm_strassen` a from-scratch Strassen recursion (the 1969
breakthrough the section recounts) with exponent log2(7).
"""

from __future__ import annotations

import numpy as np

STRASSEN_CUTOFF = 64
STRASSEN_EXPONENT = 2.807  # log2(7), Strassen's 1969 bound on omega


def _coerce(matrix: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional")
    return array.astype(bool)


def _check_compatible(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {a.shape} vs {b.shape}"
        )


def bmm_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean MM via integer multiplication and thresholding.

    This is the paper's reduction of Boolean MM to MM over the reals:
    any non-zero entry of the integer product becomes 1.  int64 is safe:
    entries are bounded by the inner dimension.
    """
    a = _coerce(a, "a")
    b = _coerce(b, "b")
    _check_compatible(a, b)
    product = a.astype(np.int64) @ b.astype(np.int64)
    return product > 0


def bmm_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The cubic combinatorial algorithm: row-by-row OR of rows of B.

    Deliberately avoids any algebraic trick so it can serve as the
    "combinatorial algorithm" baseline of Section 4.1.1.  (Row-level
    numpy ORs keep it usable in experiments while preserving the cubic
    operation count.)
    """
    a = _coerce(a, "a")
    b = _coerce(b, "b")
    _check_compatible(a, b)
    n, _ = a.shape
    _, p = b.shape
    out = np.zeros((n, p), dtype=bool)
    for i in range(n):
        row = out[i]
        a_row = a[i]
        for k in np.flatnonzero(a_row):
            np.logical_or(row, b[k], out=row)
    return out


def _pad_to_power_of_two(matrix: np.ndarray, size: int) -> np.ndarray:
    padded = np.zeros((size, size), dtype=np.int64)
    padded[: matrix.shape[0], : matrix.shape[1]] = matrix
    return padded


def _strassen_recursive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Strassen over the integers; inputs are square with 2^k sides."""
    n = a.shape[0]
    if n <= STRASSEN_CUTOFF:
        return a @ b
    h = n // 2
    a11, a12 = a[:h, :h], a[:h, h:]
    a21, a22 = a[h:, :h], a[h:, h:]
    b11, b12 = b[:h, :h], b[:h, h:]
    b21, b22 = b[h:, :h], b[h:, h:]

    m1 = _strassen_recursive(a11 + a22, b11 + b22)
    m2 = _strassen_recursive(a21 + a22, b11)
    m3 = _strassen_recursive(a11, b12 - b22)
    m4 = _strassen_recursive(a22, b21 - b11)
    m5 = _strassen_recursive(a11 + a12, b22)
    m6 = _strassen_recursive(a21 - a11, b11 + b12)
    m7 = _strassen_recursive(a12 - a22, b21 + b22)

    out = np.empty((n, n), dtype=np.int64)
    out[:h, :h] = m1 + m4 - m5 + m7
    out[:h, h:] = m3 + m5
    out[h:, :h] = m2 + m4
    out[h:, h:] = m1 - m2 + m3 + m6
    return out


def bmm_strassen(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean MM through a from-scratch Strassen recursion.

    Works over the integers (Strassen needs subtraction, which the
    Boolean semiring lacks — the same reason the paper multiplies over
    the reals) and thresholds at the end.  Entries stay bounded by the
    inner dimension, far below int64 overflow for any feasible size.
    """
    a = _coerce(a, "a")
    b = _coerce(b, "b")
    _check_compatible(a, b)
    n = max(a.shape[0], a.shape[1], b.shape[1])
    size = 1
    while size < n:
        size *= 2
    a_pad = _pad_to_power_of_two(a.astype(np.int64), size)
    b_pad = _pad_to_power_of_two(b.astype(np.int64), size)
    product = _strassen_recursive(a_pad, b_pad)
    return product[: a.shape[0], : b.shape[1]] > 0


BACKENDS = {
    "numpy": bmm_numpy,
    "naive": bmm_naive,
    "strassen": bmm_strassen,
}


def get_backend(name: str):
    """Look up a BMM backend by name (``numpy``/``naive``/``strassen``)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown BMM backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
