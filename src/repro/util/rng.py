"""Deterministic random number generation helpers.

All workload generators in :mod:`repro.workloads` take either an integer
seed or an already-constructed :class:`random.Random`.  Centralizing the
coercion here keeps every experiment reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple, Union

SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    Passing an existing ``Random`` returns it unchanged so that callers
    can thread one generator through several generation steps.  Passing
    ``None`` yields a generator seeded with a fixed default (0) rather
    than OS entropy: experiments must be reproducible by default.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0)
    return random.Random(seed)


def sample_distinct_pairs(
    rng: random.Random,
    universe: int,
    count: int,
    ordered: bool = True,
) -> List[Tuple[int, int]]:
    """Sample ``count`` distinct pairs over ``range(universe)``.

    Used by graph and relation generators.  With ``ordered=False`` the
    pairs are undirected edges (returned with the smaller endpoint
    first).  Raises :class:`ValueError` when more pairs are requested
    than exist.
    """
    if universe < 2:
        raise ValueError("universe must contain at least two elements")
    max_pairs = universe * (universe - 1)
    if not ordered:
        max_pairs //= 2
    if count > max_pairs:
        raise ValueError(
            f"requested {count} distinct pairs but only {max_pairs} exist"
        )
    seen = set()
    result: List[Tuple[int, int]] = []
    # Rejection sampling is fine: callers request sparse subsets.  Fall
    # back to full enumeration when the request is a large fraction.
    if count > max_pairs // 2:
        all_pairs = [
            (a, b)
            for a in range(universe)
            for b in range(universe)
            if a != b and (ordered or a < b)
        ]
        rng.shuffle(all_pairs)
        return all_pairs[:count]
    while len(result) < count:
        a = rng.randrange(universe)
        b = rng.randrange(universe)
        if a == b:
            continue
        if not ordered and a > b:
            a, b = b, a
        if (a, b) in seen:
            continue
        seen.add((a, b))
        result.append((a, b))
    return result


def shuffled(rng: random.Random, items: Iterable) -> list:
    """Return a new shuffled list of ``items`` (the input is untouched)."""
    out = list(items)
    rng.shuffle(out)
    return out


def random_subset(
    rng: random.Random, items: Iterable, size: Optional[int] = None
) -> list:
    """Return a uniformly random subset of ``items``.

    When ``size`` is given, the subset has exactly that many elements;
    otherwise each element is kept independently with probability 1/2.
    """
    pool = list(items)
    if size is not None:
        if size > len(pool):
            raise ValueError("subset size exceeds population")
        return rng.sample(pool, size)
    return [x for x in pool if rng.random() < 0.5]
