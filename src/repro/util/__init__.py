"""Shared utilities: deterministic RNG helpers, timing, scaling-exponent fits.

These are the measurement tools used throughout the benchmark harness to
turn wall-clock observations into the *exponents* that the paper's
fine-grained claims are about.
"""

from repro.util.rng import make_rng, sample_distinct_pairs
from repro.util.scaling import (
    ScalingFit,
    fit_scaling_exponent,
    geometric_sizes,
)
from repro.util.timing import Stopwatch, time_call

__all__ = [
    "ScalingFit",
    "Stopwatch",
    "fit_scaling_exponent",
    "geometric_sizes",
    "make_rng",
    "sample_distinct_pairs",
    "time_call",
]
