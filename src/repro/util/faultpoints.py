"""Deterministic fault injection for the durability subsystem.

Crash safety is a *property*, not an anecdote: "we recover from a crash
at any point" is only testable if every dangerous point — each write,
fsync and rename in :mod:`repro.db.wal` and :mod:`repro.db.checkpoint`
— can be made to fail on demand, deterministically, under test control.

This module is that control plane.  Durability code declares its crash
points once at import time (:func:`declare`) and calls
:func:`fault_point` (raise-on-arm) or :func:`fires` (check-on-arm, for
sites that simulate *partial* damage such as a torn tail write) at each
site.  Tests arm a single point with :func:`arm`/:func:`crashing`, run
the workload until :class:`InjectedCrash` fires, then recover and check
invariants.  Nothing here is probabilistic: a point armed ``at=3``
fires on exactly its third visit, every run.

When no point is armed the hooks are a dict lookup on an empty dict —
cheap enough to leave in production code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

__all__ = [
    "InjectedCrash",
    "arm",
    "crashing",
    "declare",
    "disarm",
    "fault_point",
    "fires",
    "hits",
    "known_fault_points",
    "reset",
]


class InjectedCrash(RuntimeError):
    """Raised (or simulated) at an armed fault point.

    Deliberately *not* an ``Exception`` subclass of anything the
    durability code catches: it must propagate like a real crash
    (power loss, ``kill -9``) and leave on-disk state exactly as the
    interrupted operation left it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


# Registry of every declared point (name -> declaring module), the
# armed countdowns, and per-point hit counters for test assertions.
_DECLARED: Dict[str, str] = {}
_ARMED: Dict[str, int] = {}
_HITS: Dict[str, int] = {}


def declare(*names: str, module: str = "") -> Tuple[str, ...]:
    """Register fault points; returns the names for re-export.

    Durability modules call this at import time so that test suites can
    enumerate *every* crash point (:func:`known_fault_points`) and prove
    each one is covered, rather than hard-coding a list that silently
    rots when a new write site is added.
    """
    for name in names:
        _DECLARED.setdefault(name, module)
    return names


def known_fault_points() -> Tuple[str, ...]:
    """All declared fault points, sorted (for exhaustive coverage loops)."""
    return tuple(sorted(_DECLARED))


def arm(point: str, at: int = 1) -> None:
    """Arm ``point`` to fire on its ``at``-th visit (1-based)."""
    if point not in _DECLARED:
        raise ValueError(f"unknown fault point {point!r}")
    if at < 1:
        raise ValueError(f"fault point visit count must be >= 1, got {at}")
    _ARMED[point] = at


def disarm(point: str) -> None:
    """Disarm ``point`` (no-op if it is not armed)."""
    _ARMED.pop(point, None)


def reset() -> None:
    """Disarm everything and clear hit counters (test teardown)."""
    _ARMED.clear()
    _HITS.clear()


def hits(point: str) -> int:
    """How many times ``point`` actually fired since the last reset."""
    return _HITS.get(point, 0)


def fires(point: str) -> bool:
    """True exactly when the armed countdown for ``point`` reaches zero.

    For sites that must *simulate damage* rather than merely raise —
    e.g. a torn append that writes half a record before dying — the
    site checks :func:`fires` first, inflicts the partial write, then
    raises :class:`InjectedCrash` itself.
    """
    if point not in _ARMED:
        return False
    _ARMED[point] -= 1
    if _ARMED[point] > 0:
        return False
    del _ARMED[point]
    _HITS[point] = _HITS.get(point, 0) + 1
    return True


def fault_point(point: str) -> None:
    """Crash here if ``point`` is armed and its countdown expires."""
    if fires(point):
        raise InjectedCrash(point)


@contextmanager
def crashing(point: str, at: int = 1) -> Iterator[None]:
    """Arm ``point`` for the duration of the block, disarm on exit."""
    arm(point, at=at)
    try:
        yield
    finally:
        disarm(point)
