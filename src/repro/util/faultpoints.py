"""Deterministic fault injection for the durability subsystem.

Crash safety is a *property*, not an anecdote: "we recover from a crash
at any point" is only testable if every dangerous point — each write,
fsync and rename in :mod:`repro.db.wal` and :mod:`repro.db.checkpoint`
— can be made to fail on demand, deterministically, under test control.

This module is that control plane.  Durability code declares its crash
points once at import time (:func:`declare`) and calls
:func:`fault_point` (raise-on-arm) or :func:`fires` (check-on-arm, for
sites that simulate *partial* damage such as a torn tail write) at each
site.  Tests arm a single point with :func:`arm`/:func:`crashing`, run
the workload until :class:`InjectedCrash` fires, then recover and check
invariants.  Nothing here is probabilistic: a point armed ``at=3``
fires on exactly its third visit, every run.

When no point is armed the hooks are a dict lookup on an empty dict —
cheap enough to leave in production code paths.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

__all__ = [
    "CORRUPTION_MODES",
    "InjectedCrash",
    "arm",
    "corrupt_file",
    "crashing",
    "declare",
    "disarm",
    "fault_point",
    "fires",
    "hits",
    "known_fault_points",
    "reset",
]


class InjectedCrash(RuntimeError):
    """Raised (or simulated) at an armed fault point.

    Deliberately *not* an ``Exception`` subclass of anything the
    durability code catches: it must propagate like a real crash
    (power loss, ``kill -9``) and leave on-disk state exactly as the
    interrupted operation left it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


# Registry of every declared point (name -> declaring module), the
# armed countdowns, and per-point hit counters for test assertions.
# Countdown decrements and hit bumps are lock-guarded: durability sites
# can be visited from executor worker threads (repro.db.executor), and
# a racing decrement could fire an armed point twice or never.
_DECLARED: Dict[str, str] = {}
_ARMED: Dict[str, int] = {}
_HITS: Dict[str, int] = {}
_LOCK = threading.RLock()


def declare(*names: str, module: str = "") -> Tuple[str, ...]:
    """Register fault points; returns the names for re-export.

    Durability modules call this at import time so that test suites can
    enumerate *every* crash point (:func:`known_fault_points`) and prove
    each one is covered, rather than hard-coding a list that silently
    rots when a new write site is added.
    """
    for name in names:
        _DECLARED.setdefault(name, module)
    return names


def known_fault_points() -> Tuple[str, ...]:
    """All declared fault points, sorted (for exhaustive coverage loops)."""
    return tuple(sorted(_DECLARED))


def arm(point: str, at: int = 1) -> None:
    """Arm ``point`` to fire on its ``at``-th visit (1-based)."""
    if point not in _DECLARED:
        raise ValueError(f"unknown fault point {point!r}")
    if at < 1:
        raise ValueError(f"fault point visit count must be >= 1, got {at}")
    with _LOCK:
        _ARMED[point] = at


def disarm(point: str) -> None:
    """Disarm ``point`` (no-op if it is not armed)."""
    with _LOCK:
        _ARMED.pop(point, None)


def reset() -> None:
    """Disarm everything and clear hit counters (test teardown)."""
    with _LOCK:
        _ARMED.clear()
        _HITS.clear()


def hits(point: str) -> int:
    """How many times ``point`` actually fired since the last reset."""
    with _LOCK:
        return _HITS.get(point, 0)


def fires(point: str) -> bool:
    """True exactly when the armed countdown for ``point`` reaches zero.

    For sites that must *simulate damage* rather than merely raise —
    e.g. a torn append that writes half a record before dying — the
    site checks :func:`fires` first, inflicts the partial write, then
    raises :class:`InjectedCrash` itself.
    """
    if point not in _ARMED:
        return False
    with _LOCK:
        remaining = _ARMED.get(point)
        if remaining is None:
            return False
        if remaining > 1:
            _ARMED[point] = remaining - 1
            return False
        del _ARMED[point]
        _HITS[point] = _HITS.get(point, 0) + 1
        return True


def fault_point(point: str) -> None:
    """Crash here if ``point`` is armed and its countdown expires."""
    if fires(point):
        raise InjectedCrash(point)


@contextmanager
def crashing(point: str, at: int = 1) -> Iterator[None]:
    """Arm ``point`` for the duration of the block, disarm on exit."""
    arm(point, at=at)
    try:
        yield
    finally:
        disarm(point)


# ----------------------------------------------------------------------
# on-disk corruption injection
# ----------------------------------------------------------------------
# Crash points model *interrupted* writes; these model *damaged* bytes —
# the other half of the failure model (disk rot, partial sector writes,
# an overeager editor).  The scrub suite corrupts each durable artifact
# in each mode and proves the detect-or-repair property: recovery
# either restores a correct consistent prefix or raises a typed
# corruption error, never silently serves wrong rows.

CORRUPTION_MODES = ("bitflip", "truncate", "zerofill")


def corrupt_file(
    path: str,
    mode: str,
    offset: int = None,
    length: int = 8,
) -> dict:
    """Deterministically damage one on-disk artifact in-place.

    ``mode``:

    - ``"bitflip"``  — XOR one bit at ``offset`` (silent rot)
    - ``"truncate"`` — cut the file to ``offset`` bytes (lost tail)
    - ``"zerofill"`` — overwrite ``length`` bytes at ``offset`` with
      zeros (a partially-written sector)

    ``offset`` defaults to the middle of the file so the damage lands
    inside real content, not in slack space.  Nothing here is random:
    the same call on the same file inflicts the same damage, so
    failing corruption tests replay exactly.  Returns a description
    of what was done (for test diagnostics).
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; expected one of "
            f"{CORRUPTION_MODES}"
        )
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    if offset is None:
        offset = size // 2
    offset = max(0, min(offset, size - 1))
    with open(path, "r+b") as handle:
        if mode == "bitflip":
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes((byte ^ 0x40,)))
            span = 1
        elif mode == "truncate":
            handle.truncate(offset)
            span = size - offset
        else:  # zerofill
            span = min(length, size - offset)
            handle.seek(offset)
            handle.write(b"\x00" * span)
    return {"mode": mode, "offset": offset, "length": span, "size": size}
