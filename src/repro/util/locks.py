"""A shared/exclusive lock for the session's reader/writer contract.

The engine's consistency story is single-writer: every mutation flows
through :meth:`repro.engine.session.Session.add` / ``discard`` /
``add_all``, which advance the relations' ``mutation_stamp``s and let
prepared structures repair themselves.  Serving that session to many
concurrent readers (the network layer in :mod:`repro.server`, or any
multi-threaded embedder) additionally needs *reads* to never observe a
half-applied mutation — a torn state between two relations of one
update, or a delta segment mid-append.

:class:`ReadWriteLock` provides exactly that, with **writer
preference** and **re-entrant reads**:

* any number of readers share the lock while no writer is active;
* a writer waits for all readers to drain and then runs exclusively;
* once a writer is *waiting*, fresh readers queue behind it — a
  continuous read storm (the serving layer's steady state) can
  therefore never starve the update stream;
* read acquisition is re-entrant per thread: a thread already inside
  the read side re-enters freely even while a writer waits, because
  blocking it would deadlock against its own outer hold.  Per-thread
  depth is tracked in a :class:`threading.local`.

No upgrade/downgrade, no timeouts: mutations are short and readers are
plentiful, so the simplest correct policy wins.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Shared ``read()`` / exclusive ``write()`` context managers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._local = threading.local()

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def read(self) -> Iterator[None]:
        """Shared acquisition; re-entrant within a thread."""
        reentrant = self._depth() > 0
        if not reentrant:
            with self._cond:
                # Fresh readers also yield to *waiting* writers
                # (writer preference); re-entrant ones must not, or
                # they would deadlock against their own outer hold.
                while self._writer or self._writers_waiting:
                    self._cond.wait()
                self._readers += 1
        self._local.depth = self._depth() + 1
        try:
            yield
        finally:
            self._local.depth -= 1
            if not reentrant:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive acquisition: waits out readers and other writers."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer={self._writer}, "
            f"waiting={self._writers_waiting})"
        )
