"""Timing primitives used by the benchmark harness.

The paper's claims are asymptotic, so raw timings only matter insofar as
they feed the scaling fits in :mod:`repro.util.scaling`.  We still keep
a small, dependable stopwatch abstraction so that preprocessing time,
per-answer delay and access time can be measured separately, which is
exactly the decomposition the enumeration/direct-access model uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple


class Stopwatch:
    """A resettable stopwatch with lap support.

    Laps are what the constant-delay instrumentation uses: each call to
    :meth:`lap` records the time since the previous lap, so the list of
    laps for an enumeration run *is* the sequence of delays.
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start
        self.laps: List[float] = []

    def reset(self) -> None:
        """Restart the stopwatch and clear recorded laps."""
        self._start = time.perf_counter()
        self._last = self._start
        self.laps = []

    def lap(self) -> float:
        """Record and return the time since the previous lap."""
        now = time.perf_counter()
        delta = now - self._last
        self._last = now
        self.laps.append(delta)
        return delta

    def elapsed(self) -> float:
        """Total time since construction or the last :meth:`reset`."""
        return time.perf_counter() - self._start

    def max_lap(self) -> float:
        """The largest recorded delay (0.0 when no laps were recorded)."""
        return max(self.laps) if self.laps else 0.0


@dataclass
class TimedResult:
    """A function result together with how long it took to compute."""

    value: Any
    seconds: float
    repeats: int = 1
    per_call: float = field(init=False)

    def __post_init__(self) -> None:
        self.per_call = self.seconds / max(self.repeats, 1)


def time_call(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 1,
    **kwargs: Any,
) -> TimedResult:
    """Time ``fn(*args, **kwargs)``, optionally repeating it.

    Repeats rerun the call and report the mean; the value returned is
    from the final run.  Useful for sub-millisecond operations (e.g.
    single direct-access probes) where one call is below timer noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    start = time.perf_counter()
    value = None
    for _ in range(repeats):
        value = fn(*args, **kwargs)
    seconds = time.perf_counter() - start
    return TimedResult(value=value, seconds=seconds, repeats=repeats)


def time_sweep(
    fn: Callable[[int], Any], sizes: List[int], repeats: int = 1
) -> List[Tuple[int, float]]:
    """Time ``fn(size)`` for each size; returns ``(size, seconds)`` pairs.

    This is the shape every scaling experiment consumes: run the same
    algorithm over a geometric ladder of input sizes and fit the slope.
    """
    out: List[Tuple[int, float]] = []
    for size in sizes:
        timed = time_call(fn, size, repeats=repeats)
        out.append((size, timed.per_call))
    return out
