"""Empirical scaling-exponent estimation.

Fine-grained complexity statements are about exponents: "no algorithm in
time O(m^{4/3-eps})".  To compare a measured algorithm against such a
claim we time it over a geometric ladder of input sizes and fit the
slope of log(time) against log(size) by least squares.  The slope is the
empirical exponent; the fit's R^2 tells us whether a power law is a good
model at all (cache effects and interpreter overhead show up as low R^2
at small sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ScalingFit:
    """Result of a log-log least-squares fit ``time ~ c * size^exponent``."""

    exponent: float
    log_constant: float
    r_squared: float
    points: Tuple[Tuple[float, float], ...]

    def predict(self, size: float) -> float:
        """Predicted running time at ``size`` under the fitted power law."""
        return math.exp(self.log_constant) * size**self.exponent

    def within(self, expected: float, tolerance: float) -> bool:
        """Is the fitted exponent within ``tolerance`` of ``expected``?"""
        return abs(self.exponent - expected) <= tolerance

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"time ~ size^{self.exponent:.3f} (R^2 = {self.r_squared:.4f}, "
            f"{len(self.points)} points)"
        )


def fit_scaling_exponent(
    observations: Sequence[Tuple[float, float]],
) -> ScalingFit:
    """Fit a power law to ``(size, seconds)`` observations.

    Ordinary least squares on the log-log transformed data.  Requires at
    least two observations with positive sizes and times.
    """
    points = [(s, t) for s, t in observations if s > 0 and t > 0]
    if len(points) < 2:
        raise ValueError("need at least two positive (size, time) points")
    xs = [math.log(s) for s, _ in points]
    ys = [math.log(t) for _, t in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all sizes identical; cannot fit an exponent")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(
        exponent=slope,
        log_constant=intercept,
        r_squared=r_squared,
        points=tuple(points),
    )


def geometric_sizes(
    start: int, factor: float, count: int, cap: int = 10**9
) -> List[int]:
    """A geometric ladder of integer sizes, deduplicated and capped.

    ``geometric_sizes(100, 2, 4)`` is ``[100, 200, 400, 800]``.  The
    ladder shape matters: equal spacing in log-space gives every point
    equal weight in the exponent fit.
    """
    if start < 1:
        raise ValueError("start must be >= 1")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    sizes: List[int] = []
    value = float(start)
    for _ in range(count):
        size = min(int(round(value)), cap)
        if not sizes or size != sizes[-1]:
            sizes.append(size)
        value *= factor
    return sizes


def crossover_point(
    fit_a: ScalingFit, fit_b: ScalingFit
) -> float:
    """Input size where two fitted power laws intersect.

    Used to report crossovers ("the BMM-based triangle algorithm
    overtakes the naive one beyond m ~ X on this machine").  Returns
    ``math.inf`` when the curves are parallel.
    """
    if fit_a.exponent == fit_b.exponent:
        return math.inf
    log_size = (fit_b.log_constant - fit_a.log_constant) / (
        fit_a.exponent - fit_b.exponent
    )
    return math.exp(log_size)
