"""Hypergraph theory for conjunctive queries.

Everything structural the paper's dichotomies hinge on:

- :mod:`repro.hypergraph.hypergraph` — the :class:`Hypergraph` type;
- :mod:`repro.hypergraph.gyo` — GYO reduction, alpha-acyclicity, and
  join-tree construction (Theorem 3.1's precondition);
- :mod:`repro.hypergraph.jointree` — validated join trees;
- :mod:`repro.hypergraph.freeconnex` — free-connexness (Section 3.2/3.3);
- :mod:`repro.hypergraph.trios` — disruptive trios (Section 3.4.1);
- :mod:`repro.hypergraph.structure` — Brault-Baron witnesses (Thm 3.6);
- :mod:`repro.hypergraph.starsize` — quantified star size (Section 4.4);
- :mod:`repro.hypergraph.widths` — fractional edge covers / the AGM
  exponent (Section 2.1).
"""

from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import gyo_reduction, is_acyclic, join_tree
from repro.hypergraph.hierarchical import (
    is_hierarchical,
    is_q_hierarchical,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree
from repro.hypergraph.starsize import quantified_star_size
from repro.hypergraph.structure import BraultBaronWitness, find_hard_substructure
from repro.hypergraph.trios import find_disruptive_trio, has_disruptive_trio
from repro.hypergraph.widths import (
    agm_exponent,
    fractional_edge_cover,
    integral_edge_cover_number,
    max_independent_set,
)

__all__ = [
    "BraultBaronWitness",
    "Hypergraph",
    "JoinTree",
    "agm_exponent",
    "find_disruptive_trio",
    "find_hard_substructure",
    "fractional_edge_cover",
    "gyo_reduction",
    "has_disruptive_trio",
    "integral_edge_cover_number",
    "is_acyclic",
    "is_free_connex",
    "is_hierarchical",
    "is_q_hierarchical",
    "join_tree",
    "max_independent_set",
    "quantified_star_size",
]
