"""Free-connex acyclicity (Bagan–Durand–Grandjean, paper Section 3.2/3.3).

An acyclic conjunctive query with hypergraph ``H`` and free variables
``S`` is *free-connex* when ``H ∪ {S}`` — the hypergraph obtained by
adding ``S`` itself as an edge — is also acyclic.  Free-connexness is
the dividing line of three dichotomies in the paper:

- linear-time counting (Theorem 3.13),
- constant-delay enumeration after linear preprocessing (Theorem 3.17),
- direct access with linear preprocessing (Theorem 3.18 / Cor. 3.22).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree
from repro.query.cq import ConjunctiveQuery


def is_free_connex_hypergraph(
    hypergraph: Hypergraph, free: Iterable[str]
) -> bool:
    """Is the pair ``(H, S)`` free-connex acyclic?

    Requires ``H`` itself to be acyclic *and* ``H ∪ {S}`` to be acyclic.
    Boolean heads (``S`` empty) and full heads (``S`` = all vertices)
    are free-connex whenever ``H`` is acyclic.
    """
    free_set = frozenset(free)
    if not is_acyclic(hypergraph):
        return False
    return is_acyclic(hypergraph.with_extra_edge(free_set))


def is_free_connex(query: ConjunctiveQuery) -> bool:
    """Is the query free-connex acyclic?"""
    return is_free_connex_hypergraph(
        query.hypergraph(), query.free_variables
    )


def free_connex_join_tree(query: ConjunctiveQuery) -> Tuple[JoinTree, int]:
    """A join tree of ``H ∪ {S}`` rooted at the virtual ``S`` node.

    Returns ``(tree, s_node)`` where ``s_node`` is the id of the extra
    node whose bag is exactly the free variables.  The subtree structure
    under the S-node is what the free-connex counting and enumeration
    algorithms traverse: every atom's projection onto the free variables
    hangs below a bag that already covers it.

    Raises :class:`ValueError` when the query is not free-connex.
    """
    hypergraph = query.hypergraph()
    free_set = frozenset(query.free_variables)
    extended = hypergraph.with_extra_edge(free_set)
    if not is_acyclic(extended):
        raise ValueError(f"query {query.name} is not free-connex")
    if not free_set:
        # with_extra_edge drops the empty edge; fall back to a plain
        # join tree of the body with a synthetic empty root.
        tree = join_tree(hypergraph)
        s_node = len(hypergraph.edges)
        bags = dict(tree.bags)
        bags[s_node] = frozenset()
        parent = dict(tree.parent)
        for root in tree.roots:
            parent[root] = s_node
        return JoinTree(bags=bags, parent=parent), s_node
    tree = join_tree(extended)
    s_node = len(hypergraph.edges)  # the extra edge is appended last
    tree = tree.rooted_at(s_node)
    # The S component now hangs under s_node; attach any other
    # components (disconnected body parts, necessarily disjoint from S)
    # below it as well so traversals see a single tree.
    parent = dict(tree.parent)
    for root in tree.roots:
        if root != s_node:
            parent[root] = s_node
    return JoinTree(bags=dict(tree.bags), parent=parent), s_node


def head_path_violation(
    query: ConjunctiveQuery,
) -> Optional[Tuple[str, str, Tuple[str, ...]]]:
    """A certificate of non-free-connexness for acyclic queries.

    Searches for two free variables ``x, z`` that share no atom but are
    linked by a path of existential variables — the pattern that lets
    the q*_2 query (and hence the BMM/testing lower bounds of Theorems
    3.12/3.15/3.16) be embedded.  Returns ``(x, z, path)`` with ``path``
    the existential bridge, or ``None`` when no such pair exists.

    This is a *witness helper* for the reductions, not the free-connex
    decision procedure (that is :func:`is_free_connex`).
    """
    hypergraph = query.hypergraph()
    free_set = frozenset(query.free_variables)
    adjacency = hypergraph.primal_graph()
    free_list = sorted(free_set)
    for i, x in enumerate(free_list):
        for z in free_list[i + 1 :]:
            if any(x in e and z in e for e in hypergraph.edges):
                continue
            path = _existential_path(adjacency, free_set, x, z)
            if path is not None:
                return (x, z, tuple(path))
    return None


def _existential_path(adjacency, free_set, source, target):
    """Shortest path from source to target via existential vertices only."""
    from collections import deque

    queue = deque([(source, ())])
    seen = {source}
    while queue:
        node, path = queue.popleft()
        for nbr in sorted(adjacency[node]):
            if nbr == target:
                return list(path)
            if nbr in seen or nbr in free_set:
                continue
            seen.add(nbr)
            queue.append((nbr, path + (nbr,)))
    return None


def free_variable_bags(
    query: ConjunctiveQuery,
) -> "dict[int, FrozenSet[str]]":
    """The bag family of the reduced join query over the free variables.

    This is the database-free counterpart of
    :func:`repro.joins.fc_reduce.free_connex_reduce`: for a free-connex
    query it returns exactly the variable sets of the frames the
    reduction would produce (children of the virtual ``S`` node of
    :func:`free_connex_join_tree`, intersected with the head; subtrees
    carrying no free variable are skipped).  The engine planner
    (:mod:`repro.engine`) feeds this family to
    :func:`repro.direct_access.layered.find_layered_tree` to decide,
    *before touching any data*, whether a lexicographic order admits
    the Õ(log m)-access structure of Theorem 3.24 — the check agrees
    with what :class:`repro.direct_access.lex.LexDirectAccess` will
    find at build time because both derive the same bag family.

    Raises :class:`ValueError` for non-free-connex or Boolean queries.
    """
    if query.is_boolean():
        raise ValueError("Boolean queries have no free variables to bag")
    extended_tree, s_node = free_connex_join_tree(query)
    free = frozenset(query.free_variables)
    bags: "dict[int, FrozenSet[str]]" = {}
    for index, child in enumerate(extended_tree.children(s_node)):
        scope = extended_tree.bags[child] & free
        if scope:
            bags[index] = frozenset(scope)
    return bags
