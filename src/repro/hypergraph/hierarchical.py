"""(q-)hierarchical queries — the dynamic-evaluation dichotomy [15].

The survey's conclusion points to query answering under updates, where
Berkholz–Keppeler–Schweikardt [15] prove: Boolean CQs admit constant
update time and constant answer time iff they are *q-hierarchical*.

Definitions (for self-join free queries; at(x) = set of atoms whose
scope contains x):

- *hierarchical*: for all variables x, y, the sets at(x), at(y) are
  comparable (one contains the other) or disjoint;
- *q-hierarchical*: hierarchical, and whenever at(x) ⊊ at(y) with x a
  free variable, y is free as well.

These are purely structural predicates, so they slot into the same
classifier machinery as acyclicity and free-connexness.  (Every
hierarchical query is acyclic; q*_k is hierarchical but *not*
q-hierarchical for k ≥ 2 — at(z) ⊋ at(x_i) with x_i free, z not —
matching its hardness everywhere else in the paper.)
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

from repro.query.cq import ConjunctiveQuery


def atom_sets(query: ConjunctiveQuery) -> Dict[str, FrozenSet[int]]:
    """at(x): indices of the atoms whose scope contains x."""
    out: Dict[str, set] = {v: set() for v in query.variables}
    for index, atom in enumerate(query.atoms):
        for variable in atom.scope:
            out[variable].add(index)
    return {v: frozenset(s) for v, s in out.items()}


def hierarchical_violation(
    query: ConjunctiveQuery,
) -> Optional[Tuple[str, str]]:
    """A pair of variables with crossing atom sets, or None."""
    sets = atom_sets(query)
    for x, y in combinations(sorted(query.variables), 2):
        a, b = sets[x], sets[y]
        if a & b and not (a <= b or b <= a):
            return (x, y)
    return None


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Are all atom-set pairs nested or disjoint?"""
    return hierarchical_violation(query) is None


def q_hierarchical_violation(
    query: ConjunctiveQuery,
) -> Optional[Tuple[str, str, str]]:
    """A witness against q-hierarchicality.

    Returns ``("crossing", x, y)`` for a hierarchy violation or
    ``("projection", x, y)`` when at(x) ⊊ at(y), x free, y projected.
    """
    crossing = hierarchical_violation(query)
    if crossing is not None:
        return ("crossing",) + crossing
    sets = atom_sets(query)
    free = query.free_variables
    for x in sorted(free):
        for y in sorted(query.variables):
            if x == y or y in free:
                continue
            if sets[x] < sets[y]:
                return ("projection", x, y)
    return None


def is_q_hierarchical(query: ConjunctiveQuery) -> bool:
    """The [15] dichotomy predicate: O(1) updates + O(1) answers iff
    q-hierarchical (for self-join free CQs, under the OMv conjecture
    on the hard side)."""
    return q_hierarchical_violation(query) is None
