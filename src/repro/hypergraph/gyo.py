"""GYO reduction: alpha-acyclicity and join-tree construction.

The paper defines acyclicity operationally (Section 2.1): a hypergraph
is acyclic iff repeatedly (a) deleting a vertex contained in at most one
edge and (b) deleting an edge that is a subset of another edge empties
it.  This is the Graham / Yu–Ozsoyoglu (GYO) reduction.  The same run
yields a join tree: when rule (b) deletes edge ``i`` because its current
content is contained in edge ``j``, we make ``j`` the parent of ``i``.

The join tree is the data structure behind every linear-time upper
bound in Section 3: Yannakakis (Theorem 3.1), counting (Theorem 3.8),
constant-delay enumeration (Theorem 3.17) and direct access
(Theorem 3.24) all walk it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree


@dataclass
class GYOResult:
    """Full trace of a GYO reduction run.

    ``parent`` maps a deleted edge index to the edge that absorbed it;
    surviving indices (empty content at fixpoint, or non-empty content
    when cyclic) appear in ``roots`` / ``stuck`` respectively.
    """

    acyclic: bool
    parent: Dict[int, int] = field(default_factory=dict)
    roots: List[int] = field(default_factory=list)
    removal_order: List[int] = field(default_factory=list)
    stuck_core: Dict[int, Set[str]] = field(default_factory=dict)


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction and report acyclicity plus the parent map.

    The empty edge is treated as contained in any other edge, so a
    disconnected acyclic hypergraph reduces to several empty root edges
    and the result is a join *forest* with one root per component.
    """
    content: Dict[int, Set[str]] = {
        i: set(edge) for i, edge in enumerate(hypergraph.edges)
    }
    alive: List[int] = sorted(content)
    parent: Dict[int, int] = {}
    removal_order: List[int] = []

    changed = True
    while changed:
        changed = False

        # Rule (a): delete vertices contained in at most one edge.
        counts: Dict[str, List[int]] = {}
        for i in alive:
            for v in content[i]:
                counts.setdefault(v, []).append(i)
        for v, owners in sorted(counts.items()):
            if len(owners) == 1:
                content[owners[0]].discard(v)
                changed = True

        # Rule (b): delete one edge contained in another, recording the
        # container as its join-tree parent.  One deletion per pass keeps
        # mutual containment (duplicate edges) from deleting both.
        for i in list(alive):
            target: Optional[int] = None
            for j in alive:
                if j != i and content[i] <= content[j]:
                    target = j
                    break
            if target is not None:
                alive.remove(i)
                parent[i] = target
                removal_order.append(i)
                changed = True
                break

    acyclic = all(not content[i] for i in alive)
    result = GYOResult(acyclic=acyclic, parent=parent)
    if acyclic:
        result.roots = list(alive)
        result.removal_order = removal_order
    else:
        result.stuck_core = {i: set(content[i]) for i in alive if content[i]}
    return result


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """Alpha-acyclicity via GYO (paper Section 2.1)."""
    return gyo_reduction(hypergraph).acyclic


def join_tree(hypergraph: Hypergraph) -> JoinTree:
    """A join forest for an acyclic hypergraph.

    Nodes are edge indices of ``hypergraph`` (hence atom indices of the
    originating query); raises :class:`ValueError` on cyclic input.
    """
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        raise ValueError(
            "hypergraph is cyclic; stuck core: "
            f"{sorted(map(sorted, result.stuck_core.values()))}"
        )
    bags: Dict[int, frozenset] = {
        i: hypergraph.edges[i] for i in range(len(hypergraph.edges))
    }
    return JoinTree(bags=bags, parent=dict(result.parent))


def cyclic_core(hypergraph: Hypergraph) -> Hypergraph:
    """The GYO-irreducible core of a cyclic hypergraph.

    Returns the hypergraph on the stuck edges' *remaining* contents; for
    acyclic inputs this is the empty hypergraph.  Theorem 3.6's witness
    search (``repro.hypergraph.structure``) starts from this core, since
    every hard substructure survives the reduction.
    """
    result = gyo_reduction(hypergraph)
    if result.acyclic:
        return Hypergraph((), ())
    vertices: Set[str] = set()
    for core_edge in result.stuck_core.values():
        vertices |= core_edge
    return Hypergraph(vertices, list(result.stuck_core.values()))
