"""Validated join trees (and forests).

A join tree of a hypergraph assigns one node per edge such that for
every vertex ``v``, the nodes whose edge contains ``v`` form a connected
subtree (the *running intersection* / coherence property).  That
property is exactly what makes the semijoin passes of the Yannakakis
algorithm sound, so :meth:`JoinTree.validate` is checked in tests for
every tree the GYO construction emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple


@dataclass
class JoinTree:
    """A join forest: ``bags`` per node plus a ``parent`` map.

    ``bags`` maps node id (atom/edge index) to its variable set; nodes
    missing from ``parent`` are roots.  The structure is a forest so
    that disconnected queries are handled uniformly (their evaluation is
    a cross product of per-tree results).
    """

    bags: Dict[int, FrozenSet[str]]
    parent: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for child, par in self.parent.items():
            if child not in self.bags or par not in self.bags:
                raise ValueError("parent map mentions unknown node ids")
        if self._has_cycle():
            raise ValueError("parent map contains a cycle")

    def _has_cycle(self) -> bool:
        for start in self.bags:
            seen = {start}
            node = start
            while node in self.parent:
                node = self.parent[node]
                if node in seen:
                    return True
                seen.add(node)
        return False

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def roots(self) -> List[int]:
        """Nodes without parents, one per tree of the forest."""
        return sorted(n for n in self.bags if n not in self.parent)

    def children(self, node: int) -> List[int]:
        """Children of ``node`` in ascending id order."""
        return sorted(c for c, p in self.parent.items() if p == node)

    def nodes(self) -> List[int]:
        return sorted(self.bags)

    def edges(self) -> List[Tuple[int, int]]:
        """(child, parent) pairs."""
        return sorted(self.parent.items())

    def bottom_up(self) -> Iterator[int]:
        """Nodes in an order where children precede parents.

        This is the order of the first Yannakakis semijoin pass.
        """
        order: List[int] = []
        visited: Set[int] = set()

        def visit(node: int) -> None:
            if node in visited:
                return
            visited.add(node)
            for child in self.children(node):
                visit(child)
            order.append(node)

        for root in self.roots:
            visit(root)
        return iter(order)

    def top_down(self) -> Iterator[int]:
        """Nodes in an order where parents precede children."""
        return reversed(list(self.bottom_up()))

    def subtree(self, node: int) -> Set[int]:
        """All nodes in the subtree rooted at ``node`` (inclusive)."""
        out: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.children(current))
        return out

    def separator(self, child: int) -> FrozenSet[str]:
        """Variables shared between ``child`` and its parent bag."""
        par = self.parent.get(child)
        if par is None:
            return frozenset()
        return self.bags[child] & self.bags[par]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the running intersection property; raise on violation.

        For every variable, the set of nodes whose bag contains it must
        induce a connected subgraph of the forest.
        """
        variables: Set[str] = set()
        for bag in self.bags.values():
            variables |= bag
        adjacency: Dict[int, Set[int]] = {n: set() for n in self.bags}
        for child, par in self.parent.items():
            adjacency[child].add(par)
            adjacency[par].add(child)
        for var in variables:
            holders = {n for n, bag in self.bags.items() if var in bag}
            start = next(iter(holders))
            reached = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in adjacency[node]:
                    if nbr in holders and nbr not in reached:
                        reached.add(nbr)
                        stack.append(nbr)
            if reached != holders:
                raise ValueError(
                    f"running intersection violated for variable {var!r}: "
                    f"nodes {sorted(holders)} are not connected"
                )

    def rooted_at(self, new_root: int) -> "JoinTree":
        """The same tree re-rooted at ``new_root`` (its component only
        is re-rooted; other components keep their roots).

        Re-rooting is used by the free-connex machinery, which wants the
        node covering the free variables on top.
        """
        if new_root not in self.bags:
            raise KeyError(f"unknown node {new_root}")
        adjacency: Dict[int, Set[int]] = {n: set() for n in self.bags}
        for child, par in self.parent.items():
            adjacency[child].add(par)
            adjacency[par].add(child)
        new_parent: Dict[int, int] = {}
        visited = {new_root}
        stack = [new_root]
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if nbr not in visited:
                    visited.add(nbr)
                    new_parent[nbr] = node
                    stack.append(nbr)
        # Preserve the other components untouched.
        for child, par in self.parent.items():
            if child not in visited and par not in visited:
                new_parent[child] = par
        return JoinTree(bags=dict(self.bags), parent=new_parent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = []
        for node in self.nodes():
            par = self.parent.get(node)
            bag = ",".join(sorted(self.bags[node]))
            lines.append(f"{node}{{{bag}}}->{par}")
        return "JoinTree(" + "; ".join(lines) + ")"
