"""Brault-Baron's structure theorem for cyclic hypergraphs (Theorem 3.6).

If ``H`` is not acyclic, there is a vertex set ``S`` such that either

- the induced hypergraph ``H[S]`` *is a cycle* (its maximal edges are
  exactly the edge set of a graph cycle on ``S``), or
- deleting contained edges from ``H[S]`` leaves a
  ``(|S|-1)``-uniform *hyperclique* on ``S`` (all ``|S|-1``-subsets).

This witness drives the lower-bound half of Theorem 3.7: a cycle
witness lets Proposition 3.3 embed triangle finding; a hyperclique
witness lets Theorem 3.5's construction embed hyperclique finding.

The search is exponential in the number of query variables, which is
fine: queries are fixed and small (the paper's bounds never depend on
the query size).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph

MAX_WITNESS_SEARCH_VERTICES = 16


@dataclass(frozen=True)
class BraultBaronWitness:
    """The hard substructure of a cyclic hypergraph.

    ``kind`` is ``"cycle"`` or ``"hyperclique"``; ``vertices`` is the
    set ``S``; for cycles, ``cycle_order`` lists ``S`` in cycle order.
    """

    kind: str
    vertices: FrozenSet[str]
    cycle_order: Tuple[str, ...] = ()

    @property
    def uniformity(self) -> int:
        """Edge size of the hyperclique witness (``|S| - 1``)."""
        if self.kind != "hyperclique":
            raise ValueError("uniformity only defined for hypercliques")
        return len(self.vertices) - 1


def induced_is_cycle(
    hypergraph: Hypergraph, subset: FrozenSet[str]
) -> Optional[Tuple[str, ...]]:
    """If ``H[S]`` is a (chordless, in the hypergraph sense) cycle,
    return the vertices in cycle order; else ``None``.

    ``H[S]`` is a cycle when its maximal edges are exactly the ``|S|``
    two-element edges of a graph cycle through all of ``S``.
    """
    if len(subset) < 3:
        return None
    induced = hypergraph.induced(subset).remove_contained_edges()
    maximal = set(induced.distinct_edges)
    if any(len(e) != 2 for e in maximal):
        return None
    if len(maximal) != len(subset):
        return None
    adjacency = {v: set() for v in subset}
    for edge in maximal:
        a, b = sorted(edge)
        adjacency[a].add(b)
        adjacency[b].add(a)
    if any(len(nbrs) != 2 for nbrs in adjacency.values()):
        return None
    # Walk the cycle and make sure it passes through every vertex.
    start = min(subset)
    order = [start]
    prev = None
    current = start
    while True:
        nxt = min(v for v in adjacency[current] if v != prev)
        if nxt == start:
            break
        order.append(nxt)
        prev, current = current, nxt
        if len(order) > len(subset):
            return None
    if len(order) != len(subset):
        return None
    return tuple(order)


def induced_is_near_hyperclique(
    hypergraph: Hypergraph, subset: FrozenSet[str]
) -> bool:
    """Does deleting contained edges from ``H[S]`` leave the complete
    ``(|S|-1)``-uniform hyperclique on ``S``?

    Per Theorem 3.6 the deletion step removes edges *completely
    contained in other edges*, so the surviving (maximal) edges must be
    exactly all ``(|S|-1)``-subsets of ``S``.
    """
    k = len(subset)
    if k < 3:
        return False
    induced = hypergraph.induced(subset).remove_contained_edges()
    maximal = set(induced.distinct_edges)
    wanted = {
        frozenset(combo) for combo in combinations(sorted(subset), k - 1)
    }
    return maximal == wanted


def find_hard_substructure(
    hypergraph: Hypergraph,
) -> Optional[BraultBaronWitness]:
    """Find a Theorem 3.6 witness in a cyclic hypergraph.

    Returns ``None`` for acyclic hypergraphs.  Prefers cycle witnesses
    (they allow the cheaper Proposition 3.3 reduction) and searches
    smaller sets first so the returned witness is minimal.
    """
    from repro.hypergraph.gyo import is_acyclic

    if is_acyclic(hypergraph):
        return None
    if len(hypergraph.vertices) > MAX_WITNESS_SEARCH_VERTICES:
        raise ValueError(
            "witness search is exponential and capped at "
            f"{MAX_WITNESS_SEARCH_VERTICES} vertices"
        )
    vertices = sorted(hypergraph.vertices)
    for size in range(3, len(vertices) + 1):
        for combo in combinations(vertices, size):
            subset = frozenset(combo)
            order = induced_is_cycle(hypergraph, subset)
            if order is not None:
                return BraultBaronWitness(
                    kind="cycle", vertices=subset, cycle_order=order
                )
            if induced_is_near_hyperclique(hypergraph, subset):
                return BraultBaronWitness(
                    kind="hyperclique", vertices=subset
                )
    # Theorem 3.6 guarantees a witness exists; reaching this line would
    # falsify it (or reveal a bug), so fail loudly rather than guess.
    raise AssertionError(
        "cyclic hypergraph without a Brault-Baron witness — this "
        "contradicts Theorem 3.6; please report"
    )
