"""Fractional edge covers, the AGM exponent, and independent sets.

The AGM bound (Atserias–Grohe–Marx, paper Section 2.1) says the result
of a join query is at most ``m^{ρ*}`` where ``ρ*`` is the optimal value
of the fractional edge cover LP:

    minimize   Σ_e x_e
    subject to Σ_{e ∋ v} x_e ≥ 1   for every vertex v,
               x_e ≥ 0.

``ρ*`` is also the exponent a worst-case-optimal join runs in.  For the
triangle query ρ* = 3/2 — the `m^{3/2}` of Section 3.1.1; for the
Loomis–Whitney query LW_k it is k/(k-1) — the `m^{1+1/(k-1)}` of
Example 3.4.

Also here: maximum independent sets (no edge contains two chosen
vertices) and minimum integral edge covers, equal for acyclic
hypergraphs ([39, Lemma 19], used by Theorem 3.26 and the star-size
computation).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.hypergraph.hypergraph import Hypergraph


def fractional_edge_cover(
    hypergraph: Hypergraph,
    subset: Optional[Iterable[str]] = None,
) -> Tuple[float, Dict[int, float]]:
    """Solve the fractional edge cover LP.

    Covers ``subset`` (default: all vertices that occur in some edge)
    using the hypergraph's edges.  Returns ``(value, weights)`` where
    ``weights`` maps edge indices to their LP weight.

    Raises :class:`ValueError` when some requested vertex lies in no
    edge (the LP is then infeasible).
    """
    to_cover = (
        frozenset(subset)
        if subset is not None
        else hypergraph.vertices - hypergraph.isolated_vertices
    )
    if not to_cover:
        return 0.0, {}
    edges = hypergraph.edges
    if not edges:
        raise ValueError("cannot cover vertices with no edges")
    for v in to_cover:
        if not any(v in e for e in edges):
            raise ValueError(f"vertex {v!r} occurs in no edge; LP infeasible")
    vertex_list = sorted(to_cover)
    # linprog solves min c·x s.t. A_ub x <= b_ub; coverage constraints
    # Σ_{e∋v} x_e >= 1 become -Σ x_e <= -1.
    a_ub = np.zeros((len(vertex_list), len(edges)))
    for i, v in enumerate(vertex_list):
        for j, e in enumerate(edges):
            if v in e:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(vertex_list))
    c = np.ones(len(edges))
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"edge cover LP failed: {result.message}")
    weights = {
        j: float(w) for j, w in enumerate(result.x) if w > 1e-12
    }
    return float(result.fun), weights


def agm_exponent(hypergraph: Hypergraph) -> float:
    """The AGM exponent ρ*: output (and WCOJ runtime) is Õ(m^{ρ*})."""
    value, _ = fractional_edge_cover(hypergraph)
    return value


def agm_bound(hypergraph: Hypergraph, m: int) -> float:
    """The numeric AGM output-size bound ``m^{ρ*}``."""
    if m < 0:
        raise ValueError("database size must be non-negative")
    if m == 0:
        return 0.0
    return float(m) ** agm_exponent(hypergraph)


def _is_independent(
    hypergraph: Hypergraph, chosen: Tuple[str, ...]
) -> bool:
    for a, b in combinations(chosen, 2):
        if any(a in e and b in e for e in hypergraph.edges):
            return False
    return True


def max_independent_set(
    hypergraph: Hypergraph, candidates: Optional[Iterable[str]] = None
) -> FrozenSet[str]:
    """A maximum independent set among ``candidates`` (default: all).

    Independence is w.r.t. the primal graph: no edge may contain two
    chosen vertices.  Exact branch-and-bound over the candidate set —
    exponential, but query hypergraphs are small by assumption.
    """
    pool = sorted(
        frozenset(candidates) if candidates is not None else hypergraph.vertices
    )
    adjacency = hypergraph.primal_graph()
    best: Tuple[str, ...] = ()

    def extend(chosen: List[str], rest: List[str]) -> None:
        nonlocal best
        if len(chosen) + len(rest) <= len(best):
            return
        if not rest:
            if len(chosen) > len(best):
                best = tuple(chosen)
            return
        head, *tail = rest
        # Branch 1: take head, dropping its neighbors.
        compatible = [v for v in tail if v not in adjacency[head]]
        extend(chosen + [head], compatible)
        # Branch 2: skip head.
        extend(chosen, tail)

    extend([], pool)
    return frozenset(best)


def integral_edge_cover_number(
    hypergraph: Hypergraph, subset: Optional[Iterable[str]] = None
) -> int:
    """Minimum number of edges covering ``subset`` (default: all).

    Exact search by branching on an uncovered vertex.  For acyclic
    hypergraphs this equals the maximum independent set size
    ([39, Lemma 19]); a property test checks that equality.
    """
    to_cover = (
        frozenset(subset)
        if subset is not None
        else hypergraph.vertices - hypergraph.isolated_vertices
    )
    if not to_cover:
        return 0
    edges = sorted(hypergraph.distinct_edges, key=lambda e: (-len(e), sorted(e)))
    for v in to_cover:
        if not any(v in e for e in edges):
            raise ValueError(f"vertex {v!r} occurs in no edge; no cover exists")
    best = len(edges) + 1

    def search(uncovered: FrozenSet[str], used: int) -> None:
        nonlocal best
        if used >= best:
            return
        if not uncovered:
            best = used
            return
        pivot = min(uncovered)
        for edge in edges:
            if pivot in edge:
                search(uncovered - edge, used + 1)

    search(to_cover, 0)
    return best
