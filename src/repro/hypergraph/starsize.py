"""Quantified star size (Durand–Mengel, paper Section 4.4 / Thm 4.6).

Intuitively, the quantified star size of a query measures the largest
star query ``q*_k`` (Section 3.2) embeddable into it: free variables
``x1..xk`` that all "see" one existential component but are pairwise
non-adjacent, so the component plays ``z``.  Theorem 4.6: a self-join
free acyclic query of quantified star size ``k`` cannot be counted in
time ``m^{k-ε}`` unless SETH-style SAT speedups exist.

Definition used here (following [39]): for free variables ``S``, look
at every connected component ``C`` of the hypergraph induced on the
existential variables ``V \\ S``; collect the free variables adjacent
to ``C`` (sharing an edge with a vertex of ``C``); the star size of
``C`` is the maximum size of an *independent set* (no edge of ``H``
contains two of them) among those free variables.  The quantified star
size is the maximum over components, and 1 when there are no
existential variables but ``S`` is non-empty.

For acyclic hypergraphs the maximum independent set equals the minimum
edge cover ([39, Lemma 19], also used for Theorem 3.26), so this is
polynomial for them; we nevertheless use exact search since queries are
small.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.widths import max_independent_set
from repro.query.cq import ConjunctiveQuery


def existential_components(
    hypergraph: Hypergraph, free: Iterable[str]
) -> List[FrozenSet[str]]:
    """Connected components of the hypergraph induced on ``V \\ S``."""
    free_set = frozenset(free)
    existential = hypergraph.vertices - free_set
    if not existential:
        return []
    return hypergraph.connected_components(existential)


def component_star_size(
    hypergraph: Hypergraph,
    free: Iterable[str],
    component: FrozenSet[str],
) -> int:
    """Star size contributed by one existential component.

    The maximum independent (pairwise non-adjacent in ``H``) set of free
    variables adjacent to the component.
    """
    free_set = frozenset(free)
    attached: Set[str] = set()
    for edge in hypergraph.edges:
        if edge & component:
            attached |= edge & free_set
    if not attached:
        return 0
    return len(max_independent_set(hypergraph, attached))


def quantified_star_size(query: ConjunctiveQuery) -> int:
    """The quantified star size of a query.

    Conventions: Boolean queries have star size 0; join queries
    (no existential variables) have star size min(1, #free vars); the
    star query q*_k has star size exactly ``k``.
    """
    hypergraph = query.hypergraph()
    free_set = query.free_variables
    if not free_set:
        return 0
    components = existential_components(hypergraph, free_set)
    if not components:
        return 1
    best = max(
        component_star_size(hypergraph, free_set, component)
        for component in components
    )
    return max(best, 1)
