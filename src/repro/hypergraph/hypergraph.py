"""The :class:`Hypergraph` type.

A hypergraph ``H = (V, E)`` in the paper's sense: ``V`` is a finite set
of vertices (query variables) and ``E`` a multiset of edges (atom
scopes).  We keep edges as an ordered tuple with possible duplicates so
that edge index ``i`` always corresponds to atom ``i`` of the query that
produced the hypergraph; structural predicates that want distinct edges
deduplicate explicitly.
"""

from __future__ import annotations

from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Vertex = str
Edge = FrozenSet[Vertex]


class Hypergraph:
    """A finite hypergraph with indexed (multi-)edges."""

    def __init__(
        self,
        vertices: Iterable[Vertex],
        edges: Iterable[Iterable[Vertex]],
    ) -> None:
        self.vertices: FrozenSet[Vertex] = frozenset(vertices)
        self.edges: Tuple[Edge, ...] = tuple(
            frozenset(e) for e in edges
        )
        for edge in self.edges:
            stray = edge - self.vertices
            if stray:
                raise ValueError(
                    f"edge {set(edge)} mentions unknown vertices {stray}"
                )
        covered: Set[Vertex] = set()
        for edge in self.edges:
            covered |= edge
        self._isolated = self.vertices - covered

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def distinct_edges(self) -> FrozenSet[Edge]:
        """The edge set with duplicates collapsed."""
        return frozenset(self.edges)

    @property
    def isolated_vertices(self) -> FrozenSet[Vertex]:
        """Vertices in no edge (cannot arise from queries, but allowed)."""
        return frozenset(self._isolated)

    def edges_containing(self, vertex: Vertex) -> List[int]:
        """Indices of the edges containing ``vertex``."""
        return [i for i, e in enumerate(self.edges) if vertex in e]

    def degree(self, vertex: Vertex) -> int:
        """Number of (distinct) edges containing ``vertex``."""
        return sum(1 for e in self.distinct_edges if vertex in e)

    def is_uniform(self, h: Optional[int] = None) -> bool:
        """Is every distinct edge of size ``h`` (inferred if omitted)?"""
        sizes = {len(e) for e in self.distinct_edges}
        if not sizes:
            return True
        if h is None:
            return len(sizes) == 1
        return sizes == {h}

    def rank(self) -> int:
        """Maximum edge size (0 for edgeless hypergraphs)."""
        return max((len(e) for e in self.edges), default=0)

    def is_graph(self) -> bool:
        """True when every edge has at most two vertices ('graphlike')."""
        return self.rank() <= 2

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def primal_graph(self) -> Dict[Vertex, Set[Vertex]]:
        """Adjacency of the primal (Gaifman) graph.

        Two vertices are adjacent when some edge contains both; this is
        the graph in which acyclic hypergraphs are chordal and conformal.
        """
        adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in self.vertices}
        for edge in self.edges:
            for a, b in combinations(edge, 2):
                adj[a].add(b)
                adj[b].add(a)
        return adj

    def induced(self, subset: Iterable[Vertex]) -> "Hypergraph":
        """The induced hypergraph ``H[S]``.

        Vertices restricted to ``S``; each edge becomes its intersection
        with ``S``; empty intersections are dropped (this matches the
        usage in Theorem 3.6).
        """
        sub = frozenset(subset)
        stray = sub - self.vertices
        if stray:
            raise ValueError(f"unknown vertices in subset: {stray}")
        new_edges = [e & sub for e in self.edges if e & sub]
        return Hypergraph(sub, new_edges)

    def with_extra_edge(self, edge: Iterable[Vertex]) -> "Hypergraph":
        """``H`` plus one more edge — the `H ∪ {S}` of free-connexness.

        Vertices of the new edge must already be vertices of ``H``.
        An empty extra edge is allowed (Boolean queries add no
        constraint) and returns an identical hypergraph.
        """
        extra = frozenset(edge)
        if not extra:
            return Hypergraph(self.vertices, self.edges)
        stray = extra - self.vertices
        if stray:
            raise ValueError(f"extra edge mentions unknown vertices {stray}")
        return Hypergraph(self.vertices, tuple(self.edges) + (extra,))

    def remove_contained_edges(self) -> "Hypergraph":
        """Drop edges strictly or duplicate-contained in another edge.

        This is the edge-deletion step of Theorem 3.6 ("deleting edges
        that are completely contained in other edges"); one copy of each
        maximal edge survives.
        """
        distinct = list(self.distinct_edges)
        maximal = [
            e
            for e in distinct
            if not any(e < f for f in distinct)
        ]
        return Hypergraph(self.vertices, maximal)

    def connected_components(
        self, subset: Optional[Iterable[Vertex]] = None
    ) -> List[FrozenSet[Vertex]]:
        """Connected components (of the induced subhypergraph on ``subset``).

        Two vertices are connected when linked by a chain of edges; used
        for the existential components of the star-size computation.
        """
        graph = self if subset is None else self.induced(subset)
        adjacency = graph.primal_graph()
        seen: Set[Vertex] = set()
        components: List[FrozenSet[Vertex]] = []
        for start in sorted(graph.vertices):
            if start in seen:
                continue
            stack = [start]
            component: Set[Vertex] = set()
            while stack:
                v = stack.pop()
                if v in component:
                    continue
                component.add(v)
                stack.extend(adjacency[v] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def is_connected(self) -> bool:
        """Single connected component (edgeless singletons count)."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self.vertices == other.vertices
            and sorted(self.edges, key=sorted) == sorted(other.edges, key=sorted)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        edges = ", ".join(
            "{" + ",".join(sorted(e)) + "}" for e in self.edges
        )
        return f"Hypergraph(|V|={len(self.vertices)}, E=[{edges}])"
