"""Disruptive trios (paper Section 3.4.1, after Lemma 3.23).

For a join query ``q`` and an order ``⪯`` on its variables, three
variables ``y1, y2, y3`` form a *disruptive trio* when:

- ``y1 ⪯ y3`` and ``y2 ⪯ y3`` (``y3`` comes last among the three),
- the pairs ``(y1, y3)`` and ``(y2, y3)`` each share an atom, and
- ``y1, y2`` share **no** atom.

A disruptive trio lets the hard query ``q̂*_2`` be embedded (the trio
plays x1, x2, z), so by Lemma 3.23 lexicographic direct access in the
order ``⪯`` needs superlinear preprocessing.  Theorem 3.24: a join
query admits linear-preprocessing/polylog-access lexicographic direct
access for ``⪯`` iff it is acyclic and has no disruptive trio for ``⪯``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.query.cq import ConjunctiveQuery


def _share_atom(query: ConjunctiveQuery, a: str, b: str) -> bool:
    return any(a in atom.scope and b in atom.scope for atom in query.atoms)


def find_disruptive_trio(
    query: ConjunctiveQuery, order: Sequence[str]
) -> Optional[Tuple[str, str, str]]:
    """The lexicographically first disruptive trio, or ``None``.

    ``order`` must list every variable of the query exactly once,
    earliest (most significant) first.  Returns ``(y1, y2, y3)`` with
    ``y3`` the late variable.
    """
    order = tuple(order)
    if set(order) != set(query.variables) or len(order) != len(
        set(order)
    ):
        raise ValueError(
            "order must be a permutation of the query's variables"
        )
    position = {v: i for i, v in enumerate(order)}
    variables = sorted(query.variables, key=position.get)
    for k, y3 in enumerate(variables):
        earlier = variables[:k]
        neighbors = [y for y in earlier if _share_atom(query, y, y3)]
        for i, y1 in enumerate(neighbors):
            for y2 in neighbors[i + 1 :]:
                if not _share_atom(query, y1, y2):
                    return (y1, y2, y3)
    return None


def has_disruptive_trio(
    query: ConjunctiveQuery, order: Sequence[str]
) -> bool:
    """Does the query have a disruptive trio w.r.t. ``order``?"""
    return find_disruptive_trio(query, order) is not None


def trio_free_order(query: ConjunctiveQuery) -> Optional[Tuple[str, ...]]:
    """Some variable order without a disruptive trio, if one exists.

    Greedy search: repeatedly append a variable whose earlier neighbors
    are pairwise adjacent (mirroring the connection between trio-free
    orders and perfect elimination orders of the primal graph, reversed).
    Falls back to exhaustive search for small queries when the greedy
    pass fails, and returns ``None`` when no order works.
    """
    from itertools import permutations

    variables = sorted(query.variables)
    chosen: list = []
    remaining = set(variables)
    while remaining:
        placed = False
        for v in sorted(remaining):
            neighbors = [u for u in chosen if _share_atom(query, u, v)]
            ok = all(
                _share_atom(query, a, b)
                for i, a in enumerate(neighbors)
                for b in neighbors[i + 1 :]
            )
            if ok:
                chosen.append(v)
                remaining.discard(v)
                placed = True
                break
        if not placed:
            break
    if not remaining:
        return tuple(chosen)
    if len(variables) <= 8:
        for perm in permutations(variables):
            if find_disruptive_trio(query, perm) is None:
                return perm
    return None
