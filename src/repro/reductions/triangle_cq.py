"""Proposition 3.3: triangle finding embeds into every cyclic
graphlike Boolean query.

Given a cyclic, self-join free Boolean conjunctive query whose atoms
all have arity ≤ 2, and a graph G = (V, E), the reduction constructs a
database D of size O(|E| + |V|) with ``D ⊨ q  iff  G has a triangle``:

- fix an induced cycle of the query (it exists by cyclicity; we take
  the Brault-Baron witness);
- three atoms on the cycle receive the (symmetrized) edge relation E,
  the remaining cycle atoms the equality relation on V — so the cycle
  contracts to a triangle;
- atoms touching the cycle in one variable pin the other variable to a
  dummy value d via V × {d}; atoms disjoint from the cycle get {(d,d)}.

Hence a linear-time evaluator for q would give a linear-time triangle
detector, contradicting the Triangle Hypothesis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.structure import find_hard_substructure
from repro.query.cq import ConjunctiveQuery

DUMMY = ("dummy", 0)


class TriangleToCyclicCQ:
    """The Proposition 3.3 reduction for one fixed target query."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        if query.arity_bound() > 2:
            raise ValueError(
                "Proposition 3.3 applies to arity-2 (graphlike) queries"
            )
        if not query.is_self_join_free():
            raise ValueError("Proposition 3.3 requires self-join freeness")
        hypergraph = query.hypergraph()
        witness = find_hard_substructure(hypergraph)
        if witness is None:
            raise ValueError(
                f"query {query.name} is acyclic; nothing to embed into"
            )
        if witness.kind != "cycle":
            raise AssertionError(
                "arity-2 hypergraphs always yield cycle witnesses"
            )  # pragma: no cover - graphlike queries cannot reach this
        self.query = query
        self.cycle: Tuple[str, ...] = witness.cycle_order
        cycle_pairs = set()
        length = len(self.cycle)
        for i in range(length):
            cycle_pairs.add(
                frozenset((self.cycle[i], self.cycle[(i + 1) % length]))
            )
        # Pick three distinct cycle *edges* to carry E; equality
        # contracts the rest, so any three work — take the first three
        # in cycle order for determinism.
        self.edge_atoms: Set[int] = set()
        carriers = [
            frozenset((self.cycle[i], self.cycle[(i + 1) % length]))
            for i in range(3)
        ]
        carrier_set = set(carriers)
        self._atom_roles: Dict[int, str] = {}
        for index, atom in enumerate(query.atoms):
            scope = atom.scope
            on_cycle = scope & set(self.cycle)
            if len(scope) == 2 and scope in cycle_pairs:
                role = "edge" if scope in carrier_set else "equality"
            elif len(on_cycle) == len(scope):  # unary atom on the cycle
                role = "cycle-unary"
            elif on_cycle:
                role = "half-dummy"
            else:
                role = "dummy"
            self._atom_roles[index] = role

    # ------------------------------------------------------------------
    def build_database(self, graph: nx.Graph) -> Database:
        """The database D with D ⊨ q iff the graph has a triangle."""
        vertices = list(graph.nodes())
        edges: Set[Tuple] = set()
        for u, v in graph.edges():
            if u == v:
                continue
            edges.add((u, v))
            edges.add((v, u))
        equality = {(v, v) for v in vertices}
        db = Database()
        cycle_set = set(self.cycle)
        for index, atom in enumerate(self.query.atoms):
            role = self._atom_roles[index]
            rel = Relation(atom.relation, atom.arity)
            if role == "edge":
                rel.add_all(edges)
            elif role == "equality":
                rel.add_all(equality)
            elif role == "cycle-unary":
                # All positions carry the same cycle variable (e.g. the
                # repeated-variable atom R(x, x)): the diagonal over V.
                rel.add_all(
                    tuple(v for _ in atom.variables) for v in vertices
                )
            elif role == "half-dummy":
                rows = []
                for v in vertices:
                    rows.append(
                        tuple(
                            v if var in cycle_set else DUMMY
                            for var in atom.variables
                        )
                    )
                rel.add_all(rows)
            else:  # dummy
                rel.add((DUMMY,) * atom.arity)
            db.add_relation(rel)
        return db

    def decide_triangle(self, graph: nx.Graph, evaluator=None) -> bool:
        """Decide triangle-freeness through the target query.

        ``evaluator(query, db) -> bool`` defaults to the generic
        worst-case-optimal Boolean evaluator.
        """
        if evaluator is None:
            from repro.joins.generic_join import generic_join_boolean

            evaluator = generic_join_boolean
        return evaluator(self.query, self.build_database(graph))


def database_size_blowup(
    query: ConjunctiveQuery, graph: nx.Graph
) -> Tuple[int, int]:
    """(graph size, database size): the reduction's linear accounting.

    Returns (|V| + |E|, size(D)); the proof needs size(D) = O(|V|+|E|)
    per atom, which the benchmark asserts.
    """
    reduction = TriangleToCyclicCQ(query)
    db = reduction.build_database(graph)
    return (
        graph.number_of_nodes() + graph.number_of_edges(),
        db.size(),
    )
