"""Lemma 3.25: 3SUM embeds into sum-ordered direct access.

Let q be a self-join free join query with two variables x, y that share
no atom.  From 3SUM lists A, B, C build a database of size O(n): the
variable x ranges over (tagged) values of A, y over values of B, every
other variable is pinned to a padding constant; the weight function is
w(a-tag) = a, w(b-tag) = b, w(pad) = 0.  Answer weights are then
exactly {a + b}, so one binary search per c ∈ C (O(log n) accesses,
via :meth:`SumOrderDirectAccess.has_weight`) decides 3SUM.  Direct
access with preprocessing Õ(m^{2-ε}) and access Õ(m^{1-ε}) would
therefore break the 3SUM Hypothesis.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query

PAD = ("pad", 0)


def default_split_query() -> ConjunctiveQuery:
    """The smallest query satisfying the lemma's hypothesis.

    ``q(x, y, u) :- R(x, u), S(y, u)``: x and y share no atom.  This is
    q̂*_2 up to renaming — the same query family that is hard for
    lexicographic orders (Lemma 3.23).
    """
    return parse_query("q(x, y, u) :- R(x, u), S(y, u)")


def find_split_variables(
    query: ConjunctiveQuery,
) -> Optional[Tuple[str, str]]:
    """Two variables sharing no atom, or None (the lemma's premise)."""
    from repro.direct_access.sum_order import uncovered_pair

    return uncovered_pair(query)


class ThreeSumToSumOrderAccess:
    """The Lemma 3.25 reduction for one fixed target query."""

    def __init__(self, query: Optional[ConjunctiveQuery] = None) -> None:
        self.query = query if query is not None else default_split_query()
        if not self.query.is_join_query():
            raise ValueError("the lemma concerns join queries")
        if not self.query.is_self_join_free():
            raise ValueError("the lemma requires self-join freeness")
        split = find_split_variables(self.query)
        if split is None:
            raise ValueError(
                "every pair of variables shares an atom; the lemma "
                "does not apply (and Theorem 3.26's upper bound does)"
            )
        self.x_var, self.y_var = split

    def build_instance(
        self, a_values: Sequence[int], b_values: Sequence[int]
    ) -> Tuple[Database, Dict[object, float]]:
        """Database + weight map encoding the 3SUM lists.

        Domain values are tagged so A-values, B-values and the padding
        constant never collide; weights carry the integer values.
        """
        a_domain = [("a", value) for value in a_values]
        b_domain = [("b", value) for value in b_values]
        weights: Dict[object, float] = {PAD: 0.0}
        for tag in a_domain:
            weights[tag] = float(tag[1])
        for tag in b_domain:
            weights[tag] = float(tag[1])

        db = Database()
        for atom in self.query.atoms:
            rel = Relation(atom.relation, atom.arity)
            if self.x_var in atom.scope:
                for tag in a_domain:
                    rel.add(
                        tuple(
                            tag if v == self.x_var else PAD
                            for v in atom.variables
                        )
                    )
            elif self.y_var in atom.scope:
                for tag in b_domain:
                    rel.add(
                        tuple(
                            tag if v == self.y_var else PAD
                            for v in atom.variables
                        )
                    )
            else:
                rel.add((PAD,) * atom.arity)
            db.add_relation(rel)
        return db, weights

    def solve(
        self,
        a_values: Sequence[int],
        b_values: Sequence[int],
        c_values: Sequence[int],
        access_factory: Optional[Callable] = None,
    ) -> bool:
        """Decide 3SUM through sum-order direct access.

        ``access_factory(query, db, weights)`` must return an object
        with ``has_weight(target) -> bool``; defaults to
        :class:`~repro.direct_access.sum_order.SumOrderDirectAccess`
        with ``strict=False`` (the target query has no covering atom,
        so the honest implementation materializes — the lemma's point).
        """
        if access_factory is None:
            from repro.direct_access.sum_order import SumOrderDirectAccess

            def access_factory(query, db, weights):
                return SumOrderDirectAccess(
                    query, db, weights, strict=False
                )

        db, weights = self.build_instance(a_values, b_values)
        accessor = access_factory(self.query, db, weights)
        return any(
            accessor.has_weight(float(c)) for c in set(c_values)
        )
