"""Clique embeddings (paper Section 4.2, Example 4.2/4.3, Figure 1).

A clique embedding ψ of K_ℓ into a query hypergraph H maps every
clique vertex x to a *connected* non-empty set ψ(x) of query variables
(property 1) such that every pair x ≠ y either overlaps
(ψ(x) ∩ ψ(y) ≠ ∅) or *touches* a common atom (some edge e intersects
both) (property 2).

From ψ and a (weighted) graph G one builds a database in which every
answer of the query corresponds to an ℓ-clique of G: a variable v
carries one G-vertex for every clique vertex x with v ∈ ψ(x); atom
relations enforce (a) consistency — variables sharing a clique vertex
agree on its G-vertex — and (b) adjacency for every pair of clique
vertices touching the atom.  The database has O(n^{d(e)}) tuples per
atom, where the *edge depth* d(e) counts the clique vertices touching
``e``; so an Õ(m^{ℓ/max_e d(e) - ε}) evaluation/aggregation algorithm
for the query would beat n^ℓ for the clique problem.  The ratio
ℓ / max-depth is (a lower bound on) the query's clique embedding power
of [41].

With the tropical semiring and edge weights, aggregating the query
solves Min-Weight-ℓ-Clique (Example 4.3): every K_ℓ edge is charged to
exactly one responsible atom, whose tuples carry the corresponding
G-edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.catalog import cycle_query
from repro.query.cq import ConjunctiveQuery
from repro.semiring.faq import aggregate_generic
from repro.semiring.semirings import MIN_PLUS

EdgeWeights = Mapping[FrozenSet, float]


@dataclass(frozen=True)
class CliqueEmbedding:
    """ψ: vertices of K_ℓ → connected variable sets of a query."""

    query: ConjunctiveQuery
    psi: Tuple[FrozenSet[str], ...]  # psi[i] = ψ(x_{i+1})

    @property
    def clique_size(self) -> int:
        return len(self.psi)

    def validate(self) -> None:
        """Check properties (1) and (2) of Section 4.2."""
        hypergraph = self.query.hypergraph()
        for i, block in enumerate(self.psi):
            if not block:
                raise ValueError(f"ψ(x{i + 1}) is empty")
            stray = block - hypergraph.vertices
            if stray:
                raise ValueError(
                    f"ψ(x{i + 1}) mentions unknown variables {stray}"
                )
            induced = hypergraph.induced(block)
            if not induced.is_connected():
                raise ValueError(
                    f"ψ(x{i + 1}) = {sorted(block)} is not connected"
                )
        for i, j in combinations(range(len(self.psi)), 2):
            if self.psi[i] & self.psi[j]:
                continue
            touches = any(
                edge & self.psi[i] and edge & self.psi[j]
                for edge in hypergraph.edges
            )
            if not touches:
                raise ValueError(
                    f"pair (x{i + 1}, x{j + 1}) neither overlaps nor "
                    "touches a common atom (property 2 violated)"
                )

    # ------------------------------------------------------------------
    # accounting (the three quantities the paper lists)
    # ------------------------------------------------------------------
    def touching(self, edge: FrozenSet[str]) -> List[int]:
        """Indices of clique vertices whose ψ-set intersects the edge."""
        return [
            i for i, block in enumerate(self.psi) if block & edge
        ]

    def edge_depths(self) -> Dict[int, int]:
        """d(e) per atom index: clique vertices mapped into the atom."""
        return {
            index: len(self.touching(atom.scope))
            for index, atom in enumerate(self.query.atoms)
        }

    def max_edge_depth(self) -> int:
        return max(self.edge_depths().values())

    def power_lower_bound(self) -> float:
        """ℓ / max_e d(e): the exponent this embedding certifies.

        An Õ(m^{p - ε}) algorithm for the query, p = ℓ/max-depth,
        would solve the ℓ-clique problem in Õ(n^{ℓ - ε·max_depth}).
        """
        return self.clique_size / self.max_edge_depth()

    # ------------------------------------------------------------------
    # database construction
    # ------------------------------------------------------------------
    def build_database(
        self,
        graph: nx.Graph,
        weights: Optional[EdgeWeights] = None,
    ):
        """The clique-checking database (and per-atom tuple weights).

        Returns ``(db, weight_fn)`` where ``weight_fn(atom_index, row)``
        gives the tropical weight of a frame row (0 when ``weights`` is
        None).  Each K_ℓ edge is charged to the first atom touching
        both endpoints, so answer weights are exactly clique weights.
        """
        vertices = sorted(graph.nodes(), key=repr)
        responsible: Dict[int, List[Tuple[int, int]]] = {}
        for i, j in combinations(range(self.clique_size), 2):
            for index, atom in enumerate(self.query.atoms):
                if atom.scope & self.psi[i] and atom.scope & self.psi[j]:
                    responsible.setdefault(index, []).append((i, j))
                    break
            else:  # pragma: no cover - validate() prevents this
                raise AssertionError("unchecked clique pair")

        db = Database()
        weight_tables: Dict[int, Dict[Tuple, float]] = {}
        for index, atom in enumerate(self.query.atoms):
            scope_vars = list(dict.fromkeys(atom.variables))
            touch = self.touching(atom.scope)
            rel = Relation(atom.relation, atom.arity)
            table: Dict[Tuple, float] = {}
            for choice in product(vertices, repeat=len(touch)):
                assignment = dict(zip(touch, choice))
                ok = True
                for a_pos in range(len(touch)):
                    for b_pos in range(a_pos + 1, len(touch)):
                        u = assignment[touch[a_pos]]
                        v = assignment[touch[b_pos]]
                        if u == v or not graph.has_edge(u, v):
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    continue
                # The value of variable v is the tuple of coordinates
                # for the clique vertices v represents.
                row = tuple(
                    self._variable_value(var, assignment)
                    for var in atom.variables
                )
                rel.add(row)
                if weights is not None:
                    charged = 0.0
                    for (i, j) in responsible.get(index, ()):
                        charged += weights[
                            frozenset((assignment[i], assignment[j]))
                        ]
                    key = tuple(
                        self._variable_value(var, assignment)
                        for var in scope_vars
                    )
                    table[key] = charged
            db.add_relation(rel)
            weight_tables[index] = table

        def weight_fn(atom_index: int, frame_row: Tuple) -> float:
            if weights is None:
                return 0.0
            return weight_tables[atom_index].get(frame_row, 0.0)

        return db, weight_fn

    def _variable_value(
        self, variable: str, assignment: Dict[int, object]
    ) -> Tuple:
        """A variable's domain value: coordinates of the clique
        vertices it represents, in clique-vertex order."""
        carried = [
            i
            for i, block in enumerate(self.psi)
            if variable in block and i in assignment
        ]
        return tuple((i, assignment[i]) for i in carried)

    # ------------------------------------------------------------------
    # end-to-end solvers
    # ------------------------------------------------------------------
    def has_clique(self, graph: nx.Graph, evaluator=None) -> bool:
        """Is there an ℓ-clique, decided through the query?"""
        if evaluator is None:
            from repro.joins.generic_join import generic_join_boolean

            evaluator = generic_join_boolean
        db, _ = self.build_database(graph)
        return evaluator(self.query.as_boolean(), db)

    def min_weight_clique(
        self, graph: nx.Graph, weights: EdgeWeights
    ) -> float:
        """Min-Weight-ℓ-Clique by tropical aggregation (Example 4.3).

        Returns ``math.inf`` when no ℓ-clique exists.
        """
        db, weight_fn = self.build_database(graph, weights)
        query = self.query.as_join_query()
        return aggregate_generic(query, db, MIN_PLUS, weight_fn)


def example_5cycle_embedding() -> CliqueEmbedding:
    """Example 4.2: K5 into the 5-cycle query, each ψ(x_i) a 3-arc."""
    query = cycle_query(5)
    variables = [f"v{i}" for i in range(1, 6)]
    psi = []
    for i in range(5):
        block = frozenset(
            variables[(i + offset) % 5] for offset in range(3)
        )
        psi.append(block)
    embedding = CliqueEmbedding(query=query, psi=tuple(psi))
    embedding.validate()
    return embedding


def figure1_ascii() -> str:
    """Regenerate Figure 1 (the Example 4.2 embedding) as ASCII art."""
    embedding = example_5cycle_embedding()
    lines = [
        "Figure 1: embedding of K5 into the 5-cycle query q°5.",
        "Each node vi lists the K5 vertices mapped onto it.",
        "",
    ]
    members: Dict[str, List[str]] = {f"v{i}": [] for i in range(1, 6)}
    for index, block in enumerate(embedding.psi, start=1):
        for variable in sorted(block):
            members[variable].append(f"x{index}")
    layout = [
        "            v1 : {v1}",
        "           /          \\",
        "  v5 : {v5}            v2 : {v2}",
        "      |                   |",
        "  v4 : {v4} ---------- v3 : {v3}",
    ]
    formatted = {
        key: ",".join(value) for key, value in members.items()
    }
    for template in layout:
        lines.append(
            template.format(
                v1=formatted["v1"],
                v2=formatted["v2"],
                v3=formatted["v3"],
                v4=formatted["v4"],
                v5=formatted["v5"],
            )
        )
    return "\n".join(lines)
