"""Theorem 4.1 (Nešetřil–Poljak): k-clique via triangle detection.

Split k = r1 + r2 + r3 with near-equal parts.  Build a tripartite
triangle instance whose side-j vertices are the r_j-cliques of G, with
two cliques adjacent iff they are disjoint and their union is again a
clique.  Triangles across the three sides are exactly the k-cliques of
G, so matrix-multiplication-based triangle detection gives the
Õ(n^{ω·k/3}) bound — the reason plain k-Clique is a poor source for
tight lower bounds and the weighted variants (Hypotheses 7/8) exist.

The tripartite instance is produced directly as a q△ database, so the
detection step is literally Theorem 3.2's algorithm.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.joins.triangle import triangle_boolean_ayz


def split_k(k: int) -> Tuple[int, int, int]:
    """k as three near-equal positive parts (r1 ≤ r2 ≤ r3)."""
    if k < 3:
        raise ValueError("the reduction needs k >= 3")
    r1 = k // 3
    r2 = (k - r1) // 2
    r3 = k - r1 - r2
    return (r1, r2, r3)


def _cliques_of_size(graph: nx.Graph, size: int) -> List[frozenset]:
    """All cliques with exactly ``size`` vertices (sorted, exhaustive)."""
    adjacency = {v: set(graph.neighbors(v)) - {v} for v in graph.nodes()}
    nodes = sorted(graph.nodes(), key=repr)
    out: List[frozenset] = []

    def extend(clique: List, candidates: List) -> None:
        if len(clique) == size:
            out.append(frozenset(clique))
            return
        for index, v in enumerate(candidates):
            rest = [
                u for u in candidates[index + 1 :] if u in adjacency[v]
            ]
            if len(clique) + 1 + len(rest) >= size:
                extend(clique + [v], rest)

    extend([], nodes)
    return out


def _joinable(
    graph: nx.Graph, left: frozenset, right: frozenset
) -> bool:
    """Disjoint and union is a clique (cross edges all present)."""
    if left & right:
        return False
    return all(
        graph.has_edge(u, v) for u in left for v in right
    )


def build_triangle_database(graph: nx.Graph, k: int) -> Database:
    """The tripartite q△ database whose triangles are G's k-cliques."""
    r1, r2, r3 = split_k(k)
    sides = [
        [("s1", c) for c in _cliques_of_size(graph, r1)],
        [("s2", c) for c in _cliques_of_size(graph, r2)],
        [("s3", c) for c in _cliques_of_size(graph, r3)],
    ]

    def edge_relation(name: str, left, right) -> Relation:
        rel = Relation(name, 2)
        for tag_l, clique_l in left:
            for tag_r, clique_r in right:
                if _joinable(graph, clique_l, clique_r):
                    rel.add(((tag_l, clique_l), (tag_r, clique_r)))
        return rel

    db = Database()
    db.add_relation(edge_relation("R1", sides[0], sides[1]))
    db.add_relation(edge_relation("R2", sides[1], sides[2]))
    db.add_relation(edge_relation("R3", sides[2], sides[0]))
    return db


def has_k_clique_np(
    graph: nx.Graph,
    k: int,
    backend: str = "numpy",
    omega: float = 3.0,
) -> bool:
    """Theorem 4.1's algorithm end to end.

    Builds the clique-graph triangle instance and runs the AYZ triangle
    algorithm of Theorem 3.2 on it.
    """
    db = build_triangle_database(graph, k)
    if any(db[name].is_empty() for name in ("R1", "R2", "R3")):
        return False
    return triangle_boolean_ayz(db, backend=backend, omega=omega)
