"""Lemmas 3.20, 3.21, 3.23: testing, direct access, and triangles.

Lemma 3.21: a testing oracle for q*_2 with Õ(m) preprocessing and
Õ(1) per test would detect triangles in Õ(m): put R := E (symmetrized)
and test, for every edge (a, b), whether (a, b) ∈ q*_2(D) — that holds
iff a and b have a common neighbour, i.e. iff the edge closes a
triangle.

Lemma 3.23 chains this through Lemma 3.20: lexicographic direct access
for q̂*_2 under the order x1 > x2 > z yields (by binary search over the
leading prefix) a tester for q*_2 — so that direct access task needs
superlinear preprocessing too.  Both pipelines are runnable here.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.catalog import star_query, star_query_full
from repro.query.cq import ConjunctiveQuery


def star_database_from_graph(graph: nx.Graph) -> Database:
    """R := symmetrized edge set, the database of both lemmas."""
    pairs = set()
    for u, v in graph.edges():
        if u == v:
            continue
        pairs.add((u, v))
        pairs.add((v, u))
    db = Database()
    db.add_relation(Relation("R", 2, pairs))
    return db


def detect_triangle_via_testing(
    graph: nx.Graph,
    oracle_factory: Optional[Callable] = None,
) -> bool:
    """Lemma 3.21's algorithm: one test per edge.

    ``oracle_factory(query, db)`` must return an object with a
    ``test(tuple) -> bool`` method; defaults to
    :class:`repro.direct_access.testing.TestingOracle` (which, q*_2
    not being free-connex, takes its superlinear hash path — the
    lemma's point is that no linear-preprocessing path can exist).
    """
    if oracle_factory is None:
        from repro.direct_access.testing import TestingOracle

        oracle_factory = TestingOracle
    query = star_query(2)
    db = star_database_from_graph(graph)
    oracle = oracle_factory(query, db)
    for u, v in graph.edges():
        if u == v:
            continue
        if oracle.test((u, v)):
            return True
    return False


def detect_triangle_via_direct_access(
    graph: nx.Graph,
    access_factory: Optional[Callable] = None,
) -> bool:
    """Lemma 3.23's pipeline: direct access on q̂*_2 (order x1 > x2 > z)
    → testing for q*_2 (Lemma 3.20 binary search) → triangle detection.

    ``access_factory(query, db, order)`` must return an object with
    ``access(i)`` and ``__len__``; defaults to
    :class:`repro.direct_access.lex.LexDirectAccess` with
    ``strict=False`` (the order has a disruptive trio, so the honest
    implementation must fall back to superlinear preprocessing).
    """
    if access_factory is None:
        from repro.direct_access.lex import LexDirectAccess

        def access_factory(query, db, order):
            return LexDirectAccess(query, db, order=order, strict=False)

    query = star_query_full(2)  # q̂*_2(x1, x2, z), self-joins on R
    db = star_database_from_graph(graph)
    accessor = access_factory(query, db, ("x1", "x2", "z"))
    total = len(accessor)

    def prefix_exists(a, b) -> bool:
        """Binary search for a block with (x1, x2) = (a, b) — Lemma 3.20."""
        low, high = 0, total - 1
        while low <= high:
            mid = (low + high) // 2
            x1, x2, _z = accessor.access(mid)
            if (x1, x2) == (a, b):
                return True
            if (x1, x2) < (a, b):
                low = mid + 1
            else:
                high = mid - 1
        return False

    for u, v in graph.edges():
        if u == v:
            continue
        if prefix_exists(u, v):
            return True
    return False
