"""Lemma 3.9: k'-Dominating-Set embeds into counting star queries.

For the star query q*_k and a DS budget k' divisible by k (block size
b = k'/k), the proof builds, from a graph G = (V, E), the relation

    R := {(u⃗, v) : v ∈ V, u⃗ ∈ V^b, ∀i: u_i·v ∉ E and u_i ≠ v}

of arity b + 1, i.e. "v is *not* dominated by any vertex of the
block".  An answer of the (blocked) star query is a choice of k blocks
together with an existential witness v that none of the k'·chosen
vertices dominates — so the answers are exactly the non-dominating
choices, and

    G has a dominating set of size ≤ k'  ⟺  count < n^{k'}.

|R| ≤ n^{b+1}, so counting q*_k in O(m^{k-ε}) would put k'-DS in
O(n^{k'-ε'}), contradicting SETH via Theorem 3.10.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery


def blocked_star_query(k: int, block: int) -> ConjunctiveQuery:
    """q*_k with arity-(block+1) atoms: R(x_{i,1},...,x_{i,b}, z).

    ``block = 1`` recovers the plain star query q*_k (up to variable
    naming).  All atoms share the symbol R — the self-join form the
    lemma uses.
    """
    if k < 1 or block < 1:
        raise ValueError("k and block must be positive")
    head: List[str] = []
    atoms = []
    for i in range(1, k + 1):
        block_vars = [f"x{i}_{j}" for j in range(1, block + 1)]
        head.extend(block_vars)
        atoms.append(Atom("R", tuple(block_vars) + ("z",)))
    return ConjunctiveQuery(tuple(head), tuple(atoms), name=f"q_star{k}b{block}")


class DominatingSetToStarCounting:
    """The Lemma 3.9 reduction: decide k'-DS with a star-count oracle."""

    def __init__(self, k: int, k_prime: int) -> None:
        if k_prime % k != 0:
            raise ValueError("k' must be divisible by k")
        self.k = k
        self.k_prime = k_prime
        self.block = k_prime // k
        self.query = blocked_star_query(k, self.block)

    def build_database(self, graph: nx.Graph) -> Database:
        """The 'not dominated by this block' relation R."""
        from itertools import product

        vertices = sorted(graph.nodes(), key=repr)
        non_dominating: List[Tuple] = []
        closed_neighborhoods = {
            v: {v} | set(graph.neighbors(v)) for v in vertices
        }
        for v in vertices:
            forbidden = closed_neighborhoods[v]
            allowed = [u for u in vertices if u not in forbidden]
            for block_choice in product(allowed, repeat=self.block):
                non_dominating.append(block_choice + (v,))
        db = Database()
        db.add_relation(
            Relation("R", self.block + 1, non_dominating)
        )
        return db

    def has_dominating_set(
        self, graph: nx.Graph, count_oracle=None
    ) -> bool:
        """G has a dominating set of size ≤ k', via answer counting.

        ``count_oracle(query, db) -> int`` defaults to the dispatching
        counter (which, the star query being non-free-connex, takes the
        superlinear brute path — exactly the paper's point).
        """
        if count_oracle is None:
            from repro.counting import count_answers

            count_oracle = count_answers
        db = self.build_database(graph)
        count = count_oracle(self.query, db)
        n = graph.number_of_nodes()
        total_choices = n**self.k_prime
        if count > total_choices:  # pragma: no cover - oracle bug guard
            raise ArithmeticError(
                "oracle counted more answers than possible choices"
            )
        return count < total_choices
