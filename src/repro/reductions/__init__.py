"""The paper's fine-grained reductions, executable end to end.

Each module implements one construction from the paper, with the
instance-size accounting its proof performs:

======================================  =====================================
:mod:`~repro.reductions.triangle_cq`    Prop 3.3 — triangle → cyclic CQ
:mod:`~repro.reductions.hyperclique_lw` Thm 3.5 — hyperclique → LW query
:mod:`~repro.reductions.dominating_set_star`  Lemma 3.9 — k'-DS → #star
:mod:`~repro.reductions.bmm_star`       Thm 3.15 — sparse BMM → star enum
:mod:`~repro.reductions.triangle_testing`  Lemmas 3.20/3.21/3.23
:mod:`~repro.reductions.threesum_sum_order`  Lemma 3.25 — 3SUM → sum DA
:mod:`~repro.reductions.nesetril_poljak`  Thm 4.1 — k-clique → triangle
:mod:`~repro.reductions.clique_embedding`  Sec 4.2 — clique embeddings
:mod:`~repro.reductions.hypotheses`     Hypotheses 1–8 as data
======================================  =====================================
"""

from repro.reductions.bmm_star import bmm_via_enumeration, build_star_database
from repro.reductions.clique_embedding import (
    CliqueEmbedding,
    example_5cycle_embedding,
    figure1_ascii,
)
from repro.reductions.embedding_search import (
    best_embedding,
    embedding_power_lower_bound,
    iter_embeddings,
)
from repro.reductions.dominating_set_star import (
    DominatingSetToStarCounting,
    blocked_star_query,
)
from repro.reductions.hyperclique_lw import (
    HypercliqueToLoomisWhitney,
    permutation_relation,
)
from repro.reductions.hypotheses import ALL_HYPOTHESES, Hypothesis
from repro.reductions.nesetril_poljak import (
    build_triangle_database,
    has_k_clique_np,
    split_k,
)
from repro.reductions.threesum_sum_order import ThreeSumToSumOrderAccess
from repro.reductions.triangle_cq import TriangleToCyclicCQ
from repro.reductions.triangle_testing import (
    detect_triangle_via_direct_access,
    detect_triangle_via_testing,
    star_database_from_graph,
)

__all__ = [
    "ALL_HYPOTHESES",
    "CliqueEmbedding",
    "DominatingSetToStarCounting",
    "Hypothesis",
    "HypercliqueToLoomisWhitney",
    "ThreeSumToSumOrderAccess",
    "TriangleToCyclicCQ",
    "best_embedding",
    "blocked_star_query",
    "bmm_via_enumeration",
    "embedding_power_lower_bound",
    "iter_embeddings",
    "build_star_database",
    "build_triangle_database",
    "detect_triangle_via_direct_access",
    "detect_triangle_via_testing",
    "example_5cycle_embedding",
    "figure1_ascii",
    "has_k_clique_np",
    "permutation_relation",
    "split_k",
    "star_database_from_graph",
]
