"""Theorem 3.15: sparse Boolean matrix multiplication via enumerating
the star query q̄*_2.

Given Boolean matrices A and B as coordinate lists, set R1 := A and
R2 := Bᵀ; then

    q̄*_2(x, y) :- R1(x, z), R2(y, z)

has exactly the non-zero positions of AB as its answers.  An
enumeration algorithm with Õ(m) preprocessing and Õ(1) delay would
compute the product in Õ(m + m') — refuting the Sparse BMM Hypothesis.
This module executes the reduction with any enumerator, so the
benchmark can measure the output-sensitive behaviour directly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Tuple

from repro.db.database import Database
from repro.db.relation import Relation
from repro.matmul.sparse import SparseBooleanMatrix
from repro.query.catalog import star_query_sjf
from repro.query.cq import ConjunctiveQuery

Enumerator = Callable[[ConjunctiveQuery, Database], Iterable[Tuple]]


def build_star_database(
    a: SparseBooleanMatrix, b: SparseBooleanMatrix
) -> Database:
    """R1 := A, R2 := Bᵀ — the proof's database for q̄*_2."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {a.shape} vs {b.shape}"
        )
    db = Database()
    db.add_relation(Relation("R1", 2, a.entries))
    db.add_relation(
        Relation("R2", 2, ((j, k) for (k, j) in b.entries))
    )
    return db


def _default_enumerator(
    query: ConjunctiveQuery, db: Database
) -> Iterator[Tuple]:
    """The materializing fallback enumerator (q̄*_2 is not free-connex,
    so a strict constant-delay enumerator would rightly refuse)."""
    from repro.enumeration import ConstantDelayEnumerator

    return iter(ConstantDelayEnumerator(query, db, strict=False))


def bmm_via_enumeration(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    enumerator: Enumerator = None,
) -> SparseBooleanMatrix:
    """The Boolean product AB computed by enumerating q̄*_2.

    With a hypothetical constant-delay enumerator this would run in
    Õ(m + m'); with the real fallback it costs a full join —
    the gap the Sparse BMM Hypothesis says is inherent.
    """
    if enumerator is None:
        enumerator = _default_enumerator
    query = star_query_sjf(2)
    db = build_star_database(a, b)
    entries = {(x, y) for (x, y) in enumerator(query, db)}
    return SparseBooleanMatrix(
        entries, shape=(a.shape[0], b.shape[1])
    )
