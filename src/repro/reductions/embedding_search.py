"""Automatic search for clique embeddings (the [41] measure).

Section 4.2 notes the embedding technique "can be developed into a
measure for queries called clique embedding power".  This module makes
the measure computable for small queries: enumerate candidate
embeddings ψ of K_ℓ (each ψ(x) a connected variable set), keep the
valid ones, and maximize ℓ / max-edge-depth — the exponent that an
embedding certifies as a conditional lower bound for the query (under
the matching clique hypothesis).

The search is exponential in the query size and the block-size cap;
queries are constant-sized, and the cap defaults small.  Known values
recovered by the tests: emb(q△) = 3/2, emb(q°5) ≥ 5/4 (Example 4.2),
emb(LW_k) ≥ k/(k-1).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.query.cq import ConjunctiveQuery
from repro.reductions.clique_embedding import CliqueEmbedding


def connected_variable_sets(
    query: ConjunctiveQuery, max_size: int
) -> List[frozenset]:
    """All connected, non-empty variable sets of size ≤ ``max_size``."""
    hypergraph = query.hypergraph()
    variables = sorted(hypergraph.vertices)
    out: List[frozenset] = []
    for size in range(1, max_size + 1):
        for combo in combinations(variables, size):
            candidate = frozenset(combo)
            if hypergraph.induced(candidate).is_connected():
                out.append(candidate)
    return out


def _pairs_ok(
    hypergraph: Hypergraph, blocks: Sequence[frozenset]
) -> bool:
    """Property (2) for the last block against all earlier ones."""
    new = blocks[-1]
    for old in blocks[:-1]:
        if new & old:
            continue
        if not any(e & new and e & old for e in hypergraph.edges):
            return False
    return True


def iter_embeddings(
    query: ConjunctiveQuery,
    clique_size: int,
    max_block: int = 3,
) -> Iterator[CliqueEmbedding]:
    """All valid embeddings of K_ℓ, blocks capped at ``max_block``.

    Blocks are chosen in non-decreasing candidate-index order, which
    quotients out the permutation symmetry of the clique vertices
    (any ordering of ψ is the same embedding).
    """
    hypergraph = query.hypergraph()
    candidates = connected_variable_sets(query, max_block)

    def extend(blocks: List[frozenset], start: int) -> Iterator[Tuple]:
        if len(blocks) == clique_size:
            yield tuple(blocks)
            return
        for index in range(start, len(candidates)):
            blocks.append(candidates[index])
            if _pairs_ok(hypergraph, blocks):
                yield from extend(blocks, index)
            blocks.pop()

    for psi in extend([], 0):
        embedding = CliqueEmbedding(query=query, psi=psi)
        embedding.validate()
        yield embedding


def best_embedding(
    query: ConjunctiveQuery,
    clique_size: int,
    max_block: int = 3,
) -> Optional[CliqueEmbedding]:
    """The embedding of K_ℓ with maximum certified exponent, if any."""
    best: Optional[CliqueEmbedding] = None
    for embedding in iter_embeddings(query, clique_size, max_block):
        if (
            best is None
            or embedding.power_lower_bound() > best.power_lower_bound()
        ):
            best = embedding
    return best


def embedding_power_lower_bound(
    query: ConjunctiveQuery,
    max_clique_size: int = 6,
    max_block: int = 3,
) -> Tuple[float, Optional[CliqueEmbedding]]:
    """max over ℓ ≤ max_clique_size of the best certified exponent.

    Returns ``(power, embedding)``; power 0.0 when no embedding exists
    (cannot happen for queries with at least one atom: singleton
    blocks always embed K_1).
    """
    best_power = 0.0
    best: Optional[CliqueEmbedding] = None
    for clique_size in range(1, max_clique_size + 1):
        embedding = best_embedding(query, clique_size, max_block)
        if embedding is None:
            continue
        power = embedding.power_lower_bound()
        if power > best_power:
            best_power = power
            best = embedding
    return best_power, best
