"""The fine-grained hypotheses the paper's lower bounds rest on.

Each hypothesis is a small data object so the classifier
(:mod:`repro.classify`) can cite exactly which assumption makes each
predicted bound tight, the way the paper's theorem statements do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Hypothesis:
    """A named fine-grained hardness hypothesis."""

    key: str
    name: str
    number: int  # the hypothesis number in the paper
    statement: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypothesis {self.number} ({self.name})"


SPARSE_BMM = Hypothesis(
    key="sparse-bmm",
    name="Sparse Boolean Matrix Multiplication Hypothesis",
    number=1,
    statement=(
        "No algorithm solves sparse Boolean matrix multiplication in "
        "time Õ(m), m = #non-zeros of inputs and output."
    ),
)

TRIANGLE = Hypothesis(
    key="triangle",
    name="Triangle Hypothesis",
    number=2,
    statement=(
        "No algorithm decides in time Õ(m) whether an m-edge graph "
        "contains a triangle."
    ),
)

HYPERCLIQUE = Hypothesis(
    key="hyperclique",
    name="Hyperclique Hypothesis",
    number=3,
    statement=(
        "For no k > h > 2 is there ε > 0 and an algorithm deciding "
        "size-k hypercliques in h-uniform n-vertex hypergraphs in "
        "time Õ(n^{k-ε})."
    ),
)

SETH = Hypothesis(
    key="seth",
    name="Strong Exponential Time Hypothesis",
    number=4,
    statement=(
        "For every ε > 0 there is k such that k-SAT on n variables "
        "cannot be solved in time Õ(2^{n(1-ε)})."
    ),
)

THREESUM = Hypothesis(
    key="3sum",
    name="3SUM Hypothesis",
    number=5,
    statement=(
        "No algorithm solves 3SUM on lists of length n in time "
        "Õ(n^{2-ε}) for any ε > 0."
    ),
)

COMBINATORIAL_K_CLIQUE = Hypothesis(
    key="combinatorial-k-clique",
    name="Combinatorial k-Clique Hypothesis",
    number=6,
    statement=(
        "Combinatorial algorithms cannot solve k-Clique in time "
        "Õ(n^{k-ε}) for any ε > 0 and k ≥ 3."
    ),
)

MIN_WEIGHT_K_CLIQUE = Hypothesis(
    key="min-weight-k-clique",
    name="Min-Weight-k-Clique Hypothesis",
    number=7,
    statement=(
        "No algorithm solves Min-Weight-k-Clique in time Õ(n^{k-ε}) "
        "for any ε > 0 and k ≥ 3."
    ),
)

ZERO_K_CLIQUE = Hypothesis(
    key="zero-k-clique",
    name="Zero-k-Clique Hypothesis",
    number=8,
    statement=(
        "No algorithm solves Zero-k-Clique in time Õ(n^{k-ε}) for any "
        "ε > 0 and k ≥ 3."
    ),
)

ALL_HYPOTHESES: Tuple[Hypothesis, ...] = (
    SPARSE_BMM,
    TRIANGLE,
    HYPERCLIQUE,
    SETH,
    THREESUM,
    COMBINATORIAL_K_CLIQUE,
    MIN_WEIGHT_K_CLIQUE,
    ZERO_K_CLIQUE,
)
