"""Theorem 3.5: hyperclique finding embeds into Loomis–Whitney queries.

Given a (k-1)-uniform hypergraph H on n vertices, let R contain every
permutation of every edge.  Setting all of q^LW_k's relations to R,
the query is true iff H has a hyperclique of size k:

- a hyperclique {v1..vk} satisfies every atom (each (k-1)-subset is an
  edge, in the order the atom requests);
- conversely an answer must use k pairwise distinct values (tuples of
  R have distinct entries), whose every (k-1)-subset is an edge.

|R| ≤ (k-1)! · |E| ≤ (k-1)! · n^{k-1}, so an Õ(m^{1+1/(k-1)-ε})
algorithm for q^LW_k would decide hypercliques in Õ(n^{k-(k-1)ε}),
contradicting the Hyperclique Hypothesis.
"""

from __future__ import annotations

from itertools import permutations
from typing import FrozenSet, Iterable, Set, Tuple

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.catalog import loomis_whitney_query
from repro.query.cq import ConjunctiveQuery
from repro.solvers.hyperclique import normalize_hypergraph


def permutation_relation(
    edges: Iterable[Iterable], h: int
) -> Set[Tuple]:
    """All orderings of all edges of an h-uniform hypergraph."""
    edge_set = normalize_hypergraph(edges, h)
    rows: Set[Tuple] = set()
    for edge in edge_set:
        for perm in permutations(sorted(edge, key=repr)):
            rows.add(perm)
    return rows


class HypercliqueToLoomisWhitney:
    """The Theorem 3.5 reduction for one fixed k."""

    def __init__(self, k: int) -> None:
        if k < 4:
            # The theorem is stated for k > 4 (below that, triangle
            # hardness applies instead); structurally the reduction
            # needs k >= 4 so that edges have size >= 3.
            raise ValueError("the hyperclique reduction needs k >= 4")
        self.k = k
        self.query: ConjunctiveQuery = loomis_whitney_query(k, boolean=True)

    def build_database(self, edges: Iterable[Iterable]) -> Database:
        """Every LW relation gets the permutation closure of the edges."""
        rows = permutation_relation(edges, self.k - 1)
        db = Database()
        for atom in self.query.atoms:
            db.add_relation(Relation(atom.relation, self.k - 1, rows))
        return db

    def decide_hyperclique(
        self, edges: Iterable[Iterable], evaluator=None
    ) -> bool:
        """Is there a hyperclique of size k, via the LW query?"""
        if evaluator is None:
            from repro.joins.generic_join import generic_join_boolean

            evaluator = generic_join_boolean
        return evaluator(self.query, self.build_database(edges))
