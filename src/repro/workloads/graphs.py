"""Graph instance generators (triangle, clique, dominating-set inputs)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

import networkx as nx

from repro.util.rng import SeedLike, make_rng, sample_distinct_pairs

EdgeWeights = Dict[FrozenSet, float]


def random_graph(n: int, m: int, seed: SeedLike = None) -> nx.Graph:
    """A uniformly random simple graph with n vertices and m edges."""
    rng = make_rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(
        sample_distinct_pairs(rng, n, m, ordered=False)
    )
    return graph


def triangle_free_graph(
    n: int, m: int, seed: SeedLike = None, plant_triangle: bool = False
) -> nx.Graph:
    """A bipartite (hence triangle-free) graph, optionally with one
    planted triangle.

    Bipartite graphs have no odd cycles, so the no-instance for the
    Triangle Hypothesis experiments is exact, not probabilistic.  With
    ``plant_triangle=True`` a single random triangle is added, turning
    it into a yes-instance that differs in just three edges.
    """
    rng = make_rng(seed)
    half = max(n // 2, 1)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    max_edges = half * (n - half)
    if m > max_edges:
        raise ValueError(
            f"at most {max_edges} edges fit a bipartition of {n} vertices"
        )
    seen = set()
    while len(seen) < m:
        u = rng.randrange(half)
        v = rng.randrange(half, n)
        seen.add((u, v))
    graph.add_edges_from(seen)
    if plant_triangle:
        if n < 3:
            raise ValueError("need at least 3 vertices to plant a triangle")
        a, b, c = rng.sample(range(n), 3)
        graph.add_edges_from([(a, b), (b, c), (c, a)])
    return graph


def planted_clique_graph(
    n: int,
    m: int,
    k: int,
    seed: SeedLike = None,
) -> Tuple[nx.Graph, Tuple[int, ...]]:
    """A random graph with a planted k-clique; returns (graph, clique)."""
    rng = make_rng(seed)
    graph = random_graph(n, m, rng)
    clique = tuple(sorted(rng.sample(range(n), k)))
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            graph.add_edge(u, v)
    return graph, clique


def random_weighted_graph(
    n: int,
    m: int,
    seed: SeedLike = None,
    low: int = -50,
    high: int = 50,
) -> Tuple[nx.Graph, EdgeWeights]:
    """A random graph with integer edge weights in [low, high]."""
    rng = make_rng(seed)
    graph = random_graph(n, m, rng)
    weights: EdgeWeights = {
        frozenset(edge): rng.randint(low, high) for edge in graph.edges()
    }
    return graph, weights


def zero_clique_instance(
    n: int,
    m: int,
    k: int,
    seed: SeedLike = None,
    plant: bool = True,
) -> Tuple[nx.Graph, EdgeWeights]:
    """A weighted graph optionally containing a zero-weight k-clique.

    When planting, a k-clique is embedded and its edge weights are
    adjusted so they sum to exactly zero.
    """
    rng = make_rng(seed)
    graph, weights = random_weighted_graph(n, m, rng)
    if not plant:
        return graph, weights
    clique = rng.sample(range(n), k)
    pairs = [
        frozenset((u, v))
        for i, u in enumerate(clique)
        for v in clique[i + 1 :]
    ]
    total = 0
    for pair in pairs[:-1]:
        u, v = tuple(pair)
        graph.add_edge(u, v)
        weight = rng.randint(-20, 20)
        weights[pair] = weight
        total += weight
    last = pairs[-1]
    graph.add_edge(*tuple(last))
    weights[last] = -total
    return graph, weights
