"""Workload generators for every experiment in DESIGN.md.

All generators are seeded and deterministic.  They produce either
plain-graph/hypergraph instances (for the source problems of the
reductions) or databases for the catalog queries (for the evaluation
algorithms), including the adversarial instances the lower-bound
proofs construct (AGM-tight triangle databases, 3SUM gadgets,
dominating-set encodings).
"""

from repro.workloads.databases import (
    agm_tight_triangle_db,
    functional_path_db,
    random_database,
    random_star_db,
    random_triangle_db,
)
from repro.workloads.graphs import (
    planted_clique_graph,
    random_graph,
    random_weighted_graph,
    triangle_free_graph,
)
from repro.workloads.hypergraphs import (
    plant_hyperclique,
    random_uniform_hypergraph,
)
from repro.workloads.instances import (
    dominating_set_instance,
    threesum_instance,
)
from repro.workloads.matrices import random_sparse_boolean_matrix

__all__ = [
    "agm_tight_triangle_db",
    "dominating_set_instance",
    "functional_path_db",
    "plant_hyperclique",
    "planted_clique_graph",
    "random_database",
    "random_graph",
    "random_sparse_boolean_matrix",
    "random_star_db",
    "random_triangle_db",
    "random_uniform_hypergraph",
    "random_weighted_graph",
    "threesum_instance",
    "triangle_free_graph",
]
