"""Uniform hypergraph generators (hyperclique / Loomis–Whitney inputs)."""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Sequence, Set, Tuple

from repro.util.rng import SeedLike, make_rng


def random_uniform_hypergraph(
    n: int, h: int, m: int, seed: SeedLike = None
) -> Set[FrozenSet]:
    """m distinct h-edges over range(n), uniformly at random."""
    rng = make_rng(seed)
    if h > n:
        raise ValueError("edge size exceeds vertex count")
    from math import comb

    if m > comb(n, h):
        raise ValueError(f"only {comb(n, h)} distinct edges exist")
    edges: Set[FrozenSet] = set()
    if m > comb(n, h) // 2:
        universe = [frozenset(c) for c in combinations(range(n), h)]
        rng.shuffle(universe)
        return set(universe[:m])
    while len(edges) < m:
        edges.add(frozenset(rng.sample(range(n), h)))
    return edges


def plant_hyperclique(
    edges: Set[FrozenSet],
    n: int,
    h: int,
    k: int,
    seed: SeedLike = None,
) -> Tuple[Set[FrozenSet], Tuple[int, ...]]:
    """Add all h-subsets of a random k-vertex set; returns (edges, set).

    The returned edge set is a new set; the input is not mutated.
    """
    rng = make_rng(seed)
    if k > n:
        raise ValueError("clique size exceeds vertex count")
    chosen = tuple(sorted(rng.sample(range(n), k)))
    out = set(edges)
    for combo in combinations(chosen, h):
        out.add(frozenset(combo))
    return out, chosen
