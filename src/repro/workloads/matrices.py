"""Sparse Boolean matrix generators (Hypothesis 1 experiments)."""

from __future__ import annotations

from repro.matmul.sparse import SparseBooleanMatrix
from repro.util.rng import SeedLike, make_rng


def random_sparse_boolean_matrix(
    rows: int, cols: int, nnz: int, seed: SeedLike = None
) -> SparseBooleanMatrix:
    """A rows×cols Boolean matrix with ``nnz`` distinct non-zeros."""
    rng = make_rng(seed)
    if nnz > rows * cols:
        raise ValueError("more non-zeros requested than cells exist")
    entries = set()
    while len(entries) < nnz:
        entries.add((rng.randrange(rows), rng.randrange(cols)))
    return SparseBooleanMatrix(entries, shape=(rows, cols))
