"""Database generators for the catalog queries.

Every generator takes a ``backend=`` switch (``"python"`` default,
``"columnar"``) and builds rows in bulk first, so the columnar backend
ingests each relation with a single encode pass and one vectorized
dedupe instead of per-tuple inserts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.util.rng import SeedLike, make_rng


def _bulk_relation(db: Database, name: str, arity: int, rows) -> None:
    """Register one relation, built through the database's backend."""
    db.add_relation(db.new_relation(name, arity, rows))


def random_database(
    query: ConjunctiveQuery,
    tuples_per_relation: int,
    domain_size: int,
    seed: SeedLike = None,
    backend: str = "python",
) -> Database:
    """IID-uniform tuples for every relation symbol of the query.

    Duplicates are absorbed by set semantics, so relations may end up
    slightly smaller than requested on small domains.
    """
    rng = make_rng(seed)
    db = Database(backend=backend)
    for symbol in query.relation_symbols:
        arity = next(
            a.arity for a in query.atoms if a.relation == symbol
        )
        rows = [
            tuple(rng.randrange(domain_size) for _ in range(arity))
            for _ in range(tuples_per_relation)
        ]
        _bulk_relation(db, symbol, arity, rows)
    return db


def random_triangle_db(
    m_per_relation: int,
    domain_size: int,
    seed: SeedLike = None,
    backend: str = "python",
) -> Database:
    """Random binary relations R1, R2, R3 for the triangle query."""
    from repro.query.catalog import triangle_query

    return random_database(
        triangle_query(), m_per_relation, domain_size, seed, backend=backend
    )


def agm_tight_triangle_db(
    m_per_relation: int, backend: str = "python"
) -> Database:
    """The AGM-tight triangle instance with Θ(m^{3/2}) answers.

    Take disjoint value groups A, B, C of size √m and set
    R1 = A×B, R2 = B×C, R3 = C×A.  Every (a, b, c) is an answer, so the
    output is |A|·|B|·|C| = m^{3/2} — the instance showing the AGM
    bound tight (Section 3.1.1) and forcing binary join plans into
    Ω(m^2) intermediates.
    """
    side = max(int(math.isqrt(m_per_relation)), 1)
    a_values = [("a", i) for i in range(side)]
    b_values = [("b", i) for i in range(side)]
    c_values = [("c", i) for i in range(side)]
    db = Database(backend=backend)
    _bulk_relation(
        db, "R1", 2, [(a, b) for a in a_values for b in b_values]
    )
    _bulk_relation(
        db, "R2", 2, [(b, c) for b in b_values for c in c_values]
    )
    _bulk_relation(
        db, "R3", 2, [(c, a) for c in c_values for a in a_values]
    )
    return db


def random_star_db(
    k: int,
    m: int,
    domain_size: int,
    seed: SeedLike = None,
    self_join_free: bool = False,
    backend: str = "python",
) -> Database:
    """A database for q*_k (single R) or q̄*_k (R1..Rk)."""
    rng = make_rng(seed)
    db = Database(backend=backend)
    names = (
        [f"R{i + 1}" for i in range(k)] if self_join_free else ["R"]
    )
    for name in names:
        rows = [
            (rng.randrange(domain_size), rng.randrange(domain_size))
            for _ in range(m)
        ]
        _bulk_relation(db, name, 2, rows)
    return db


def functional_path_db(
    length: int, m: int, seed: SeedLike = None, backend: str = "python"
) -> Database:
    """A path-query database where each relation is near-functional.

    Useful for enumeration experiments: the output stays O(m) while m
    grows, so delays are measurable over many answers without the
    result itself exploding.
    """
    rng = make_rng(seed)
    db = Database(backend=backend)
    for i in range(1, length + 1):
        rows = [(j, (j + rng.randrange(3)) % m) for j in range(m)]
        _bulk_relation(db, f"R{i}", 2, rows)
    return db
