"""Instances for 3SUM and Dominating Set."""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.util.rng import SeedLike, make_rng
from repro.workloads.graphs import random_graph


def threesum_instance(
    n: int, plant: bool = True, seed: SeedLike = None
) -> Tuple[List[int], List[int], List[int]]:
    """Lists A, B, C of n values in the paper's range {-n^4..n^4}.

    With ``plant=True`` one random index triple satisfies a + b = c;
    without planting, random instances over the n^4 range are
    overwhelmingly likely to be no-instances (and tests verify with
    the reference solver rather than assume it).
    """
    rng = make_rng(seed)
    bound = n**4
    a = [rng.randint(-bound, bound) for _ in range(n)]
    b = [rng.randint(-bound, bound) for _ in range(n)]
    c = [rng.randint(-bound, bound) for _ in range(n)]
    if plant and n > 0:
        i = rng.randrange(n)
        j = rng.randrange(n)
        k = rng.randrange(n)
        c[k] = a[i] + b[j]
    return a, b, c


def dominating_set_instance(
    n: int,
    m: int,
    k: int,
    seed: SeedLike = None,
    plant: bool = True,
) -> nx.Graph:
    """A random graph, optionally modified to have a k-dominating set.

    Planting picks k centers and attaches every vertex to one of them,
    guaranteeing domination; unplanted sparse graphs typically need far
    more than k vertices to dominate.
    """
    rng = make_rng(seed)
    graph = random_graph(n, m, rng)
    if plant and k >= 1:
        centers = rng.sample(range(n), min(k, n))
        for v in graph.nodes():
            if v not in centers:
                graph.add_edge(v, rng.choice(centers))
    return graph
