"""A stdlib client for the query service.

:class:`ServerClient` wraps one keep-alive
:class:`http.client.HTTPConnection` around the JSON API;
:class:`RemoteQuery` mirrors the :class:`~repro.engine.prepared.
AnswerSet` read surface (``page`` / ``count`` / ``aggregate`` /
``explain``) over a prepared handle, and :meth:`RemoteQuery.watch`
yields the SSE change stream as parsed events on a dedicated
connection.  Server-side failures surface as :class:`ServerError`
carrying the envelope's stable ``code``, so callers branch on
``exc.code == "parse_error"`` rather than on message prose.

Everything here is synchronous stdlib networking on purpose: the
client must be usable from tests, benchmarks, and plain scripts with
no event loop in sight.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["RemoteQuery", "ServerClient", "ServerError", "WatchEvent"]


class ServerError(Exception):
    """The JSON error envelope, rehydrated."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class WatchEvent:
    """One parsed SSE event from a ``watch`` stream."""

    __slots__ = ("id", "event", "data")

    def __init__(self, id: int, event: str, data: dict) -> None:
        self.id = id
        self.event = event
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WatchEvent(id={self.id}, {self.data})"


class ServerClient:
    """Keep-alive JSON client for one :class:`QueryServer`."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
        encode_chunked: bool = False,
    ) -> Tuple[int, bytes]:
        conn = self._connection()
        try:
            conn.request(
                method,
                path,
                body=body,
                headers=headers or {},
                encode_chunked=encode_chunked,
            )
            response = conn.getresponse()
            return response.status, response.read()
        except (
            http.client.HTTPException,
            ConnectionError,
            socket.timeout,
            OSError,
        ):
            # A dropped keep-alive connection is retried once on a
            # fresh one; a second failure propagates.
            self.close()
            conn = self._connection()
            conn.request(
                method,
                path,
                body=body,
                headers=headers or {},
                encode_chunked=encode_chunked,
            )
            response = conn.getresponse()
            return response.status, response.read()

    def _json(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, raw = self._request(method, path, body, headers)
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            raise ServerError(
                status, "bad_response", f"non-JSON response: {raw[:200]!r}"
            ) from None
        if status >= 400 or "error" in decoded:
            error = decoded.get("error", {})
            raise ServerError(
                status,
                error.get("code", "unknown"),
                error.get("message", raw.decode("utf-8", "replace")),
            )
        return decoded

    # ------------------------------------------------------------------
    # databases
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def databases(self) -> List[str]:
        return self._json("GET", "/v1/dbs")["databases"]

    def create_db(self, name: str, **config: Any) -> dict:
        return self._json("POST", f"/v1/db/{name}", config)

    def db_info(self, name: str) -> dict:
        return self._json("GET", f"/v1/db/{name}")

    def drop_db(self, name: str) -> dict:
        return self._json("DELETE", f"/v1/db/{name}")

    def replica_url(self, name: str) -> str:
        """The URL ``connect(replica_of=...)`` takes for this tenant."""
        return f"http://{self.host}:{self.port}/v1/replica/{name}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def prepare(
        self,
        db: str,
        query: str,
        order: Optional[List[str]] = None,
        semiring: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "RemoteQuery":
        spec: Dict[str, Any] = {"query": query}
        if order is not None:
            spec["order"] = list(order)
        if semiring is not None:
            spec["semiring"] = semiring
        if backend is not None:
            spec["backend"] = backend
        info = self._json("POST", f"/v1/db/{db}/prepare", spec)
        return RemoteQuery(self, info)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update_stream(
        self, db: str, records: Iterable[dict]
    ) -> dict:
        """Stream update records as chunked NDJSON; waits for apply.

        Each record is ``{"op": "add"|"discard", "relation": name,
        "row": [...]}`` (``op`` defaults to ``add``).  The generator
        is consumed lazily, so the server applies early batches while
        later records are still being produced, and its bounded queue
        backpressures this upload through TCP.
        """

        def ndjson() -> Iterator[bytes]:
            for record in records:
                yield json.dumps(record).encode("utf-8") + b"\n"

        status, raw = self._request(
            "POST",
            f"/v1/db/{db}/updates",
            body=ndjson(),
            headers={
                "Content-Type": "application/x-ndjson",
                "Transfer-Encoding": "chunked",
            },
            encode_chunked=True,
        )
        decoded = json.loads(raw)
        if status >= 400 or "error" in decoded:
            error = decoded.get("error", {})
            raise ServerError(
                status,
                error.get("code", "unknown"),
                error.get("message", str(decoded)),
            )
        return decoded

    def add(self, db: str, relation: str, rows: Iterable) -> dict:
        return self.update_stream(
            db,
            (
                {"op": "add", "relation": relation, "row": list(row)}
                for row in rows
            ),
        )

    def discard(self, db: str, relation: str, rows: Iterable) -> dict:
        return self.update_stream(
            db,
            (
                {"op": "discard", "relation": relation, "row": list(row)}
                for row in rows
            ),
        )


class RemoteQuery:
    """The read surface of one prepared handle."""

    def __init__(self, client: ServerClient, info: dict) -> None:
        self.client = client
        self.info = info
        self.handle = info["handle"]

    def page(self, offset: int, limit: int) -> List[list]:
        payload = self.client._json(
            "GET",
            f"/v1/q/{self.handle}/page?offset={offset}&limit={limit}",
        )
        return [tuple(row) for row in payload["rows"]]

    def count(self) -> int:
        return self.client._json(
            "GET", f"/v1/q/{self.handle}/len"
        )["count"]

    def __len__(self) -> int:
        return self.count()

    def aggregate(self, semiring: Optional[str] = None) -> Any:
        path = f"/v1/q/{self.handle}/aggregate"
        if semiring is not None:
            path += f"?semiring={semiring}"
        value = self.client._json("GET", path)["value"]
        if value == "inf":
            return float("inf")
        if value == "-inf":
            return float("-inf")
        return value

    def explain(self) -> str:
        return self.client._json(
            "GET", f"/v1/q/{self.handle}/explain"
        )["explain"]

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def watch(
        self,
        cursor: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[WatchEvent]:
        """Yield change events; blocks between them (heartbeats skip).

        Runs on its own connection (the stream occupies it until the
        caller stops iterating or the socket times out).  ``cursor``
        resumes after a previously seen event id.
        """
        conn = http.client.HTTPConnection(
            self.client.host,
            self.client.port,
            timeout=timeout
            if timeout is not None
            else self.client.timeout,
        )
        try:
            conn.request(
                "GET", f"/v1/q/{self.handle}/watch?cursor={cursor}"
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    error = json.loads(raw)["error"]
                except (ValueError, KeyError):
                    error = {}
                raise ServerError(
                    response.status,
                    error.get("code", "unknown"),
                    error.get("message", raw.decode("utf-8", "replace")),
                )
            event_id = 0
            event_type = "message"
            data_lines: List[str] = []
            while True:
                raw_line = response.readline()
                if not raw_line:
                    return  # clean end of stream
                line = raw_line.rstrip(b"\r\n").decode("utf-8")
                if not line:
                    if data_lines:
                        yield WatchEvent(
                            event_id,
                            event_type,
                            json.loads("\n".join(data_lines)),
                        )
                    event_type = "message"
                    data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # heartbeat comment
                field, _, value = line.partition(":")
                value = value.lstrip(" ")
                if field == "id":
                    event_id = int(value)
                elif field == "event":
                    event_type = value
                elif field == "data":
                    data_lines.append(value)
        finally:
            conn.close()
