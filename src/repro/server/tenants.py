"""Multi-tenant session registry with LRU eviction of idle tenants.

A *tenant* is one named :class:`~repro.engine.session.Session` plus
everything the server built on it: prepared-query handles, the update
batcher, watch hubs, and (lazily) a replication feed.  Tenants are
fully isolated — each owns its database, dictionary, and (for durable
tenants) its on-disk directory under the server's ``data_root``.

The registry is single-threaded by construction: every method runs on
the server's event loop (blocking engine work is what gets dispatched
to the thread pool, never registry bookkeeping), so there is no lock.

Eviction: the registry holds at most ``max_tenants`` sessions.
Creating one past the cap evicts the least-recently-used *idle*
tenant — idle meaning no in-flight request and no live SSE subscriber
(tracked by a pin count) — and releases its resources through
:meth:`~repro.engine.session.Session.close`, which is exactly why
that method exists.  A durable tenant's directory survives eviction;
re-creating the tenant with ``durable=True`` recovers it.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.engine.session import Session, connect
from repro.server.http import HttpError

#: Tenant names are path- and URL-safe by construction.
NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789_.-"
)


def default_session_factory(
    name: str, config: dict, data_root: Optional[str]
) -> Session:
    """Build a tenant session from the creation request's JSON body.

    ``backend`` / ``shard_count`` / ``workers`` / ``columnar_cutoff``
    pass straight to :func:`repro.engine.session.connect`.  A tenant
    asking ``durable: true`` gets a WAL-backed session whose directory
    is ``<data_root>/<name>`` — the *server* chooses the path, so no
    network peer can aim a tenant at an arbitrary filesystem location.
    """
    backend = config.get("backend", "python")
    kwargs = {
        "backend": backend,
        "shard_count": config.get("shard_count"),
        "workers": config.get("workers"),
    }
    if config.get("columnar_cutoff") is not None:
        kwargs["columnar_cutoff"] = int(config["columnar_cutoff"])
    if config.get("durable"):
        if data_root is None:
            raise HttpError(
                400,
                "durability_disabled",
                "this server was started without a data_root; "
                "durable tenants are unavailable",
            )
        path = os.path.join(data_root, name)
        # Belt and braces under the registry's name validation: a
        # durable tenant's directory must stay strictly inside
        # data_root ('.' / '..' would alias or escape it).
        root = os.path.realpath(data_root)
        if not os.path.realpath(path).startswith(root + os.sep):
            raise HttpError(
                400,
                "bad_db_name",
                f"tenant directory for {name!r} would escape the "
                "server's data_root",
            )
        kwargs["path"] = path
        kwargs["sync"] = config.get("sync", "batch")
    return connect(**kwargs)


class ServedQuery:
    """One prepared query under one handle."""

    def __init__(self, handle: str, tenant: "Tenant", prepared) -> None:
        self.handle = handle
        self.tenant = tenant
        self.prepared = prepared
        self.answers = prepared.run()
        self.hub = None  # WatchHub, attached on first /watch

    def info(self) -> dict:
        plan = self.prepared.plan
        return {
            "handle": self.handle,
            "db": self.tenant.name,
            "query": str(self.prepared.query),
            "family": plan.family,
            "backend": plan.backend,
            "shard_count": plan.shard_count,
            "workers": plan.workers,
            "order": list(plan.order) if plan.order else None,
            "access_admissible": plan.access_admissible,
            "maintained_count": plan.maintained_count,
            "explain": self.prepared.explain(),
        }


class Tenant:
    """Registry entry: session + handles + serving machinery."""

    def __init__(self, name: str, session: Session) -> None:
        self.name = name
        self.session = session
        self.handles: Dict[str, ServedQuery] = {}
        self._handle_of: Dict[int, str] = {}  # id(prepared) -> handle
        self.batcher = None  # UpdateBatcher, attached by the app
        self.feed = None  # LeaderFeed, attached on first replica call
        self.pins = 0
        self.tick = 0

    @property
    def idle(self) -> bool:
        return self.pins == 0

    def handle_for(self, prepared, mint: Callable[[], str]) -> ServedQuery:
        """The stable handle of a prepared query (minting one once).

        ``Session.prepare`` deduplicates identical preparations, so
        re-preparing the same query must return the same handle — a
        client reconnecting after a crash finds its old handle still
        valid instead of accumulating aliases.
        """
        handle = self._handle_of.get(id(prepared))
        if handle is not None:
            return self.handles[handle]
        handle = mint()
        served = ServedQuery(handle, self, prepared)
        self.handles[handle] = served
        self._handle_of[id(prepared)] = handle
        return served


class TenantRegistry:
    """Name → :class:`Tenant`, bounded by LRU eviction of idle ones."""

    def __init__(
        self,
        max_tenants: int = 32,
        data_root: Optional[str] = None,
        session_factory=default_session_factory,
    ) -> None:
        self.max_tenants = max(1, int(max_tenants))
        self.data_root = data_root
        self._factory = session_factory
        self._tenants: Dict[str, Tenant] = {}
        self._handles: Dict[str, ServedQuery] = {}
        self._clock = 0
        self._minted = 0
        self.evicted = 0  # cumulative, for introspection/tests

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _bump(self, tenant: Tenant) -> Tenant:
        self._clock += 1
        tenant.tick = self._clock
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise HttpError(
                404, "no_such_db", f"no database named {name!r}"
            )
        return self._bump(tenant)

    def resolve_handle(self, handle: str) -> ServedQuery:
        served = self._handles.get(handle)
        if served is None:
            raise HttpError(
                404,
                "no_such_handle",
                f"no prepared query under handle {handle!r} (it may "
                "have been evicted with its database; prepare again)",
            )
        self._bump(served.tenant)
        return served

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str, config: dict) -> Tenant:
        # At least one alphanumeric: rules out '.' and '..', which
        # would otherwise alias or escape data_root as durable paths.
        if (
            not name
            or not set(name) <= NAME_OK
            or not any(ch.isalnum() for ch in name)
        ):
            raise HttpError(
                400,
                "bad_db_name",
                "database names use [A-Za-z0-9_.-] only and need at "
                "least one alphanumeric character",
            )
        if name in self._tenants:
            raise HttpError(
                409, "db_exists", f"database {name!r} already exists"
            )
        while len(self._tenants) >= self.max_tenants:
            self._evict_one()
        session = self._factory(name, config, self.data_root)
        tenant = Tenant(name, session)
        self._tenants[name] = tenant
        return self._bump(tenant)

    def _evict_one(self) -> None:
        candidates = [t for t in self._tenants.values() if t.idle]
        if not candidates:
            raise HttpError(
                503,
                "tenants_exhausted",
                f"all {self.max_tenants} tenants are active; retry "
                "later or drop one",
            )
        victim = min(candidates, key=lambda t: t.tick)
        self.evicted += 1
        self._discard(victim)

    def drop(self, name: str) -> None:
        tenant = self.get(name)
        self._discard(tenant)

    def _discard(self, tenant: Tenant) -> None:
        del self._tenants[tenant.name]
        for handle in tenant.handles:
            self._handles.pop(handle, None)
        tenant.handles.clear()
        # Deterministic release: WAL flushed+closed, spill files
        # removed, maintained structures dropped (Session.close).
        tenant.session.close()

    def close(self) -> None:
        for tenant in list(self._tenants.values()):
            self._discard(tenant)

    # ------------------------------------------------------------------
    # handles
    # ------------------------------------------------------------------
    def register(self, tenant: Tenant, prepared) -> ServedQuery:
        def mint() -> str:
            self._minted += 1
            return f"{tenant.name}.q{self._minted}"

        served = tenant.handle_for(prepared, mint)
        self._handles[served.handle] = served
        return served

    # ------------------------------------------------------------------
    # pinning (requests in flight / SSE subscribers)
    # ------------------------------------------------------------------
    class _Pin:
        def __init__(self, tenant: Tenant) -> None:
            self._tenant = tenant

        def __enter__(self) -> Tenant:
            self._tenant.pins += 1
            return self._tenant

        def __exit__(self, *exc) -> None:
            self._tenant.pins -= 1

    def pinned(self, tenant: Tenant) -> "TenantRegistry._Pin":
        """Context manager marking ``tenant`` busy (eviction-exempt)."""
        return TenantRegistry._Pin(tenant)

    def stats(self) -> Tuple[int, int]:
        return len(self._tenants), self.evicted
