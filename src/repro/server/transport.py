"""Replication over the wire: payload codec + HTTP transport adapter.

:class:`repro.engine.replication.LeaderFeed` ships plain-data payloads
(dicts of lists, per-relation NumPy code matrices).  This module gives
those payloads a byte representation and an HTTP client, completing
the transport seam the replication layer left open:

- :func:`dumps_payload` / :func:`loads_payload` — pickle framing with
  a **restricted** unpickler: only builtin containers/scalars and the
  NumPy array-reconstruction entry points resolve, so a replication
  endpoint never becomes an arbitrary-code-execution surface even
  inside the trusted tier the protocol is designed for.
- :class:`HttpReplicaTransport` — a
  :class:`~repro.engine.replication.ReplicationTransport` that speaks
  to a :class:`repro.server.app.QueryServer`'s
  ``/v1/replica/{db}/handshake`` and ``.../pull`` endpoints over
  stdlib :mod:`http.client`.  Connection-shaped failures (refused,
  reset, timeout, 5xx) raise
  :class:`~repro.engine.replication.TransientReplicationError` so the
  follower's retry/backoff loop handles them; undecodable payloads
  and definitive server answers (404: no such database) raise the
  terminal :class:`~repro.engine.replication.ReplicationError`.
- :func:`transport_for_url` — what
  ``connect(replica_of="http://host:port/v1/replica/mydb")`` wraps
  the URL in.
"""

from __future__ import annotations

import builtins
import http.client
import io
import pickle
import socket
from typing import Any, Dict
from urllib.parse import urlsplit

from repro.engine.replication import (
    ReplicationError,
    ReplicationTransport,
    TransientReplicationError,
)

__all__ = [
    "HttpReplicaTransport",
    "dumps_payload",
    "loads_payload",
    "transport_for_url",
]

#: Content type of the binary replication payloads.
REPLICA_CONTENT_TYPE = "application/x-repro-replica"

_SAFE_BUILTINS = {
    "bool",
    "bytearray",
    "bytes",
    "complex",
    "dict",
    "float",
    "frozenset",
    "int",
    "list",
    "set",
    "str",
    "tuple",
}

#: NumPy's pickle entry points, stable across the 1.x/2.x module split.
_SAFE_NUMPY = {"_reconstruct", "ndarray", "dtype", "scalar", "_frombuffer"}
_NUMPY_MODULES = {
    "numpy",
    "numpy.core.multiarray",
    "numpy._core.multiarray",
}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module == "builtins" and name in _SAFE_BUILTINS:
            return getattr(builtins, name)
        if module in _NUMPY_MODULES and name in _SAFE_NUMPY:
            import numpy

            if hasattr(numpy, name):  # ndarray, dtype: public API
                return getattr(numpy, name)
            try:  # the private internals moved in NumPy 2.x
                from numpy._core import multiarray
            except ImportError:  # pragma: no cover - NumPy 1.x
                from numpy.core import multiarray
            return getattr(multiarray, name)
        raise pickle.UnpicklingError(
            f"replication payload references {module}.{name}, which is "
            "outside the allowed wire vocabulary"
        )


def dumps_payload(payload: Any) -> bytes:
    return pickle.dumps(payload, protocol=4)


def loads_payload(raw: bytes) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(raw)).load()
    except pickle.UnpicklingError:
        raise
    except Exception as exc:  # torn frame, bad opcode, EOF...
        raise pickle.UnpicklingError(
            f"undecodable replication payload: {exc}"
        ) from exc


class HttpReplicaTransport(ReplicationTransport):
    """``handshake``/``pull`` against a query server's replica API.

    One short-lived HTTP connection per call: replication rounds are
    seconds apart in steady state, and per-call connections make the
    transport trivially safe to retry after any failure (no poisoned
    keep-alive state).  ``timeout`` is the per-call socket timeout —
    distinct from the follower's *total* retry budget
    (``connect(replica_of=..., timeout=...)``), which governs how
    long the backoff loop keeps re-trying this transport.
    """

    def __init__(
        self,
        host: str,
        port: int,
        db_name: str,
        timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.db_name = db_name
        self.timeout = timeout

    # ------------------------------------------------------------------
    # the transport surface
    # ------------------------------------------------------------------
    def handshake(self) -> Dict[str, Any]:
        return self._roundtrip("GET", "handshake", None)

    def pull(
        self, stamps: Dict[str, int], dict_len: int
    ) -> Dict[str, Any]:
        body = dumps_payload({"stamps": stamps, "dict_len": dict_len})
        return self._roundtrip("POST", "pull", body)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _roundtrip(self, method: str, endpoint: str, body) -> Any:
        path = f"/v1/replica/{self.db_name}/{endpoint}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": REPLICA_CONTENT_TYPE}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (
            ConnectionError,
            socket.timeout,
            socket.gaierror,
            http.client.HTTPException,
            OSError,
        ) as exc:
            raise TransientReplicationError(
                f"replica endpoint {path} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        if response.status == 404:
            raise ReplicationError(
                f"leader at {self.host}:{self.port} does not serve "
                f"database {self.db_name!r}"
            )
        if response.status >= 500:
            # Server-side hiccup (including an injected drop): the
            # leader is alive, the state it serves is not wrong —
            # retry.
            raise TransientReplicationError(
                f"replica endpoint {path} answered "
                f"{response.status}: {raw[:200]!r}"
            )
        if response.status != 200:
            raise ReplicationError(
                f"replica endpoint {path} answered "
                f"{response.status}: {raw[:200]!r}"
            )
        try:
            return loads_payload(raw)
        except pickle.UnpicklingError as exc:
            raise ReplicationError(
                f"corrupt replica payload from {path}: {exc}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HttpReplicaTransport(http://{self.host}:{self.port}"
            f"/v1/replica/{self.db_name})"
        )


def transport_for_url(
    url: str, timeout: float = 10.0
) -> HttpReplicaTransport:
    """Parse ``http://host:port/v1/replica/<db>`` into a transport."""
    parts = urlsplit(url)
    if parts.scheme not in ("http",):
        raise ValueError(
            f"replica URLs must be http:// (got {url!r}); for any other "
            "transport pass a ReplicationTransport object instead"
        )
    segments = [s for s in parts.path.split("/") if s]
    if (
        len(segments) != 3
        or segments[0] != "v1"
        or segments[1] != "replica"
    ):
        raise ValueError(
            "replica URLs look like http://host:port/v1/replica/<db>; "
            f"got path {parts.path!r}"
        )
    if parts.hostname is None or parts.port is None:
        raise ValueError(f"replica URL needs host and port: {url!r}")
    return HttpReplicaTransport(
        parts.hostname, parts.port, segments[2], timeout=timeout
    )
