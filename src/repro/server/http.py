"""Hand-rolled asyncio HTTP/1.1 plumbing for the query service.

Like the engine's other from-scratch subsystems (the WAL's record
framing, the checkpoint manifests), the network layer owns its wire
format instead of importing a framework: this module implements the
exact HTTP/1.1 subset the service needs — request-line + header
parsing, ``Content-Length`` and ``chunked`` request bodies (with an
incremental line iterator for NDJSON ingestion, so a large update
stream never sits in memory at once), keep-alive connection reuse,
fixed-length JSON/binary responses, and chunked streaming responses
for server-sent events.

Nothing here knows about sessions or tenants;
:mod:`repro.server.app` supplies the routes and handlers.  All limits
(line length, header count, body size) are explicit and raise
:class:`HttpError`, which the application layer renders as the JSON
error envelope.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard parser limits; a request exceeding one is answered 400/431.
MAX_LINE = 16 * 1024
MAX_HEADERS = 128
DEFAULT_MAX_BODY = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol- or application-level failure with a stable code.

    ``status`` is the HTTP status, ``code`` the machine-readable slug
    that lands in the JSON error envelope (``{"error": {"code": ...,
    "message": ...}}``) so clients can branch without parsing prose.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class BodyReader:
    """Incremental reader for one request body.

    Handles both framings the parser accepts — ``Content-Length`` and
    ``Transfer-Encoding: chunked`` — behind two consumption styles:
    :meth:`read_all` for small JSON bodies and :meth:`iter_lines` for
    NDJSON streams (lines surface as soon as their bytes arrive, so
    the ingestion batcher applies updates while the client is still
    uploading, and a full batch queue propagates backpressure to the
    socket simply by not reading further).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        length: Optional[int],
        chunked: bool,
        limit: int = DEFAULT_MAX_BODY,
    ) -> None:
        self._reader = reader
        self._remaining = length
        self._chunked = chunked
        self._limit = limit
        self._consumed = 0
        self._chunk_left = 0
        self._done = length in (0, None) and not chunked

    @property
    def consumed(self) -> int:
        return self._consumed

    def _count(self, data: bytes) -> bytes:
        self._consumed += len(data)
        if self._consumed > self._limit:
            raise HttpError(
                413, "payload_too_large",
                f"request body exceeds {self._limit} bytes",
            )
        return data

    async def _read_block(self, size: int = 65536) -> bytes:
        """The next raw block of body bytes (b'' when exhausted)."""
        if self._done:
            return b""
        if self._chunked:
            return await self._read_chunked_block(size)
        take = min(size, self._remaining)
        data = await self._reader.read(take)
        if not data:
            raise HttpError(
                400, "truncated_body",
                "connection closed mid-body",
            )
        self._remaining -= len(data)
        if self._remaining == 0:
            self._done = True
        return self._count(data)

    async def _read_chunked_block(self, size: int) -> bytes:
        if self._chunk_left == 0:
            line = await _read_line(self._reader)
            # Tolerate the CRLF that terminates the previous chunk.
            if line == b"":
                line = await _read_line(self._reader)
            try:
                self._chunk_left = int(line.split(b";", 1)[0], 16)
            except ValueError:
                raise HttpError(
                    400, "bad_chunk", f"bad chunk size line {line!r}"
                ) from None
            if self._chunk_left == 0:
                # Trailer section: discard until the blank line.
                while await _read_line(self._reader):
                    pass
                self._done = True
                return b""
        take = min(size, self._chunk_left)
        data = await self._reader.read(take)
        if not data:
            raise HttpError(
                400, "truncated_body", "connection closed mid-chunk"
            )
        self._chunk_left -= len(data)
        return self._count(data)

    async def read_all(self) -> bytes:
        parts = []
        while True:
            block = await self._read_block()
            if not block:
                return b"".join(parts)
            parts.append(block)

    async def iter_lines(self) -> AsyncIterator[bytes]:
        """Yield ``\\n``-terminated lines (sans newline) as they land."""
        buffer = b""
        while True:
            block = await self._read_block()
            if not block:
                break
            buffer += block
            while True:
                cut = buffer.find(b"\n")
                if cut < 0:
                    break
                line = buffer[:cut].rstrip(b"\r")
                buffer = buffer[cut + 1 :]
                if line:
                    yield line
        tail = buffer.strip()
        if tail:
            yield tail

    async def drain(self) -> None:
        """Discard whatever the handler left unread (keep-alive)."""
        while await self._read_block():
            pass


class Request:
    """One parsed request: line, headers, query string, body reader."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: BodyReader,
    ) -> None:
        self.method = method
        self.target = target
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.query: Dict[str, str] = dict(
            parse_qsl(parts.query, keep_blank_values=True)
        )
        self.headers = headers
        self.body = body
        self.keep_alive = (
            headers.get("connection", "keep-alive").lower() != "close"
        )

    def int_param(self, name: str, default: Optional[int] = None) -> int:
        raw = self.query.get(name)
        if raw is None:
            if default is None:
                raise HttpError(
                    400, "bad_request", f"missing query parameter {name!r}"
                )
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, "bad_request",
                f"query parameter {name!r} must be an integer, got {raw!r}",
            ) from None

    async def json(self) -> dict:
        raw = await self.body.read_all()
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise HttpError(
                400, "bad_json", f"request body is not JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "bad_json", "request body must be a JSON object"
            )
        return payload


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE:
        raise HttpError(431, "line_too_long", "request line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF between requests."""
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise HttpError(431, "line_too_long", "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(
            400, "bad_request_line", f"malformed request line {line!r}"
        ) from None
    if not version.startswith("HTTP/1."):
        raise HttpError(
            400, "bad_request_line", f"unsupported version {version!r}"
        )
    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if not raw:
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(
                431, "too_many_headers", "too many request headers"
            )
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    chunked = "chunked" in headers.get("transfer-encoding", "").lower()
    length: Optional[int] = None
    if not chunked:
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                raise HttpError(
                    400, "bad_request", "malformed Content-Length"
                ) from None
            if length < 0:
                # A negative length would make _read_block call
                # reader.read(-N) — read-until-EOF — hanging the
                # keep-alive connection and misframing the stream.
                raise HttpError(
                    400, "bad_request", "negative Content-Length"
                )
        else:
            length = 0
    body = BodyReader(reader, length, chunked, limit=max_body)
    return Request(method.upper(), target, headers, body)


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def _head(
    status: int,
    headers: Tuple[Tuple[str, str], ...],
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_body(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
    keep_alive: bool,
) -> None:
    """A fixed-length response (the normal JSON / binary case)."""
    connection = "keep-alive" if keep_alive else "close"
    writer.write(
        _head(
            status,
            (
                ("Content-Type", content_type),
                ("Content-Length", str(len(body))),
                ("Connection", connection),
            ),
        )
    )
    writer.write(body)
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool,
) -> None:
    body = json.dumps(payload, default=str).encode("utf-8")
    await send_body(
        writer, status, body, "application/json", keep_alive
    )


class ChunkedStream:
    """A chunked streaming response (the SSE transport).

    ``start()`` sends the header block, :meth:`send` writes one chunk
    and drains (so a slow consumer backpressures the producer), and
    :meth:`end` writes the terminal zero-chunk, letting well-behaved
    clients distinguish a clean stream end from a dropped connection.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        content_type: str = "text/event-stream",
    ) -> None:
        self._writer = writer
        self._content_type = content_type
        self._started = False

    async def start(self, status: int = 200) -> None:
        self._writer.write(
            _head(
                status,
                (
                    ("Content-Type", self._content_type),
                    ("Cache-Control", "no-cache"),
                    ("Transfer-Encoding", "chunked"),
                    ("Connection", "close"),
                ),
            )
        )
        self._started = True
        await self._writer.drain()

    async def send(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(
            b"%x\r\n%s\r\n" % (len(data), data)
        )
        await self._writer.drain()

    async def end(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
