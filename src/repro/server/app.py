"""The query service: routes, error envelope, SSE hub, replica feed.

:class:`QueryServer` turns :class:`~repro.engine.session.Session`
objects into a multi-tenant network service on top of the hand-rolled
HTTP layer (:mod:`repro.server.http`).  The API surface::

    GET    /healthz                      liveness + tenant stats
    GET    /v1/dbs                       tenant listing
    POST   /v1/db/{name}                 create a tenant database
    GET    /v1/db/{name}                 tenant info (relations, stamps)
    DELETE /v1/db/{name}                 drop a tenant
    POST   /v1/db/{name}/prepare         prepare a query -> handle
    POST   /v1/db/{name}/updates         NDJSON update stream
    GET    /v1/q/{handle}/page           paged answers (offset, limit)
    GET    /v1/q/{handle}/len            answer count
    GET    /v1/q/{handle}/aggregate      semiring aggregate
    GET    /v1/q/{handle}/explain        the serving plan
    GET    /v1/q/{handle}/watch          SSE stream of changes
    GET    /v1/replica/{db}/handshake    replication bootstrap (binary)
    POST   /v1/replica/{db}/pull         replication delta pull (binary)

**Threading model.**  The asyncio loop owns all bookkeeping (tenant
registry, hubs, batchers); every engine call — count, page,
aggregate, bulk updates, replica payload assembly — is dispatched to
the server's own dedicated thread pool via ``run_in_executor``, where
the session's read/write lock
(:class:`repro.util.locks.ReadWriteLock`) serializes it against
concurrent mutation.  The server pool is distinct from the shard
executor's pool (engine calls fan out into the latter, so sharing one
bounded pool could deadlock it); the loop never blocks on the engine,
so hundreds of keep-alive connections multiplex over a handful of
engine threads.

**Errors.**  Every failure renders as the JSON envelope
``{"error": {"code": ..., "message": ...}}`` with a stable code:
``parse_error`` (400) for bad queries, ``stale_structure`` /
``history_truncated`` (409), ``corruption`` (500), ``degraded``
(503), ``no_such_db`` / ``no_such_handle`` (404), ``db_exists``
(409), plus the protocol-level codes from :mod:`repro.server.http`.

**Fault injection.**  The replica endpoints pass through the
``server.replica.drop`` fault point; arming it makes the server tear
down the connection mid-request — exactly the failure the follower's
transient-retry classification must absorb.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.db.executor import resolve_workers
from repro.db.interface import (
    CorruptionError,
    DegradedDatabaseError,
    StaleStructureError,
    TruncatedHistoryError,
)
from repro.engine.replication import LeaderFeed
from repro.query.parser import QueryParseError
from repro.semiring.semirings import (
    BOOLEAN,
    COUNTING,
    MAX_PLUS,
    MIN_PLUS,
    Semiring,
)
from repro.server.batcher import UpdateBatcher
from repro.server.http import (
    ChunkedStream,
    DEFAULT_MAX_BODY,
    HttpError,
    Request,
    read_request,
    send_body,
    send_json,
)
from repro.server.tenants import ServedQuery, Tenant, TenantRegistry
from repro.server.transport import (
    REPLICA_CONTENT_TYPE,
    dumps_payload,
    loads_payload,
)
from repro.util import faultpoints

__all__ = ["QueryServer", "ServerThread", "SEMIRINGS"]

#: Wire names for the engine's semirings (the aggregate endpoint's
#: ``?semiring=`` values and ``prepare``'s ``"semiring"`` field).
SEMIRINGS: Dict[str, Semiring] = {
    "counting": COUNTING,
    "boolean": BOOLEAN,
    "min-plus": MIN_PLUS,
    "max-plus": MAX_PLUS,
}

#: Armed by fault-injection tests: the replica endpoints sever the
#: connection without a response, simulating a network drop.
REPLICA_DROP = faultpoints.declare(
    "server.replica.drop", module="repro.server.app"
)[0]


class _Disconnect(Exception):
    """Abort the connection without writing a response."""


def jsonable(value: Any) -> Any:
    """Engine values (NumPy scalars, tuples, inf) as JSON-safe data."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return value


def error_for(exc: BaseException) -> HttpError:
    """Map an engine exception onto the stable error envelope."""
    if isinstance(exc, HttpError):
        return exc
    if isinstance(exc, QueryParseError):
        return HttpError(400, "parse_error", str(exc))
    if isinstance(exc, CorruptionError):
        return HttpError(500, "corruption", str(exc))
    if isinstance(exc, TruncatedHistoryError):
        return HttpError(409, "history_truncated", str(exc))
    if isinstance(exc, StaleStructureError):
        return HttpError(409, "stale_structure", str(exc))
    if isinstance(exc, DegradedDatabaseError):
        return HttpError(503, "degraded", str(exc))
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return HttpError(400, "bad_request", str(exc))
    return HttpError(
        500, "internal", f"{type(exc).__name__}: {exc}"
    )


class WatchHub:
    """Fan-out of one served query's changes to SSE subscribers.

    The batcher notifies the hub (in application order, awaited) after
    every applied batch; the hub recomputes the watched value on the
    engine pool, diffs the touched relations with ``delta_since`` from
    its stamp cursor, and — when the value actually changed — publishes
    one monotonically numbered event into every subscriber queue and
    the bounded replay history.  Per-connection cursors
    (``?cursor=`` / ``Last-Event-ID``) resume from history, and the
    subscriber loop's last-sent sequence makes delivery exactly-once
    per connection even across the replay/live seam.
    """

    HISTORY = 1024
    #: Max undelivered frames per subscriber; a consumer too slow to
    #: drain this backlog is dropped (end-of-stream marker) rather
    #: than accumulating frames without bound — cursors/replay let it
    #: reconnect and resume from its ``Last-Event-ID``.
    QUEUE_LIMIT = 256

    def __init__(self, served: ServedQuery) -> None:
        self.served = served
        self.relations: Set[str] = set(
            served.prepared.query.relation_symbols
        )
        self.seq = 0
        self.history: Deque[Tuple[int, bytes]] = deque(
            maxlen=self.HISTORY
        )
        self.queues: List[asyncio.Queue] = []
        self._stamps: Dict[str, int] = {}
        self._last_value: Any = None
        self._primed = False

    # ------------------------------------------------------------------
    # engine-side snapshot (runs on the pool)
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple[Any, Dict[str, int], Dict[str, Any]]:
        prepared = self.served.prepared
        answers = self.served.answers
        if prepared.semiring is not None:
            value = answers.aggregate()
        else:
            value = answers.count()
        db = prepared.database
        stamps: Dict[str, int] = {}
        deltas: Dict[str, Any] = {}
        for rel in db:
            if rel.name not in self.relations:
                continue
            stamp = rel.mutation_stamp
            stamps[rel.name] = stamp
            seen = self._stamps.get(rel.name)
            if seen is None or seen == stamp:
                continue
            try:
                inserted, deleted = rel.delta_since(seen)
                deltas[rel.name] = {
                    "inserted": len(inserted),
                    "deleted": len(deleted),
                }
            except (StaleStructureError, NotImplementedError):
                # Backend keeps no usable history window; the stamp
                # jump itself still marks the relation as changed.
                deltas[rel.name] = {"stamp_from": seen, "stamp_to": stamp}
        return value, stamps, deltas

    # ------------------------------------------------------------------
    # loop-side publication
    # ------------------------------------------------------------------
    async def notify(self, run_blocking) -> None:
        value, stamps, deltas = await run_blocking(self._snapshot)
        changed = value != self._last_value
        self._stamps = stamps
        if self._primed and not changed:
            return
        self._primed = True
        self._last_value = value
        self.seq += 1
        data = json.dumps(
            {
                "seq": self.seq,
                "value": jsonable(value),
                "stamps": stamps,
                "delta": jsonable(deltas),
            }
        )
        frame = (
            f"id: {self.seq}\nevent: change\ndata: {data}\n\n"
        ).encode("utf-8")
        self.history.append((self.seq, frame))
        for queue in list(self.queues):
            try:
                queue.put_nowait((self.seq, frame))
            except asyncio.QueueFull:
                # Stalled consumer: stop feeding it.  Swap its oldest
                # undelivered event for the end-of-stream marker — it
                # drains what it can, sees the marker, disconnects,
                # and resumes from its cursor on reconnect.
                self.queues.remove(queue)
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                queue.put_nowait((None, b""))

    async def prime(self, run_blocking) -> None:
        """Publish the initial snapshot (before the first subscriber)."""
        if not self._primed:
            await self.notify(run_blocking)

    def subscribe(
        self, cursor: int
    ) -> Tuple[List[Tuple[int, bytes]], asyncio.Queue]:
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.QUEUE_LIMIT)
        self.queues.append(queue)
        replay = [item for item in self.history if item[0] > cursor]
        return replay, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self.queues.remove(queue)
        except ValueError:
            pass


class QueryServer:
    """The asyncio HTTP/1.1 multi-tenant query service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_tenants: int = 32,
        data_root: Optional[str] = None,
        workers: Optional[int] = None,
        flush_rows: int = 256,
        flush_interval: float = 0.05,
        queue_size: int = 1024,
        heartbeat: float = 15.0,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = TenantRegistry(
            max_tenants=max_tenants, data_root=data_root
        )
        self.flush_rows = flush_rows
        self.flush_interval = flush_interval
        self.queue_size = queue_size
        self.heartbeat = heartbeat
        self.max_body = max_body
        # The engine pool: a dedicated thread pool for run_in_executor
        # dispatch — deliberately NOT the shared shard pool.  Engine
        # calls made from these threads fan out through
        # ``ParallelExecutor.map`` on the shard pool; if both outer
        # calls and inner shard tasks drew from one bounded pool, a
        # writer holding the session lock could wait on inner tasks
        # queued behind readers blocked on that same lock — a permanent
        # deadlock once the pool saturates.
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, resolve_workers(workers)),
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        for tenant in list(self.registry):
            if tenant.batcher is not None:
                await tenant.batcher.close()
        self.registry.close()
        self._pool.shutdown(wait=True, cancel_futures=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run_blocking(self, fn, *args):
        """Dispatch one engine call to the shard-executor pool."""
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(self._pool, partial(fn, *args))

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body
                    )
                except HttpError as exc:
                    await send_json(
                        writer,
                        exc.status,
                        _envelope(exc),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                try:
                    finished = await self._dispatch(request, writer)
                except _Disconnect:
                    writer.transport.abort()
                    return
                except HttpError as exc:
                    await self._send_error(writer, request, exc)
                    finished = request.keep_alive
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.CancelledError,
                ):
                    raise
                except Exception as exc:  # engine / handler failure
                    await self._send_error(
                        writer, request, error_for(exc)
                    )
                    finished = request.keep_alive
                if not finished:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        exc: HttpError,
    ) -> None:
        try:
            await request.body.drain()
        except HttpError:
            request.keep_alive = False
        await send_json(
            writer, exc.status, _envelope(exc), request.keep_alive
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns ``keep_alive``."""
        segments = [s for s in request.path.split("/") if s]
        method = request.method
        if segments == ["healthz"]:
            tenants, evicted = self.registry.stats()
            await self._reply(
                request,
                writer,
                {"ok": True, "tenants": tenants, "evicted": evicted},
            )
            return request.keep_alive
        if not segments or segments[0] != "v1":
            raise HttpError(404, "no_such_route", request.path)
        rest = segments[1:]
        if rest == ["dbs"] and method == "GET":
            await self._reply(
                request,
                writer,
                {"databases": sorted(t.name for t in self.registry)},
            )
        elif len(rest) >= 2 and rest[0] == "db":
            await self._dispatch_db(request, writer, rest[1:])
        elif len(rest) == 3 and rest[0] == "q":
            await self._dispatch_query(
                request, writer, rest[1], rest[2]
            )
        elif len(rest) == 3 and rest[0] == "replica":
            await self._dispatch_replica(
                request, writer, rest[1], rest[2]
            )
        else:
            raise HttpError(404, "no_such_route", request.path)
        return request.keep_alive

    async def _reply(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        payload: dict,
        status: int = 200,
    ) -> None:
        await request.body.drain()
        await send_json(writer, status, payload, request.keep_alive)

    # -------------------------- /v1/db/... ----------------------------
    async def _dispatch_db(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        rest: List[str],
    ) -> None:
        name = rest[0]
        if len(rest) == 1:
            if request.method == "POST":
                config = await request.json()
                tenant = self.registry.create(name, config)
                tenant.batcher = self._make_batcher(tenant)
                await self._reply(
                    request,
                    writer,
                    self._tenant_info(tenant),
                    status=201,
                )
            elif request.method == "GET":
                tenant = self.registry.get(name)
                await self._reply(
                    request, writer, self._tenant_info(tenant)
                )
            elif request.method == "DELETE":
                tenant = self.registry.get(name)
                if tenant.batcher is not None:
                    await tenant.batcher.close()
                self.registry.drop(name)
                await self._reply(request, writer, {"dropped": name})
            else:
                raise HttpError(
                    405, "method_not_allowed", request.method
                )
        elif len(rest) == 2 and rest[1] == "prepare":
            if request.method != "POST":
                raise HttpError(
                    405, "method_not_allowed", request.method
                )
            await self._handle_prepare(request, writer, name)
        elif len(rest) == 2 and rest[1] == "updates":
            if request.method != "POST":
                raise HttpError(
                    405, "method_not_allowed", request.method
                )
            await self._handle_updates(request, writer, name)
        else:
            raise HttpError(404, "no_such_route", request.path)

    def _tenant_info(self, tenant: Tenant) -> dict:
        db = tenant.session.db
        return {
            "name": tenant.name,
            "backend": db.backend,
            "relations": {
                rel.name: {
                    "arity": rel.arity,
                    "size": len(rel),
                    "stamp": rel.mutation_stamp,
                }
                for rel in db
            },
            "handles": sorted(tenant.handles),
        }

    def _make_batcher(self, tenant: Tenant) -> UpdateBatcher:
        async def on_applied(
            op: str, relation: str, rows: int
        ) -> None:
            for served in tenant.handles.values():
                hub = served.hub
                if hub is not None and relation in hub.relations:
                    await hub.notify(self.run_blocking)

        return UpdateBatcher(
            tenant.session,
            self.run_blocking,
            queue_size=self.queue_size,
            flush_rows=self.flush_rows,
            flush_interval=self.flush_interval,
            on_applied=on_applied,
        )

    async def _handle_prepare(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        name: str,
    ) -> None:
        tenant = self.registry.get(name)
        spec = await request.json()
        query = spec.get("query")
        if not isinstance(query, str) or not query:
            raise HttpError(
                400, "bad_request", 'prepare needs a "query" string'
            )
        semiring = None
        if spec.get("semiring") is not None:
            semiring = SEMIRINGS.get(spec["semiring"])
            if semiring is None:
                raise HttpError(
                    400,
                    "bad_semiring",
                    f"unknown semiring {spec['semiring']!r}; pick one "
                    f"of {sorted(SEMIRINGS)}",
                )
        order = spec.get("order")
        if order is not None and not (
            isinstance(order, list)
            and all(isinstance(v, str) for v in order)
        ):
            raise HttpError(
                400, "bad_request", '"order" must be a list of strings'
            )
        with self.registry.pinned(tenant):
            prepared = await self.run_blocking(
                partial(
                    tenant.session.prepare,
                    query,
                    order=order,
                    semiring=semiring,
                    backend=spec.get("backend"),
                )
            )
        served = self.registry.register(tenant, prepared)
        await self._reply(request, writer, served.info(), status=201)

    async def _handle_updates(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        name: str,
    ) -> None:
        tenant = self.registry.get(name)
        if tenant.batcher is None:
            tenant.batcher = self._make_batcher(tenant)
        accepted = 0
        with self.registry.pinned(tenant):
            async for line in request.body.iter_lines():
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise HttpError(
                        400,
                        "bad_update",
                        f"update line {accepted + 1} is not JSON: {exc}",
                    ) from None
                try:
                    op = record.get("op", "add")
                    relation = record["relation"]
                    row = tuple(record["row"])
                except (TypeError, KeyError) as exc:
                    raise HttpError(
                        400,
                        "bad_update",
                        f"update line {accepted + 1} needs "
                        f'"relation" and "row": {exc}',
                    ) from None
                if op not in ("add", "discard"):
                    raise HttpError(
                        400,
                        "bad_update",
                        f'update op must be "add" or "discard", '
                        f"got {op!r}",
                    )
                await tenant.batcher.put(op, relation, row)
                accepted += 1
            applied = await tenant.batcher.barrier()
        stamps = {
            rel.name: rel.mutation_stamp
            for rel in tenant.session.db
        }
        await self._reply(
            request,
            writer,
            {
                "accepted": accepted,
                "applied_seq": applied,
                "stamps": stamps,
            },
        )

    # -------------------------- /v1/q/... -----------------------------
    async def _dispatch_query(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        handle: str,
        action: str,
    ) -> None:
        served = self.registry.resolve_handle(handle)
        if action == "watch":
            if request.method != "GET":
                raise HttpError(
                    405, "method_not_allowed", request.method
                )
            await self._handle_watch(request, writer, served)
            return
        if request.method != "GET":
            raise HttpError(405, "method_not_allowed", request.method)
        answers = served.answers
        with self.registry.pinned(served.tenant):
            if action == "page":
                offset = request.int_param("offset", 0)
                limit = request.int_param("limit", 100)
                rows, total = await self.run_blocking(
                    lambda: (answers.page(offset, limit), len(answers))
                )
                payload = {
                    "handle": handle,
                    "offset": offset,
                    "limit": limit,
                    "total": total,
                    "rows": jsonable(rows),
                }
            elif action == "len":
                payload = {
                    "handle": handle,
                    "count": await self.run_blocking(answers.count),
                }
            elif action == "aggregate":
                semiring = served.prepared.semiring
                wire_name = request.query.get("semiring")
                if wire_name is not None:
                    semiring = SEMIRINGS.get(wire_name)
                    if semiring is None:
                        raise HttpError(
                            400,
                            "bad_semiring",
                            f"unknown semiring {wire_name!r}",
                        )
                elif semiring is None:
                    semiring = COUNTING
                value = await self.run_blocking(
                    answers.aggregate, semiring
                )
                payload = {
                    "handle": handle,
                    "semiring": semiring.name,
                    "value": jsonable(value),
                }
            elif action == "explain":
                payload = {
                    "handle": handle,
                    "explain": served.prepared.explain(),
                }
            elif action == "info":
                payload = served.info()
            else:
                raise HttpError(404, "no_such_route", request.path)
        await self._reply(request, writer, payload)

    async def _handle_watch(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        served: ServedQuery,
    ) -> None:
        if served.hub is None:
            served.hub = WatchHub(served)
        hub = served.hub
        await hub.prime(self.run_blocking)
        cursor = request.int_param(
            "cursor",
            int(request.headers.get("last-event-id", 0) or 0),
        )
        await request.body.drain()
        stream = ChunkedStream(writer)
        await stream.start()
        replay, queue = hub.subscribe(cursor)
        last_sent = cursor
        try:
            with self.registry.pinned(served.tenant):
                for seq, frame in replay:
                    if seq <= last_sent:
                        continue
                    await stream.send(frame)
                    last_sent = seq
                while True:
                    try:
                        seq, frame = await asyncio.wait_for(
                            queue.get(), timeout=self.heartbeat
                        )
                    except asyncio.TimeoutError:
                        await stream.send(b": heartbeat\n\n")
                        continue
                    if seq is None:
                        # Dropped by the hub for falling behind; end
                        # the stream so the client reconnects with its
                        # cursor and resumes from replay.
                        await stream.end()
                        break
                    if seq <= last_sent:
                        continue  # already covered by replay
                    await stream.send(frame)
                    last_sent = seq
        finally:
            hub.unsubscribe(queue)
            # The SSE response never ends cleanly from the server side
            # (Connection: close); the client hangs up when done.
            request.keep_alive = False

    # ------------------------ /v1/replica/... -------------------------
    async def _dispatch_replica(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        name: str,
        endpoint: str,
    ) -> None:
        if faultpoints.fires(REPLICA_DROP):
            raise _Disconnect()
        tenant = self.registry.get(name)
        if tenant.feed is None:
            tenant.feed = LeaderFeed(tenant.session)
        feed = tenant.feed
        with self.registry.pinned(tenant):
            if endpoint == "handshake" and request.method == "GET":
                await request.body.drain()
                payload = await self.run_blocking(
                    self._locked_feed_call, tenant, feed.handshake
                )
            elif endpoint == "pull" and request.method == "POST":
                raw = await request.body.read_all()
                try:
                    spec = loads_payload(raw)
                    stamps = dict(spec["stamps"])
                    dict_len = int(spec["dict_len"])
                except (pickle.UnpicklingError, KeyError, TypeError, ValueError) as exc:
                    raise HttpError(
                        400, "bad_pull", f"undecodable pull request: {exc}"
                    ) from None
                payload = await self.run_blocking(
                    self._locked_feed_call,
                    tenant,
                    feed.pull,
                    stamps,
                    dict_len,
                )
            else:
                raise HttpError(404, "no_such_route", request.path)
        body = dumps_payload(payload)
        await send_body(
            writer, 200, body, REPLICA_CONTENT_TYPE, request.keep_alive
        )

    @staticmethod
    def _locked_feed_call(tenant: Tenant, fn, *args):
        # Replica payload assembly reads relation content + stamps;
        # the shared side of the session lock keeps it consistent
        # against concurrent batched updates.
        with tenant.session._rw.read():
            return fn(*args)


def _envelope(exc: HttpError) -> dict:
    return {"error": {"code": exc.code, "message": exc.message}}


class ServerThread:
    """A :class:`QueryServer` on a background thread (sync callers).

    Tests, benchmarks, and examples use this to stand a server up
    without owning an event loop::

        with ServerThread(max_tenants=4) as server:
            client = ServerClient(server.host, server.port)
            ...
    """

    def __init__(self, **kwargs: Any) -> None:
        self.server = QueryServer(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServerThread":
        started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # port in use, ...
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
