"""Backpressure-aware coalescing of streamed updates into bulk calls.

The ingestion endpoint reads NDJSON update records off the socket one
line at a time; applying each row individually would pay the full
delta-propagation cost per tuple.  :class:`UpdateBatcher` sits in
between: records land in a **bounded** :class:`asyncio.Queue` (when
the engine falls behind, the queue fills, the reader coroutine blocks
on ``put()``, the server stops reading the socket, and TCP pushes the
backpressure all the way to the uploading client), and a single
drainer task coalesces consecutive same-``(op, relation)`` runs into
one :meth:`~repro.engine.session.Session.add_all` /
:meth:`~repro.engine.session.Session.discard_all` call executed on
the engine thread pool.

Flushing is governed by two watermarks: a batch is applied when it
reaches ``flush_rows`` rows **or** when ``flush_interval`` seconds
pass with pending rows (so a trickle of updates still becomes visible
promptly).  Order is preserved exactly — runs are applied in arrival
order, and an op/relation switch forces the current run out first.

``enqueued_seq`` / ``applied_seq`` number every accepted record;
:meth:`barrier` waits until everything enqueued so far has been
applied, which is what gives the ingestion response its read-your-
writes meaning and the tests their synchronisation point.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Awaitable, Callable, List, Optional, Tuple

#: One queued update: (op, relation, row).
Record = Tuple[str, str, tuple]


class UpdateBatcher:
    """Coalesce a stream of single-row updates into bulk engine calls."""

    def __init__(
        self,
        session,
        run_blocking: Callable[..., Awaitable],
        queue_size: int = 1024,
        flush_rows: int = 256,
        flush_interval: float = 0.05,
        on_applied: Optional[Callable[[str, str, int], None]] = None,
    ) -> None:
        self._session = session
        self._run_blocking = run_blocking
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.flush_rows = max(1, int(flush_rows))
        self.flush_interval = flush_interval
        self._on_applied = on_applied
        self.enqueued_seq = 0
        self.applied_seq = 0
        self._applied_cond = asyncio.Condition()
        self._task: Optional[asyncio.Task] = None
        self._failure: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------
    # producer side (the ingestion handler)
    # ------------------------------------------------------------------
    async def put(self, op: str, relation: str, row: tuple) -> int:
        """Enqueue one update; blocks when the queue is full.

        Returns the record's sequence number.  Raises the drainer's
        failure if a previous batch blew up (the error surfaces on the
        *next* record, mirroring how group-commit durability reports).
        """
        if self._failure is not None:
            raise self._failure
        if self._closed:
            raise RuntimeError("update batcher is closed")
        self._ensure_task()
        await self._queue.put((op, relation, row))
        if self._failure is not None:
            # The drainer died while we were blocked on a full queue
            # (it drained the queue to wake us); the record we just
            # enqueued will never be applied.
            raise self._failure
        self.enqueued_seq += 1
        return self.enqueued_seq

    async def barrier(self) -> int:
        """Wait until every record enqueued so far is applied."""
        target = self.enqueued_seq
        async with self._applied_cond:
            while self.applied_seq < target:
                if self._failure is not None:
                    raise self._failure
                await self._applied_cond.wait()
        if self._failure is not None:
            raise self._failure
        return self.applied_seq

    async def close(self) -> None:
        """Flush remaining records and stop the drainer."""
        if self._closed:
            return
        self._closed = True
        if self._task is not None:
            try:
                await self.barrier()
            finally:
                self._task.cancel()
                try:
                    await self._task
                except (asyncio.CancelledError, Exception):
                    pass
                self._task = None

    # ------------------------------------------------------------------
    # consumer side (the drainer task)
    # ------------------------------------------------------------------
    def _ensure_task(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._drain(), name="update-batcher"
            )

    async def _drain(self) -> None:
        pending: List[Record] = []
        try:
            while True:
                if pending:
                    # Partial batch: wait at most flush_interval for
                    # more before applying what we have.
                    try:
                        record = await asyncio.wait_for(
                            self._queue.get(),
                            timeout=self.flush_interval,
                        )
                    except asyncio.TimeoutError:
                        await self._apply(pending)
                        pending = []
                        continue
                else:
                    record = await self._queue.get()
                # A new op/relation pair cannot coalesce with the
                # current run — flush it first to preserve order.
                if pending and (
                    record[0] != pending[0][0]
                    or record[1] != pending[0][1]
                ):
                    await self._apply(pending)
                    pending = []
                pending.append(record)
                if len(pending) >= self.flush_rows:
                    await self._apply(pending)
                    pending = []
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._failure = exc
            # Nothing will consume the queue anymore: clear it so
            # producers blocked in put() wake up (their post-put
            # failure check raises) instead of waiting forever.
            while True:
                try:
                    self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            async with self._applied_cond:
                self._applied_cond.notify_all()

    async def _apply(self, batch: List[Record]) -> None:
        op, relation = batch[0][0], batch[0][1]
        rows = [record[2] for record in batch]
        if op == "add":
            await self._run_blocking(
                self._session.add_all, relation, rows
            )
        else:
            await self._run_blocking(
                self._session.discard_all, relation, rows
            )
        async with self._applied_cond:
            self.applied_seq += len(batch)
            self._applied_cond.notify_all()
        if self._on_applied is not None:
            # Awaited inline so watch-hub notifications observe
            # batches strictly in application order (the exactly-once,
            # in-order SSE contract hangs on this).
            outcome = self._on_applied(op, relation, len(batch))
            if inspect.isawaitable(outcome):
                await outcome
