"""The serving layer: sessions as a multi-tenant network service.

Built entirely on the standard library (asyncio + hand-rolled
HTTP/1.1), the package splits into:

- :mod:`repro.server.http` — wire plumbing: request parsing, chunked
  bodies, NDJSON line streaming, keep-alive, SSE chunked responses.
- :mod:`repro.server.tenants` — named-session registry with LRU
  eviction of idle tenants through ``Session.close``.
- :mod:`repro.server.batcher` — backpressure-aware coalescing of
  streamed updates into bulk ``add_all`` / ``discard_all`` calls.
- :mod:`repro.server.app` — :class:`QueryServer` (routes, the JSON
  error envelope, the SSE watch hub, the replication endpoints) and
  :class:`ServerThread` for synchronous embedders.
- :mod:`repro.server.transport` — the HTTP replication transport
  behind ``connect(replica_of="http://host:port/v1/replica/db")``.
- :mod:`repro.server.client` — a stdlib client mirroring the
  ``AnswerSet`` read surface over the wire, including the SSE stream.
"""

from repro.server.app import SEMIRINGS, QueryServer, ServerThread
from repro.server.client import (
    RemoteQuery,
    ServerClient,
    ServerError,
    WatchEvent,
)
from repro.server.http import HttpError
from repro.server.transport import (
    HttpReplicaTransport,
    transport_for_url,
)

__all__ = [
    "HttpError",
    "HttpReplicaTransport",
    "QueryServer",
    "RemoteQuery",
    "SEMIRINGS",
    "ServerClient",
    "ServerError",
    "ServerThread",
    "WatchEvent",
    "transport_for_url",
]
