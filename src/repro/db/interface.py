"""The common backend interface for tuple stores and frames.

The repo ships two execution backends behind one contract:

========================  ==============================  =============================
role                      ``"python"`` backend            ``"columnar"`` backend
========================  ==============================  =============================
tuple store (relations)   :class:`repro.db.relation.Relation`
                                                          :class:`repro.db.columnar.ColumnarRelation`
frame (operator algebra)  :class:`repro.joins.frame.Frame`
                                                          :class:`repro.joins.vectorized.ColumnarFrame`
========================  ==============================  =============================

The backend is selected with a ``backend=`` switch at the boundaries —
:class:`repro.db.database.Database`, the workload generators in
:mod:`repro.workloads.databases`, and
:func:`repro.joins.semijoin.atom_frames` — after which every join-stack
algorithm (hash joins, full reducers, Yannakakis, Generic Join) runs
unchanged: algorithms only ever call the methods declared here.

The classes below are *virtual* ABCs: implementations are registered
rather than subclassed, so each backend keeps its own storage layout
(``__slots__``-free sets vs NumPy arrays) while ``isinstance`` checks
against the interface still work.

Mutation / consistency contract
-------------------------------

Derived answer structures (FAQ message tables, the direct-access
stores of :class:`repro.direct_access.lex.LexDirectAccess`, the
enumeration blocks of
:class:`repro.enumeration.constant_delay.ConstantDelayEnumerator`)
snapshot a relation at preprocessing time.  Serving answers from such
a snapshot after the relation mutated is the *stale-answer-structure*
bug class; the contract below makes it detectable and, where the
backend keeps delta history, cheaply repairable.

``mutation_stamp``
    A monotone non-negative integer, bumped by every mutating call
    (``add`` / ``add_all`` / ``discard`` / ``retain``) that may have
    changed the tuple set.  Two equal stamps guarantee identical
    content; a drifted stamp means "possibly changed" (the columnar
    backend bumps even for logically-absorbed ops such as re-adding a
    present tuple — :meth:`delta_since` then reports an exact, possibly
    empty, net delta).  Derived structures record the stamp of every
    relation they read at build time and compare on access — on drift
    they raise :class:`StaleStructureError` or refresh, never silently
    answer from the dead snapshot.

``delta_since(stamp) -> (inserted, deleted)``
    The *net* change of the tuple set between the snapshot taken at
    ``stamp`` and now, as two code matrices (columnar backend; rows
    are dictionary codes).  When the history needed to answer exactly
    is gone — the stamp predates the last barrier (compaction, bulk
    rewrite, removing ``retain``) — it raises
    :class:`TruncatedHistoryError` carrying both stamps, and callers
    rebuild.  Exactness matters: an ``add`` of a present tuple or an
    ``add``/``discard`` pair cancels to nothing, so replaying the
    delta against a structure built at ``stamp`` reproduces the
    current content.

**Columnar storage layout.**  A
:class:`~repro.db.columnar.ColumnarRelation` holds a compacted *main
segment* (one deduplicated int64 code matrix) plus an append-only op
log of single-tuple inserts/deletes (the *delta segments*).  Reads
merge on the fly (``codes()`` filters deleted main rows and appends
net inserts, cached until the next mutation).  When the delta grows
past ``max(DELTA_COMPACT_MIN, DELTA_COMPACT_FRACTION * len(main))``
the merged view is adopted as the new main segment and the log is
cleared — which truncates history, so ``delta_since`` raises
:class:`TruncatedHistoryError` for stamps before the compaction and
derived structures fall back to a full rebuild (exactly the regime
where the delta was no longer small).  ``retain`` calls that remove
something and large ``add_all`` calls are bulk rewrites: they compact
first and also act as history barriers (no-op retains and empty-log
compactions leave both the stamp and the history untouched).  The
Python backend mutates in place and keeps no history (``delta_since``
always raises past stamps), but maintains its hash indexes
incrementally and bumps ``mutation_stamp`` only on effective changes.
"""

from __future__ import annotations

from abc import ABC
from typing import Dict, Iterable, Optional

BACKENDS = ("python", "columnar", "sharded")

# Input size (total tuples) above which the vectorized columnar backend
# amortizes its encoding overhead.  Below it, the python backend's
# hash sets win on constant factors (single-tuple lookups, tiny joins);
# above it, the array programs are 15-90x faster (ROADMAP, PR 1/2).
# The engine planner (repro.engine) uses this as its default backend
# cutoff; callers can override per session or per prepare() call.
DEFAULT_COLUMNAR_CUTOFF = 2048

# Input size above which the planner prefers the *sharded* columnar
# backend (repro.db.sharded): hash-partitioned code matrices whose hot
# pipelines run shard-by-shard and merge per-shard FAQ messages, so no
# global array larger than one shard (plus the merged separator
# domain) is materialized on the count/aggregate path.  Below it the
# partitioning overhead (one routing pass per batch, k-way message
# merges) buys nothing.
DEFAULT_SHARD_CUTOFF = 1 << 17

# Shard-count heuristic: aim for roughly this many tuples per shard,
# doubling the shard count until reached, capped at MAX_SHARD_COUNT
# (diminishing returns: each extra shard adds one message to every
# cross-shard merge).
SHARD_TARGET_ROWS = 1 << 15
MAX_SHARD_COUNT = 16


def preferred_shard_count(size: int, target: Optional[int] = None) -> int:
    """Planner heuristic: power-of-two shard count for an input size.

    Doubles until shards hold at most ~``target`` tuples each
    (default :data:`SHARD_TARGET_ROWS`), capped at
    :data:`MAX_SHARD_COUNT`.  Sizes below one target's worth get a
    single shard — partitioning them is pure overhead.
    """
    if target is None:
        target = SHARD_TARGET_ROWS
    count = 1
    while count < MAX_SHARD_COUNT and count * target < size:
        count *= 2
    return count


def check_backend(backend: str) -> str:
    """Validate a backend name (single source of truth for all layers)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def preferred_backend(
    size: int,
    stored_backend: str = "python",
    cutoff: Optional[int] = None,
    shard_cutoff: Optional[int] = None,
) -> str:
    """The execution backend the planner prefers for an input size.

    A database already stored sharded (or columnar) stays that way —
    its relations are encoded, and re-partitioning a columnar store
    would decode and re-encode every tuple into a second dictionary
    for roughly-parity merge-bound speed (``bench_a09``).  A
    python-stored database promotes by size: at least ``shard_cutoff``
    tuples (default :data:`DEFAULT_SHARD_CUTOFF`) goes straight to
    the partitioned ``"sharded"`` backend (encoding happens once
    either way), at least ``cutoff`` (default
    :data:`DEFAULT_COLUMNAR_CUTOFF`) to single-array ``"columnar"``
    execution — the regimes the benchmark trajectory shows each
    layout winning in.
    """
    check_backend(stored_backend)
    if cutoff is None:
        cutoff = DEFAULT_COLUMNAR_CUTOFF
    if shard_cutoff is None:
        shard_cutoff = DEFAULT_SHARD_CUTOFF
    if stored_backend == "sharded":
        return "sharded"
    if stored_backend == "columnar":
        return "columnar"
    if size >= shard_cutoff:
        return "sharded"
    return "columnar" if size >= cutoff else "python"


class StaleStructureError(RuntimeError):
    """A derived answer structure outlived the relations it was built on.

    Raised by direct-access / enumeration / maintenance structures when
    a relation's ``mutation_stamp`` drifted past the one recorded at
    preprocessing time and the structure was not asked to refresh.
    Serving the old snapshot would silently return pre-mutation
    answers — the bug this error makes loud.
    """


class TruncatedHistoryError(StaleStructureError):
    """``delta_since`` was asked about a stamp whose history is gone.

    The requested stamp predates the relation's last history barrier
    (compaction, bulk ``add_all`` rewrite, or a removing ``retain``),
    so the exact net delta can no longer be reconstructed from the op
    log.  Carries both stamps so recovery code and replication
    followers can dispatch on the *distance* (resync vs full re-seed)
    instead of string-matching the message.  Being a
    :class:`StaleStructureError` subclass, existing rebuild-on-stale
    handlers catch it unchanged.
    """

    def __init__(
        self, relation: str, requested_stamp: int, barrier_stamp: int
    ) -> None:
        super().__init__(
            f"relation {relation!r}: delta history for stamp "
            f"{requested_stamp} was truncated by a barrier at stamp "
            f"{barrier_stamp}; rebuild or re-seed from a snapshot"
        )
        self.relation = relation
        self.requested_stamp = requested_stamp
        self.barrier_stamp = barrier_stamp


class CorruptionError(RuntimeError):
    """On-disk durable state failed an integrity check.

    The root of the storage-corruption taxonomy
    (:mod:`repro.db.scrub`): every checkpoint file and sealed WAL
    segment is checksummed in ``MANIFEST.json``, and recovery verifies
    what it reads — so damage that is not a clean torn tail surfaces
    as a typed error *before* any wrong row can be served.  Carries
    the offending artifact path in ``artifact``.
    """

    def __init__(self, artifact: str, detail: str) -> None:
        super().__init__(f"{artifact}: {detail}")
        self.artifact = artifact
        self.detail = detail


class CorruptSnapshotError(CorruptionError):
    """A checkpoint artifact (column, meta, dictionary, manifest) is
    missing or fails its recorded size/CRC32 — recovery refuses to
    build relations from it.  Repair options, in preference order:
    :func:`repro.db.scrub.repair` (newest intact base+delta chain, an
    older snapshot plus its WAL suffix, or a replica feed), else
    ``attach(path, degraded=True)`` for read-only access to the
    intact remainder."""


class CorruptWalError(CorruptionError, TruncatedHistoryError):
    """A WAL segment is damaged *mid-log*: valid records exist beyond
    the corrupt region (or the segment fails its sealed whole-file
    CRC), so truncating to the valid prefix would silently drop
    acknowledged operations.  Distinct from a torn tail — trailing
    damage with nothing valid after it — which recovery truncates
    safely without ceremony.

    Subclasses :class:`TruncatedHistoryError`: the log's history is
    effectively truncated at the corruption point, and structure-level
    handlers that rebuild on truncated history remain correct if one
    ever escapes that far.  ``offset`` is the last trusted byte.
    """

    def __init__(self, artifact: str, offset: int, detail: str) -> None:
        RuntimeError.__init__(
            self,
            f"{artifact}: corrupt WAL record after byte {offset}: "
            f"{detail}",
        )
        self.artifact = artifact
        self.detail = detail
        self.offset = offset
        self.relation = None
        self.requested_stamp = None
        self.barrier_stamp = None


class DegradedDatabaseError(RuntimeError):
    """A mutation reached a database opened in degraded (read-only)
    mode — ``attach(path, degraded=True)`` serves the intact remainder
    of a corrupt directory for inspection and evacuation, never for
    writes (there is no WAL to make them durable)."""


def snapshot_stamps(db, names: Iterable[str]) -> Dict[str, int]:
    """The current ``mutation_stamp`` of each named relation in ``db``."""
    return {name: db[name].mutation_stamp for name in names}


def stale_relations(db, stamps: Dict[str, int]) -> Dict[str, int]:
    """The subset of ``stamps`` whose relation has since drifted.

    Maps each drifted relation name to the *recorded* (build-time)
    stamp, so callers can ask the relation for ``delta_since`` it.
    """
    return {
        name: stamp
        for name, stamp in stamps.items()
        if db[name].mutation_stamp != stamp
    }


class TupleStore(ABC):
    """What a relation backend must provide.

    Identity:   ``name``, ``arity``.
    Mutation:   ``add(row)``, ``add_all(rows)``, ``discard(row)``,
                ``retain(predicate) -> int``.
    Consistency:``mutation_stamp`` (monotone int property),
                ``delta_since(stamp)`` (net change, or
                :class:`TruncatedHistoryError` past a barrier — see
                the module docstring's mutation/consistency contract).
    Access:     ``__len__``, ``__iter__`` (value tuples),
                ``__contains__``, ``rows() -> frozenset``,
                ``is_empty()``, ``active_domain()``.
    Operators:  ``index(columns)`` / ``lookup(columns, key)`` (hash
                index as dict-of-lists over value tuples),
                ``distinct_values(column)``, ``project(columns)``,
                ``select_eq(column, value)``, ``copy()``.
    """


class FrameAlgebra(ABC):
    """What a frame backend must provide.

    Identity:  ``variables`` (distinct, ordered), ``rows`` (set of
               value tuples — attribute or cached property).
    Shape:     ``__len__``, ``__iter__``, ``__contains__``,
               ``is_empty()``, ``positions(variables)``,
               ``key_of(row, positions)``.
    Algebra:   ``project``, ``rename``, ``select_in``, ``semijoin``,
               ``join``, ``reorder``, ``to_tuples``.
    Factories: ``unit_like()``, ``empty_like(variables)`` — identity /
               absorber frames of the *same* backend, so generic
               algorithm code never hard-codes a frame class.
    """


def register_backends() -> None:
    """Register the backends' classes against the virtual ABCs."""
    from repro.db.columnar import ColumnarRelation
    from repro.db.relation import Relation
    from repro.db.sharded import ShardedColumnarRelation
    from repro.joins.frame import Frame
    from repro.joins.vectorized import ColumnarFrame

    TupleStore.register(Relation)
    TupleStore.register(ColumnarRelation)
    TupleStore.register(ShardedColumnarRelation)
    FrameAlgebra.register(Frame)
    FrameAlgebra.register(ColumnarFrame)
