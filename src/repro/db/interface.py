"""The common backend interface for tuple stores and frames.

The repo ships two execution backends behind one contract:

========================  ==============================  =============================
role                      ``"python"`` backend            ``"columnar"`` backend
========================  ==============================  =============================
tuple store (relations)   :class:`repro.db.relation.Relation`
                                                          :class:`repro.db.columnar.ColumnarRelation`
frame (operator algebra)  :class:`repro.joins.frame.Frame`
                                                          :class:`repro.joins.vectorized.ColumnarFrame`
========================  ==============================  =============================

The backend is selected with a ``backend=`` switch at the boundaries —
:class:`repro.db.database.Database`, the workload generators in
:mod:`repro.workloads.databases`, and
:func:`repro.joins.semijoin.atom_frames` — after which every join-stack
algorithm (hash joins, full reducers, Yannakakis, Generic Join) runs
unchanged: algorithms only ever call the methods declared here.

The classes below are *virtual* ABCs: implementations are registered
rather than subclassed, so each backend keeps its own storage layout
(``__slots__``-free sets vs NumPy arrays) while ``isinstance`` checks
against the interface still work.
"""

from __future__ import annotations

from abc import ABC

BACKENDS = ("python", "columnar")


def check_backend(backend: str) -> str:
    """Validate a backend name (single source of truth for all layers)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


class TupleStore(ABC):
    """What a relation backend must provide.

    Identity:  ``name``, ``arity``.
    Mutation:  ``add(row)``, ``add_all(rows)``, ``discard(row)``,
               ``retain(predicate) -> int``.
    Access:    ``__len__``, ``__iter__`` (value tuples),
               ``__contains__``, ``rows() -> frozenset``,
               ``is_empty()``, ``active_domain()``.
    Operators: ``index(columns)`` / ``lookup(columns, key)`` (hash
               index as dict-of-lists over value tuples),
               ``distinct_values(column)``, ``project(columns)``,
               ``select_eq(column, value)``, ``copy()``.
    """


class FrameAlgebra(ABC):
    """What a frame backend must provide.

    Identity:  ``variables`` (distinct, ordered), ``rows`` (set of
               value tuples — attribute or cached property).
    Shape:     ``__len__``, ``__iter__``, ``__contains__``,
               ``is_empty()``, ``positions(variables)``,
               ``key_of(row, positions)``.
    Algebra:   ``project``, ``rename``, ``select_in``, ``semijoin``,
               ``join``, ``reorder``, ``to_tuples``.
    Factories: ``unit_like()``, ``empty_like(variables)`` — identity /
               absorber frames of the *same* backend, so generic
               algorithm code never hard-codes a frame class.
    """


def register_backends() -> None:
    """Register both backends' classes against the virtual ABCs."""
    from repro.db.columnar import ColumnarRelation
    from repro.db.relation import Relation
    from repro.joins.frame import Frame
    from repro.joins.vectorized import ColumnarFrame

    TupleStore.register(Relation)
    TupleStore.register(ColumnarRelation)
    FrameAlgebra.register(Frame)
    FrameAlgebra.register(ColumnarFrame)
