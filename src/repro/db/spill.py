"""Out-of-core shard residency: an LRU pool of memmap-spillable shards.

The sharded backend (:mod:`repro.db.sharded`) keeps every shard's
compacted main segment in RAM, so the database is capped by memory even
though queries usually touch a hot subset of shards.  A
:class:`SpillPool` lifts that cap: each registered shard's main segment
can be *demoted* — saved once as a ``.npy`` file and replaced by a
read-only ``np.memmap``-backed view (``np.load(..., mmap_mode="r")``) —
and *promoted* back to a RAM array when it becomes hot again.  Cold
reads are then served by the OS page cache at file-backed cost instead
of failing to fit.

Mechanics and invariants:

* Only the compacted **main segment** spills.  Delta segments (the op
  log and its net view) stay in RAM — they are small by construction
  (auto-compaction folds them once they outgrow a fraction of main).
* Spill files are **versioned** (``...-v3.npy``): a demote after new
  content never rewrites a file an open memmap still maps; the old
  version is unlinked, and POSIX keeps its blocks alive until the last
  mapping closes.  A clean (unchanged) shard demotes again for free by
  re-mapping its current version.
* ``max_resident`` bounds how many *registered, non-empty* shards hold
  their main segment in RAM; eviction is least-recently-touched, where
  a touch is any :meth:`repro.db.columnar.ColumnarRelation.codes` call.
* All pool state is lock-guarded: shards are touched from executor
  worker threads (:mod:`repro.db.executor`).

Threaded through ``Database(spill_dir=..., max_resident_shards=...)``
and ``connect(...)``; every query path is oblivious — a memmap flows
through the NumPy kernels exactly like a RAM array, so answers are
bit-identical to the fully-resident run.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from typing import Dict, List, Optional

import numpy as np

#: Resident budget when ``spill_dir`` is given without an explicit
#: ``max_resident_shards`` — matches the substrate's MAX_SHARD_COUNT.
DEFAULT_MAX_RESIDENT = 16


class _Entry:
    """Residency record for one registered shard."""

    __slots__ = ("shard", "tick", "resident", "version", "saved_version", "path")

    def __init__(self, shard) -> None:
        self.shard = shard
        self.tick = 0
        self.resident = True
        self.version = 0  # bumped on every new main segment
        self.saved_version = -1  # version the spill file holds
        self.path: Optional[str] = None


def _safe(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name)


class SpillPool:
    """LRU residency manager for shard main segments.

    One pool per :class:`repro.db.database.Database`; shards register at
    relation construction and call back through the
    ``ColumnarRelation._spill`` hook on every read (:meth:`touch`) and
    every main-segment rewrite (:meth:`adopted`).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_resident: Optional[int] = None,
    ) -> None:
        self._owns_dir = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-spill-")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.max_resident = max(
            1, int(max_resident if max_resident is not None else DEFAULT_MAX_RESIDENT)
        )
        self._lock = threading.RLock()
        self._entries: Dict[int, _Entry] = {}  # id(shard) -> entry
        self._clock = 0
        self._closed = False

    # ------------------------------------------------------------------
    # registration and hooks
    # ------------------------------------------------------------------
    def register(self, shard) -> None:
        """Adopt ``shard``: its main segment becomes pool-managed."""
        with self._lock:
            if self._closed or id(shard) in self._entries:
                return
            entry = _Entry(shard)
            self._clock += 1
            entry.tick = self._clock
            self._entries[id(shard)] = entry
            shard._spill = self
            self._enforce()

    def touch(self, shard) -> None:
        """LRU bump on read; promote a spilled shard if budget allows.

        The resident fast path is deliberately lock-free: a racy tick
        bump can only blur LRU order, never correctness.
        """
        entry = self._entries.get(id(shard))
        if entry is None:
            return
        self._clock += 1
        entry.tick = self._clock
        if entry.resident:
            return
        with self._lock:
            if not entry.resident and self._resident_count() < self.max_resident:
                self._promote(entry)

    def adopted(self, shard) -> None:
        """New main segment installed (barrier): mark hot and dirty."""
        entry = self._entries.get(id(shard))
        if entry is None:
            return
        with self._lock:
            self._clock += 1
            entry.tick = self._clock
            entry.version += 1
            entry.resident = True
            self._enforce()

    # ------------------------------------------------------------------
    # residency transitions (callers hold the lock)
    # ------------------------------------------------------------------
    def _resident_count(self) -> int:
        return sum(
            1
            for e in self._entries.values()
            if e.resident and len(e.shard._main)
        )

    def _enforce(self) -> None:
        while self._resident_count() > self.max_resident:
            victim = min(
                (
                    e
                    for e in self._entries.values()
                    if e.resident and len(e.shard._main)
                ),
                key=lambda e: e.tick,
            )
            self._demote(victim)

    def _demote(self, entry: _Entry) -> None:
        shard = entry.shard
        if entry.saved_version != entry.version:
            path = os.path.join(
                self.directory,
                f"{_safe(shard.name)}-{id(shard):x}-v{entry.version}.npy",
            )
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                np.save(handle, np.asarray(shard._main, dtype=np.int64))
            os.replace(tmp, path)
            old = entry.path
            entry.path = path
            entry.saved_version = entry.version
            if old and old != path:
                # An open memmap of the old version keeps its blocks
                # alive until the mapping closes (POSIX unlink).
                try:
                    os.unlink(old)
                except OSError:  # pragma: no cover - already gone
                    pass
        shard._main = np.load(entry.path, mmap_mode="r")
        shard._main_set = None
        shard._invalidate()
        entry.resident = False

    def _promote(self, entry: _Entry) -> None:
        shard = entry.shard
        shard._main = np.array(shard._main, dtype=np.int64)
        shard._main_set = None
        shard._invalidate()
        entry.resident = True

    # ------------------------------------------------------------------
    # deterministic teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every spill artifact: memmaps, files, the tempdir.

        Spilled shards are promoted back to RAM arrays first (a closed
        pool must leave its shards fully usable — the session may still
        serve a last read during teardown), then every spill file is
        unlinked and, when the pool created its own temporary
        directory, the directory is removed.  Idempotent; a closed
        pool ignores further ``register``/``touch``/``adopted`` calls,
        so late callbacks from executor threads are harmless.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            if not entry.resident:
                # np.array copies the memmap's contents into RAM and
                # drops the mapping, releasing the open file.
                entry.shard._main = np.array(
                    entry.shard._main, dtype=np.int64
                )
                entry.shard._main_set = None
                entry.shard._invalidate()
                entry.resident = True
            entry.shard._spill = None
            if entry.path:
                try:
                    os.unlink(entry.path)
                except OSError:  # pragma: no cover - already gone
                    pass
                entry.path = None
        if self._owns_dir:
            try:
                os.rmdir(self.directory)
            except OSError:  # pragma: no cover - stray files left
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # introspection (tests, benchmarks, examples)
    # ------------------------------------------------------------------
    def resident_shards(self) -> int:
        with self._lock:
            return self._resident_count()

    def spilled_shards(self) -> int:
        with self._lock:
            return sum(1 for e in self._entries.values() if not e.resident)

    def spilled_bytes(self) -> int:
        with self._lock:
            total = 0
            for entry in self._entries.values():
                if entry.path and os.path.exists(entry.path):
                    total += os.path.getsize(entry.path)
            return total

    def spill_files(self) -> List[str]:
        with self._lock:
            return sorted(
                e.path for e in self._entries.values() if e.path is not None
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpillPool(dir={self.directory!r}, "
            f"max_resident={self.max_resident}, "
            f"registered={len(self._entries)})"
        )
