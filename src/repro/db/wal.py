"""The write-ahead op log: framed, checksummed, crash-truncatable.

ROADMAP open item 3 observed that the delta-segment op log *is* a
write-ahead log between barriers — this module makes that literal.  A
WAL file is a flat sequence of framed records::

    +-------+------+-------------+-------+------------------+
    | magic | type | payload_len | crc32 | pickled payload  |
    | 2 B   | 1 B  | 4 B LE      | 4 B LE| payload_len B    |
    +-------+------+-------------+-------+------------------+

The CRC covers the type byte and the payload, so a bit flip anywhere
in a record (or a torn tail from a crash mid-append) fails the check
and :func:`read_records` stops at the last fully-valid record —
recovery then *physically truncates* the torn tail and resumes
appending from the consistent prefix.  That "valid prefix" discipline
is the whole crash-safety story: the only commit point for an op is
its record being fully on disk.

Record stream semantics (the replay contract with
:class:`repro.db.database.DurableDatabase`): every record corresponds
to exactly one relation-level event —

=============  =====================================================
``REC_CREATE`` a relation was registered (name, arity, backend spec)
``REC_DICT``   the shared dictionary grew (the new values, in order)
``REC_OP``     one single-tuple insert/delete (one stamp bump)
``REC_BATCH``  one bulk coded insert (a history barrier)
``REC_REMOVE`` one bulk delete — a ``retain``'s *removed rows*
               (predicates cannot be replayed) or a follower batch
``REC_COMPACT`` an **explicit** ``compact()`` call (auto-compactions
               are a pure function of the op stream and re-trigger
               on replay, so they are not logged)
=============  =====================================================

so replaying the suffix after a snapshot reproduces content *and*
``mutation_stamp`` sequences exactly, and existing maintainers resync
transparently after recovery.

Every write/fsync site carries a :mod:`repro.util.faultpoints` hook;
the crash-safety tests arm each one in turn and prove recovery yields
a consistent prefix bit-identical to the oracle.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.util.faultpoints import InjectedCrash, declare, fault_point, fires

__all__ = [
    "CRASH_POINTS",
    "REC_BATCH",
    "REC_COMPACT",
    "REC_CREATE",
    "REC_DICT",
    "REC_OP",
    "REC_REMOVE",
    "SYNC_POLICIES",
    "WalJournal",
    "WalWriter",
    "iter_records",
    "read_records",
    "scan_wal",
    "seal_info",
]

MAGIC = b"\xc4\x57"
_HEADER = struct.Struct("<2sBLL")  # magic, type, payload_len, crc32

REC_CREATE = 1
REC_DICT = 2
REC_OP = 3
REC_BATCH = 4
REC_REMOVE = 5
REC_COMPACT = 6
_KNOWN_TYPES = frozenset(
    (REC_CREATE, REC_DICT, REC_OP, REC_BATCH, REC_REMOVE, REC_COMPACT)
)

# "always": fsync every record — an acked append is durable (the crash
# tests run under this).  "batch": fsync at flush()/checkpoint/close —
# a crash may lose the un-synced suffix but never corrupts the prefix.
# "never": leave durability to the OS (benchmark baseline).
SYNC_POLICIES = ("always", "batch", "never")

CRASH_POINTS = declare(
    "wal.append.start",
    "wal.append.torn",
    "wal.append.written",
    "wal.fsync",
    module=__name__,
)


def _frame(record_type: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes((record_type,)) + payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, record_type, len(payload), crc) + payload


class WalWriter:
    """Appends framed records to one WAL file under a sync policy."""

    def __init__(
        self,
        path: str,
        sync: str = "batch",
        truncate_to: Optional[int] = None,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}; expected one of "
                f"{SYNC_POLICIES}"
            )
        self.path = os.fspath(path)
        self.sync = sync
        if truncate_to is not None and os.path.exists(self.path):
            # Recovery found a torn/corrupt tail: cut the file back to
            # its last fully-valid record before resuming appends.
            with open(self.path, "r+b") as handle:
                handle.truncate(truncate_to)
        self._file = open(self.path, "ab")

    def append(self, record_type: int, payload_obj: Any) -> None:
        """Frame, checksum and append one record (the commit point)."""
        payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _frame(record_type, payload)
        fault_point("wal.append.start")
        if fires("wal.append.torn"):
            # Simulate a crash mid-write: half the frame reaches the
            # file, then the process dies.  Recovery must drop it.
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._file.flush()
            raise InjectedCrash("wal.append.torn")
        self._file.write(frame)
        fault_point("wal.append.written")
        if self.sync == "always":
            self._file.flush()
            fault_point("wal.fsync")
            os.fsync(self._file.fileno())

    def flush(self) -> None:
        """Flush to the OS; fsync unless the policy is ``"never"``."""
        self._file.flush()
        if self.sync != "never":
            fault_point("wal.fsync")
            os.fsync(self._file.fileno())

    def tell(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.sync != "never":
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _parse_frame(data: bytes, pos: int) -> Optional[Tuple[Any, int]]:
    """Decode one frame at ``pos``; None if it is not fully valid."""
    end = pos + _HEADER.size
    if end > len(data):
        return None
    magic, record_type, length, crc = _HEADER.unpack(data[pos:end])
    if magic != MAGIC or record_type not in _KNOWN_TYPES:
        return None
    payload = data[end : end + length]
    if len(payload) < length:
        return None
    if zlib.crc32(bytes((record_type,)) + payload) & 0xFFFFFFFF != crc:
        return None
    try:
        obj = pickle.loads(payload)
    except Exception:
        return None
    return (record_type, obj), end + length


def scan_wal(
    path: str,
) -> Tuple[List[Tuple[int, Any]], int, Optional[str]]:
    """Read a WAL and classify any damage after the valid prefix.

    Returns ``(records, valid, damage)`` where ``records`` is every
    record of the valid prefix, ``valid`` the prefix length in bytes,
    and ``damage`` one of:

    - ``None`` — the file parses end to end (or does not exist);
    - ``"torn"`` — invalid bytes at the tail with *no* valid record
      after them: the classic crash-mid-append, safe to truncate;
    - ``"corrupt"`` — a valid record exists *beyond* the first
      invalid region (mid-log bit rot / zero-fill): truncating would
      silently drop acknowledged operations, so recovery must treat
      the file as corrupt, not merely torn.

    The classifier rescans from each later ``MAGIC`` occurrence and
    demands a fully-valid frame (header, CRC, unpickle) before
    calling the damage mid-log — a stray two-byte magic inside torn
    garbage cannot trigger a false "corrupt" verdict.
    """
    records: List[Tuple[int, Any]] = []
    if not os.path.exists(path):
        return records, 0, None
    with open(path, "rb") as handle:
        data = handle.read()
    pos = 0
    while True:
        parsed = _parse_frame(data, pos)
        if parsed is None:
            break
        record, pos = parsed
        records.append(record)
    if pos == len(data):
        return records, pos, None
    # Invalid bytes follow the prefix: torn tail, or mid-log damage?
    search = data.find(MAGIC, pos + 1)
    while search != -1:
        if _parse_frame(data, search) is not None:
            return records, pos, "corrupt"
        search = data.find(MAGIC, search + 1)
    return records, pos, "torn"


def read_records(path: str) -> Tuple[List[Tuple[int, Any]], int]:
    """All valid records of a WAL file, plus the valid-prefix length.

    Stops at the first torn, corrupt, or unparseable record (short
    header, bad magic, short payload, CRC mismatch, unpicklable
    payload) and reports the byte offset of the end of the last good
    record — the writer truncates the file there before resuming.
    A missing file reads as an empty log.  Callers that must
    distinguish a safe torn tail from mid-log corruption use
    :func:`scan_wal` instead.
    """
    records, valid, _ = scan_wal(path)
    return records, valid


def iter_records(path: str, limit: Optional[int] = None):
    """Yield valid records one at a time without loading the payloads'
    decoded forms all at once — the bounded-memory read used by WAL
    file catch-up (:class:`repro.engine.replication.FollowerSession`),
    where the backlog may be far larger than a follower wants resident.
    Stops quietly at the first invalid record (the valid prefix), or
    after ``limit`` bytes of valid records when given.
    """
    if not os.path.exists(path):
        return
    with open(path, "rb") as handle:
        pos = 0
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            magic, record_type, length, crc = _HEADER.unpack(header)
            if magic != MAGIC or record_type not in _KNOWN_TYPES:
                return
            payload = handle.read(length)
            if len(payload) < length:
                return
            if (
                zlib.crc32(bytes((record_type,)) + payload) & 0xFFFFFFFF
                != crc
            ):
                return
            try:
                obj = pickle.loads(payload)
            except Exception:
                return
            pos += _HEADER.size + length
            yield record_type, obj
            if limit is not None and pos >= limit:
                return


def seal_info(path: str) -> dict:
    """The whole-file integrity stamp recorded when a WAL segment is
    sealed at rotation: matching size+CRC32 later proves the segment
    still holds exactly the records it was sealed with, without
    re-parsing frames."""
    crc = 0
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return {"size": size, "crc32": crc & 0xFFFFFFFF}


class WalJournal:
    """The relation-side durability hook, writing through a WalWriter.

    One journal serves a whole database: relations call
    ``record_op`` / ``record_batch`` / ``record_remove`` /
    ``record_compact`` (see the ``_journal`` attribute contract in
    :class:`repro.db.columnar.ColumnarRelation` and
    :class:`repro.db.relation.Relation`), and the journal lazily
    prepends ``REC_DICT`` records whenever the shared dictionary grew
    since the last record — so replay always knows every code before
    the first record using it.  Code matrices are journaled as
    ``int64`` arrays; python-backend payloads are plain value tuples.
    """

    def __init__(self, writer: WalWriter, dictionary=None) -> None:
        self.writer = writer
        self.dictionary = dictionary
        self._dict_len = len(dictionary) if dictionary is not None else 0
        #: Called (with no args) after every appended record — the
        #: database hangs its size-triggered WAL rotation here, so the
        #: rotation decision sits *between* records, never inside one.
        self.on_record = None

    def _noted(self) -> None:
        if self.on_record is not None:
            self.on_record()

    def _sync_dictionary(self) -> None:
        if self.dictionary is None:
            return
        grown = len(self.dictionary)
        if grown > self._dict_len:
            self.writer.append(
                REC_DICT, self.dictionary.values()[self._dict_len :]
            )
            self._dict_len = grown

    def record_create(self, name: str, arity: int, spec: dict) -> None:
        """A relation was registered (spec: backend/shard parameters
        plus its initial ``snapshot_state()``, so pre-populated
        registrations replay with exact stamps)."""
        self._sync_dictionary()
        self.writer.append(REC_CREATE, (name, arity, spec))
        self._noted()

    def record_op(self, name: str, coded, is_insert: bool) -> None:
        self._sync_dictionary()
        self.writer.append(REC_OP, (name, tuple(coded), bool(is_insert)))
        self._noted()

    def record_batch(self, name: str, codes) -> None:
        self._sync_dictionary()
        self.writer.append(REC_BATCH, (name, self._pack_rows(codes)))
        self._noted()

    def record_remove(self, name: str, codes) -> None:
        self._sync_dictionary()
        self.writer.append(REC_REMOVE, (name, self._pack_rows(codes)))
        self._noted()

    def record_compact(self, name: str) -> None:
        self.writer.append(REC_COMPACT, name)
        self._noted()

    @staticmethod
    def _pack_rows(rows) -> Any:
        if isinstance(rows, np.ndarray):
            return np.ascontiguousarray(rows, dtype=np.int64)
        return [tuple(r) for r in rows]
