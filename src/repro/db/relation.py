"""The :class:`Relation` tuple store.

A relation is a *set* of tuples of fixed arity (set semantics, as in the
paper).  Tuples hold hashable Python values; in experiments these are
ints, but nothing below depends on that.

Hash indexes are built lazily per column subset and cached.  An index on
columns ``(0, 2)`` maps each projection ``(t[0], t[2])`` to the list of
full tuples having it — the constant-time lookup structure that the
Yannakakis algorithm, hash joins and constant-delay enumeration all
assume from the RAM model.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.db.interface import TruncatedHistoryError

Value = object
Row = Tuple[Value, ...]


class Relation:
    """A named, fixed-arity set of tuples with cached hash indexes."""

    def __init__(
        self,
        name: str,
        arity: int,
        rows: Optional[Iterable[Sequence[Value]]] = None,
    ) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self._rows: set = set()
        self._stamp = 0
        self._indexes: Dict[Tuple[int, ...], Dict[Row, List[Row]]] = {}
        # Durability hook (repro.db.wal.WalJournal); the python backend
        # journals value tuples directly (there is no dictionary).
        self._journal = None
        if rows is not None:
            self.add_all(rows)

    @property
    def mutation_stamp(self) -> int:
        """Monotone stamp, bumped on every *effective* mutation.

        Part of the consistency contract of :mod:`repro.db.interface`:
        derived structures record it at build time and treat drift as
        staleness.  The Python backend mutates in place and can check
        membership for free, so (unlike the columnar backend) the stamp
        moves only when the tuple set actually changed.
        """
        return self._stamp

    def delta_since(self, stamp: int):
        """Net change since ``stamp`` — the Python backend keeps no
        history, so only the trivial "no change" case is answerable;
        any drifted stamp raises
        :class:`~repro.db.interface.TruncatedHistoryError` (every
        mutation is a barrier here) and callers rebuild."""
        if stamp == self._stamp:
            return (), ()
        raise TruncatedHistoryError(self.name, stamp, self._stamp)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _index_insert(self, tup: Row) -> None:
        """Reflect one inserted tuple in every cached index."""
        for cols, idx in self._indexes.items():
            key = tuple(tup[c] for c in cols)
            idx.setdefault(key, []).append(tup)

    # Buckets are plain lists (the public ``index()`` contract), so a
    # removal scans its bucket.  Past this length the scan is worse
    # than dropping the one index and rebuilding it lazily on next use.
    _REMOVE_SCAN_LIMIT = 128

    def _index_remove(self, tup: Row) -> None:
        """Reflect one removed tuple in every cached index."""
        oversized = []
        for cols, idx in self._indexes.items():
            key = tuple(tup[c] for c in cols)
            bucket = idx.get(key)
            if bucket is None:
                continue
            if len(bucket) > self._REMOVE_SCAN_LIMIT:
                oversized.append(cols)
                continue
            bucket.remove(tup)
            if not bucket:
                del idx[key]
        for cols in oversized:
            del self._indexes[cols]

    def add(self, row: Sequence[Value]) -> None:
        """Insert one tuple; duplicates are silently absorbed.

        Cached indexes are maintained incrementally (O(#indexes) per
        insert) instead of being invalidated wholesale — the difference
        between O(1) and O(m) per update for dynamic workloads.
        """
        tup = tuple(row)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, "
                f"got tuple of length {len(tup)}"
            )
        if tup not in self._rows:
            self._rows.add(tup)
            self._stamp += 1
            self._index_insert(tup)
            if self._journal is not None:
                self._journal.record_op(self.name, tup, True)

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Insert many tuples at once (indexes maintained incrementally)."""
        for row in rows:
            tup = tuple(row)
            if len(tup) != self.arity:
                raise ValueError(
                    f"relation {self.name} has arity {self.arity}, "
                    f"got tuple of length {len(tup)}"
                )
            if tup not in self._rows:
                self._rows.add(tup)
                self._stamp += 1
                self._index_insert(tup)
                if self._journal is not None:
                    self._journal.record_op(self.name, tup, True)

    def discard(self, row: Sequence[Value]) -> None:
        """Remove a tuple if present (indexes maintained incrementally)."""
        tup = tuple(row)
        if tup in self._rows:
            self._rows.discard(tup)
            self._stamp += 1
            self._index_remove(tup)
            if self._journal is not None:
                self._journal.record_op(self.name, tup, False)

    def retain(self, predicate) -> int:
        """Keep only tuples satisfying ``predicate``; return removed count.

        This is the primitive behind semijoin reduction: the Yannakakis
        passes repeatedly filter one relation by membership of a key in
        another.
        """
        keep = {t for t in self._rows if predicate(t)}
        removed = len(self._rows) - len(keep)
        if removed:
            dropped = self._rows - keep
            self._rows = keep
            self._stamp += 1
            self._indexes.clear()
            if self._journal is not None:
                self._journal.record_remove(self.name, list(dropped))
        return removed

    def remove_batch(self, rows: Iterable[Sequence[Value]]) -> int:
        """Remove many tuples in one stamp bump; return the removed count.

        The replay/replication counterpart of a removing ``retain``:
        the write-ahead log records the removed tuples (a predicate
        cannot be replayed), and recovery applies them here with the
        same single stamp advance the original ``retain`` performed.
        A batch that removes nothing touches nothing.
        """
        present = [t for t in map(tuple, rows) if t in self._rows]
        if not present:
            return 0
        self._rows.difference_update(present)
        self._stamp += 1
        self._indexes.clear()
        if self._journal is not None:
            self._journal.record_remove(self.name, present)
        return len(present)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.arity == other.arity and self._rows == other._rows

    def __hash__(self):  # relations are mutable
        raise TypeError("Relation objects are unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"

    def rows(self) -> FrozenSet[Row]:
        """A frozen snapshot of the tuple set."""
        return frozenset(self._rows)

    def is_empty(self) -> bool:
        return not self._rows

    # ------------------------------------------------------------------
    # indexes and relational operators
    # ------------------------------------------------------------------
    def index(self, columns: Sequence[int]) -> Dict[Row, List[Row]]:
        """A hash index on the given column positions (cached).

        Maps each key (projection of a tuple onto ``columns``) to the
        list of full tuples with that key.
        """
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise IndexError(
                    f"column {c} out of range for arity {self.arity}"
                )
        cached = self._indexes.get(cols)
        if cached is not None:
            return cached
        idx: Dict[Row, List[Row]] = {}
        for tup in self._rows:
            key = tuple(tup[c] for c in cols)
            idx.setdefault(key, []).append(tup)
        self._indexes[cols] = idx
        return idx

    def lookup(self, columns: Sequence[int], key: Sequence[Value]) -> List[Row]:
        """All tuples whose projection onto ``columns`` equals ``key``."""
        return self.index(columns).get(tuple(key), [])

    def distinct_values(self, column: int) -> set:
        """The set of values appearing in one column."""
        return {key[0] for key in self.index((column,))}

    def project(self, columns: Sequence[int], name: Optional[str] = None) -> "Relation":
        """Projection onto column positions (set semantics)."""
        cols = tuple(columns)
        out = Relation(name or f"{self.name}_proj", len(cols))
        out.add_all(tuple(t[c] for c in cols) for t in self._rows)
        return out

    def select_eq(self, column: int, value: Value) -> "Relation":
        """Selection ``column = value``."""
        out = Relation(f"{self.name}_sel", self.arity)
        out.add_all(self.lookup((column,), (value,)))
        return out

    def active_domain(self) -> set:
        """All values appearing anywhere in the relation."""
        dom: set = set()
        for tup in self._rows:
            dom.update(tup)
        return dom

    def copy(self, name: Optional[str] = None) -> "Relation":
        """An independent copy (indexes are not shared)."""
        return Relation(name or self.name, self.arity, self._rows)

    # ------------------------------------------------------------------
    # durability (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Tuple[List[Row], int]:
        """The tuple set (as a list) and current stamp, for checkpointing."""
        return list(self._rows), self._stamp

    def restore_state(self, rows: Iterable[Sequence[Value]], stamp: int) -> None:
        """Install a snapshot: ``rows`` becomes the tuple set at ``stamp``."""
        self._rows = set(map(tuple, rows))
        self._stamp = int(stamp)
        self._indexes.clear()
