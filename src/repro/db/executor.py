"""Shard execution layer: serial and thread-pooled per-shard map/reduce.

Every per-shard loop in the sharded substrate — batched ingestion and
``delta_since`` assembly (:mod:`repro.db.sharded`), frame algebra over
shard parts (:mod:`repro.joins.vectorized`), per-shard FAQ message
computation (:mod:`repro.semiring.faq`), and the session's mirror
fan-out (:mod:`repro.engine.session`) — dispatches through a
:class:`ShardExecutor` instead of a bare ``for`` loop.

Two implementations share the contract "``map(fn, items)`` returns
``[fn(item) for item in items]`` in input order":

* :class:`SerialExecutor` runs inline.  It is the default on a
  single-core host and whenever per-item work must stay serialized
  (e.g. WAL-journaled mutations, whose log records must not
  interleave).
* :class:`ParallelExecutor` runs items on a shared
  :class:`concurrent.futures.ThreadPoolExecutor`.  Threads (not
  processes) are the right pool here because the per-shard kernels are
  NumPy reductions and gathers that release the GIL; shard state is
  disjoint, so per-shard calls never contend on relation internals.

Because ``pool.map`` yields results in submission order, a parallel map
over shards is a *drop-in* replacement for the serial loop: downstream
merges see shard parts in shard-index order and results stay
bit-identical to serial execution.

Worker count resolution (:func:`resolve_workers`): an explicit value
wins, then the ``REPRO_WORKERS`` environment variable, then
``os.cpu_count()``.  ``connect(workers=...)`` threads an explicit value
through :class:`repro.db.database.Database` down to every relation and
frame.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment override for the default worker count (0/1 => serial).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > cpu count."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


class ShardExecutor:
    """Maps a function over per-shard work items, preserving order.

    The base class doubles as the serial strategy; subclasses override
    :meth:`map`.  ``workers`` is informational (planner / ``explain()``).
    """

    workers: int = 1

    def map(
        self, fn: Callable[[_T], _R], items: Iterable[_T]
    ) -> List[_R]:
        return [fn(item) for item in items]

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def stdlib_pool(self) -> Optional[ThreadPoolExecutor]:
        """The underlying :mod:`concurrent.futures` pool, if any.

        Serial executors have none and return ``None``.  Callers that
        submit work which may itself re-enter :meth:`map` (e.g. an
        outer engine call fanning out over shards) must NOT run that
        work on this pool: outer calls waiting on inner shard tasks in
        the same bounded pool deadlock once it saturates.  The asyncio
        serving layer keeps its own dedicated pool for exactly that
        reason.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(ShardExecutor):
    """Inline execution; the reference every parallel run must match."""


#: Process-wide serial singleton (executors are stateless re: shards).
SERIAL = SerialExecutor()

# A worker thread that re-enters map() (e.g. a parallel join inside a
# parallel aggregation) must run inline: waiting on the same bounded
# pool from inside the pool can deadlock once all workers block.
_REENTRANT = threading.local()


class ParallelExecutor(ShardExecutor):
    """Ordered map over a lazily created, reusable thread pool."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def map(
        self, fn: Callable[[_T], _R], items: Iterable[_T]
    ) -> List[_R]:
        work: Sequence[_T] = items if isinstance(items, Sequence) else list(items)
        if len(work) <= 1 or getattr(_REENTRANT, "active", False):
            return [fn(item) for item in work]

        def call(item: _T) -> _R:
            _REENTRANT.active = True
            try:
                return fn(item)
            finally:
                _REENTRANT.active = False

        # pool.map yields results in submission order, so shard index
        # order — and therefore every downstream merge — is preserved.
        return list(self._ensure_pool().map(call, work))

    def stdlib_pool(self) -> ThreadPoolExecutor:
        return self._ensure_pool()

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# One shared pool per worker count: sessions, databases and mirrors
# asking for the same parallelism reuse threads instead of multiplying
# pools.
_SHARED: dict = {}
_SHARED_LOCK = threading.Lock()


def executor_for(workers: Optional[int] = None) -> ShardExecutor:
    """Executor for a worker count; serial when it resolves to 1."""
    count = resolve_workers(workers)
    if count <= 1:
        return SERIAL
    with _SHARED_LOCK:
        executor = _SHARED.get(count)
        if executor is None:
            executor = ParallelExecutor(count)
            _SHARED[count] = executor
        return executor


def close_shared_pools() -> None:
    """Shut down every shared thread pool deterministically.

    Shared executors stay registered (they are keyed by worker count
    and self-heal — the next ``map`` lazily recreates the pool), so
    this is safe to call at any quiesce point: session teardown in a
    long-lived process, test teardown, interpreter exit.  Without it,
    idle pool threads linger until process exit.
    """
    with _SHARED_LOCK:
        executors = list(_SHARED.values())
    for executor in executors:
        executor.close()


_DEFAULT: Optional[ShardExecutor] = None
_DEFAULT_LOCK = threading.Lock()


def get_default_executor() -> ShardExecutor:
    """Process default used when no executor was threaded through."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = executor_for(None)
        return _DEFAULT


def set_default_executor(
    executor: Union[ShardExecutor, int, None],
) -> ShardExecutor:
    """Override (int => pool of that size, None => re-resolve lazily)."""
    global _DEFAULT
    if isinstance(executor, int):
        executor = executor_for(executor)
    with _DEFAULT_LOCK:
        _DEFAULT = executor
    return get_default_executor()


def executor_of(obj: object) -> ShardExecutor:
    """``obj.executor`` if one was injected, else the process default."""
    executor = getattr(obj, "executor", None)
    return executor if executor is not None else get_default_executor()
