"""The :class:`Database`: a name-indexed collection of relations.

A database instance ``D`` for a query ``q`` supplies one relation per
relation *symbol* of ``q``.  Self-joins mean several atoms can share a
symbol and hence a relation.  The input size ``m = size(D)`` is the
total number of tuples across relations — the parameter every runtime
bound in the paper is stated in.

:class:`DurableDatabase` binds a database to an on-disk directory:
every mutation is mirrored into a write-ahead log
(:mod:`repro.db.wal`), :meth:`DurableDatabase.checkpoint` rolls the
log into an atomic snapshot (:mod:`repro.db.checkpoint`), and
:func:`attach` recovers snapshot + log suffix after a crash.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.interface import BACKENDS, check_backend
from repro.db.relation import Relation, Row, Value
from repro.db.sharded import ShardedColumnarRelation


class Database:
    """A mapping from relation names to relation objects.

    The ``backend`` switch selects the storage class for relations the
    database creates itself (:meth:`from_dict`, :meth:`ensure_relation`,
    :meth:`to_backend`): ``"python"`` (default) builds hash-set
    :class:`Relation` objects, ``"columnar"`` builds dictionary-encoded
    :class:`~repro.db.columnar.ColumnarRelation` objects that all share
    one value :class:`~repro.db.columnar.Dictionary`, so the vectorized
    join stack compares int codes instead of Python values, and
    ``"sharded"`` builds hash-partitioned
    :class:`~repro.db.sharded.ShardedColumnarRelation` objects
    (``shard_count`` shards each, over the same shared dictionary) for
    batched ingestion and merge-based distributed aggregation.
    """

    def __init__(
        self,
        relations: Optional[Iterable[Relation]] = None,
        backend: str = "python",
        shard_count: Optional[int] = None,
    ) -> None:
        self.backend = check_backend(backend)
        self._dictionary: Optional[Dictionary] = (
            Dictionary() if backend in ("columnar", "sharded") else None
        )
        self.shard_count = shard_count
        self._relations: Dict[str, Relation] = {}
        if relations is not None:
            for rel in relations:
                self.add_relation(rel)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_relation(
        self, name: str, arity: int, rows: Optional[Iterable] = None
    ):
        """A relation of this database's backend (not yet registered).

        Columnar and sharded relations share the database-wide value
        dictionary, so joins between them compare codes directly.
        """
        if self.backend == "sharded":
            return ShardedColumnarRelation(
                name,
                arity,
                rows,
                dictionary=self._dictionary,
                shard_count=self.shard_count,
            )
        if self.backend == "columnar":
            return ColumnarRelation(
                name, arity, rows, dictionary=self._dictionary
            )
        return Relation(name, arity, rows)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[Value]]],
        backend: str = "python",
        shard_count: Optional[int] = None,
    ) -> "Database":
        """Build a database from ``{name: iterable of tuples}``.

        Arity is inferred from the first tuple of each relation; empty
        iterables are rejected here because their arity is ambiguous
        (use :meth:`add_relation` with an explicit arity instead).
        """
        db = cls(backend=backend, shard_count=shard_count)
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise ValueError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "construct a Relation with explicit arity instead"
                )
            db.add_relation(db.new_relation(name, len(rows[0]), rows))
        return db

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; names must be unique.

        Any backend's relation object may be registered regardless of
        the database's own backend — the frame layer coerces between
        backends where needed.
        """
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def ensure_relation(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating an empty one if absent.

        Created relations use the database's backend.
        """
        rel = self._relations.get(name)
        if rel is None:
            rel = self.new_relation(name, arity)
            self._relations[name] = rel
        elif rel.arity != arity:
            raise ValueError(
                f"relation {name!r} has arity {rel.arity}, expected {arity}"
            )
        return rel

    def to_backend(
        self, backend: str, shard_count: Optional[int] = None
    ) -> "Database":
        """A copy of this database with every relation converted.

        Converting to ``"columnar"`` bulk-encodes each relation into a
        dictionary shared across the new database; ``"sharded"``
        additionally hash-routes each relation's batch across
        ``shard_count`` shards (default: the size heuristic
        :func:`repro.db.interface.preferred_shard_count`); converting
        to ``"python"`` decodes back to tuple sets.  A no-op backend
        still returns an independent copy.
        """
        if backend == "sharded" and shard_count is None:
            from repro.db.interface import preferred_shard_count

            shard_count = self.shard_count or preferred_shard_count(
                self.size()
            )
        out = Database(backend=backend, shard_count=shard_count)
        for rel in self._relations.values():
            out.add_relation(out.new_relation(rel.name, rel.arity, rel))
        return out

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in database") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Iterator[str]:
        return iter(self._relations.keys())

    def size(self) -> int:
        """Total number of tuples, the ``m`` of every bound in the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def active_domain(self) -> set:
        """Union of all values appearing in any relation."""
        dom: set = set()
        for rel in self._relations.values():
            dom.update(rel.active_domain())
        return dom

    def copy(self) -> "Database":
        """Deep copy (relations are copied, indexes are not shared).

        The semijoin passes of the Yannakakis algorithm mutate relations
        in place, so algorithm entry points copy their input first to
        keep the public API side-effect free.
        """
        out = Database(backend=self.backend, shard_count=self.shard_count)
        # Copied columnar relations keep their (append-only) dictionary;
        # the copy must create new relations against that same one to
        # preserve the shared-dictionary invariant.
        out._dictionary = self._dictionary
        for rel in self._relations.values():
            out.add_relation(rel.copy())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{r.name}:{r.arity}({len(r)})" for r in self._relations.values()
        )
        return f"Database({parts})"


class DurableDatabase(Database):
    """A :class:`Database` bound to an on-disk directory.

    Layout under ``path``: ``MANIFEST.json`` (the atomic commit
    point), one active WAL file ``wal-<n>.log`` (every mutation,
    framed and CRC-checked — :mod:`repro.db.wal`), and at most one
    committed snapshot directory ``ckpt-<n>/``
    (:mod:`repro.db.checkpoint`).

    Opening an existing directory *recovers*: snapshot columns are
    ``np.load``-ed, the dictionary re-seeded, the WAL suffix replayed
    record-by-record (stopping at — and physically truncating — the
    first torn record), and the recovered relations resume with the
    same content and ``mutation_stamp`` values every fully-logged
    operation had reached, so derived structures resync through the
    ordinary ``delta_since`` contract.  The stored backend always
    wins over the constructor argument on recovery.

    ``sync``: ``"always"`` fsyncs per record (an acked mutation
    survives any crash), ``"batch"`` (default) fsyncs at
    checkpoint/flush/close, ``"never"`` leaves it to the OS.
    """

    def __init__(
        self,
        path: str,
        backend: str = "columnar",
        shard_count: Optional[int] = None,
        sync: str = "batch",
    ) -> None:
        from repro.db import checkpoint as ckpt
        from repro.db.wal import WalJournal, WalWriter, read_records

        self.path = os.fspath(path)
        self.sync = sync
        os.makedirs(self.path, exist_ok=True)
        manifest = ckpt.read_manifest(self.path)
        if manifest is None:
            super().__init__(backend=backend, shard_count=shard_count)
            self._ckpt_index: Optional[int] = None
            self._wal_name = ckpt.wal_filename(0)
            wal_path = os.path.join(self.path, self._wal_name)
            self._writer = WalWriter(wal_path, sync=sync)
            ckpt.commit_manifest(self.path, self._manifest_dict())
        else:
            super().__init__(
                backend=manifest["backend"],
                shard_count=manifest["shard_count"],
            )
            self._ckpt_index = manifest["checkpoint"]
            self._wal_name = manifest["wal"]
            if self._ckpt_index is not None:
                if self._dictionary is not None:
                    for value in ckpt.load_dictionary(
                        self.path, self._ckpt_index
                    ):
                        self._dictionary.encode(value)
                relations, _ = ckpt.load_snapshot(
                    self.path, self._ckpt_index, self._dictionary
                )
                for rel in relations:
                    self._relations[rel.name] = rel
            wal_path = os.path.join(self.path, self._wal_name)
            records, valid = read_records(wal_path)
            self._replay(records)
            self._writer = WalWriter(
                wal_path, sync=sync, truncate_to=valid
            )
        self._journal = WalJournal(self._writer, self._dictionary)
        for rel in self._relations.values():
            rel._journal = self._journal
        self._collect_garbage()

    # ------------------------------------------------------------------
    # registration (journals a CREATE record, attaches the hook)
    # ------------------------------------------------------------------
    def _relation_spec(self, rel) -> Dict[str, Any]:
        if isinstance(rel, ShardedColumnarRelation):
            return {
                "kind": "sharded",
                "shard_count": rel.shard_count,
                "key_column": rel.key_column,
                "state": rel.snapshot_state(),
            }
        if isinstance(rel, ColumnarRelation):
            return {"kind": "columnar", "state": rel.snapshot_state()}
        return {"kind": "python", "state": rel.snapshot_state()}

    def _register_durable(self, rel) -> None:
        if (
            isinstance(rel, ColumnarRelation)
            and rel.dictionary is not self._dictionary
        ):
            raise ValueError(
                f"relation {rel.name!r} does not share the durable "
                "database's dictionary; create it via new_relation / "
                "ensure_relation instead"
            )
        self._journal.record_create(
            rel.name, rel.arity, self._relation_spec(rel)
        )
        rel._journal = self._journal

    def add_relation(self, relation) -> None:
        super().add_relation(relation)
        self._register_durable(relation)

    def ensure_relation(self, name: str, arity: int):
        created = name not in self._relations
        rel = super().ensure_relation(name, arity)
        if created:
            self._register_durable(rel)
        return rel

    # ------------------------------------------------------------------
    # recovery replay
    # ------------------------------------------------------------------
    def _replay(self, records) -> None:
        from repro.db.wal import (
            REC_BATCH,
            REC_COMPACT,
            REC_CREATE,
            REC_DICT,
            REC_OP,
            REC_REMOVE,
        )

        for record_type, payload in records:
            if record_type == REC_DICT:
                encode = self._dictionary.encode
                for value in payload:
                    encode(value)
            elif record_type == REC_CREATE:
                name, arity, spec = payload
                kind = spec["kind"]
                if kind == "sharded":
                    rel = ShardedColumnarRelation(
                        name,
                        arity,
                        dictionary=self._dictionary,
                        shard_count=spec["shard_count"],
                        key_column=spec["key_column"],
                    )
                    rel.restore_state(spec["state"])
                elif kind == "columnar":
                    rel = ColumnarRelation(
                        name, arity, dictionary=self._dictionary
                    )
                    rel.restore_state(*spec["state"])
                else:
                    rel = Relation(name, arity)
                    rel.restore_state(*spec["state"])
                self._relations[name] = rel
            elif record_type == REC_OP:
                name, coded, insert = payload
                rel = self._relations[name]
                if isinstance(rel, ColumnarRelation):
                    rel.apply_coded(coded, insert)
                elif insert:
                    rel.add(coded)
                else:
                    rel.discard(coded)
            elif record_type == REC_BATCH:
                name, codes = payload
                self._relations[name].add_coded_batch(codes)
            elif record_type == REC_REMOVE:
                name, rows = payload
                rel = self._relations[name]
                if isinstance(rel, ColumnarRelation):
                    rel.remove_coded_batch(rows)
                else:
                    rel.remove_batch(rows)
            elif record_type == REC_COMPACT:
                self._relations[payload].compact()

    # ------------------------------------------------------------------
    # checkpoint / lifecycle
    # ------------------------------------------------------------------
    @property
    def checkpoint_index(self) -> Optional[int]:
        """The committed checkpoint number (None before the first)."""
        return self._ckpt_index

    def _manifest_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "backend": self.backend,
            "shard_count": self.shard_count,
            "checkpoint": self._ckpt_index,
            "wal": self._wal_name,
        }

    def checkpoint(self) -> str:
        """Snapshot every relation and rotate the WAL; return the path.

        The sequence is crash-safe at every step: the snapshot is
        written to a temp directory and renamed, the fresh (empty)
        WAL file is created, and only then is the manifest atomically
        replaced — the single commit point.  A crash anywhere earlier
        leaves the previous checkpoint plus the previous (complete)
        WAL as the recovery source; a crash after the swap merely
        leaves garbage files for the next checkpoint to collect.
        """
        from repro.db import checkpoint as ckpt
        from repro.db.wal import WalJournal, WalWriter
        from repro.util.faultpoints import fault_point

        index = (self._ckpt_index or 0) + 1
        self._writer.flush()
        snapshot_path = ckpt.write_snapshot(self.path, self, index)
        fault_point("ckpt.wal.create")
        new_wal = ckpt.wal_filename(index)
        new_wal_path = os.path.join(self.path, new_wal)
        with open(new_wal_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        previous_index, previous_wal = self._ckpt_index, self._wal_name
        self._ckpt_index, self._wal_name = index, new_wal
        try:
            ckpt.commit_manifest(self.path, self._manifest_dict())
        except BaseException:
            self._ckpt_index, self._wal_name = previous_index, previous_wal
            raise
        # Committed: swap the journal onto the fresh log and collect
        # the superseded files.
        old_writer = self._writer
        self._writer = WalWriter(new_wal_path, sync=self.sync)
        self._journal.writer = self._writer
        old_writer.close()
        self._collect_garbage()
        return snapshot_path

    def _collect_garbage(self) -> None:
        """Best-effort removal of superseded ckpt-*/wal-* files."""
        import shutil

        from repro.db.checkpoint import snapshot_dirname

        keep = {self._wal_name}
        if self._ckpt_index is not None:
            keep.add(snapshot_dirname(self._ckpt_index))
        for entry in os.listdir(self.path):
            if entry in keep or not (
                entry.startswith("ckpt-") or entry.startswith("wal-")
            ):
                continue
            full = os.path.join(self.path, entry)
            try:
                if os.path.isdir(full):
                    shutil.rmtree(full)
                else:
                    os.remove(full)
            except OSError:  # pragma: no cover - cleanup is advisory
                pass

    def flush(self) -> None:
        """Flush (and, policy permitting, fsync) the active WAL."""
        self._writer.flush()

    def close(self) -> None:
        """Flush and close the WAL; the database stays readable."""
        self._writer.close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(
    path: str,
    backend: str = "columnar",
    shard_count: Optional[int] = None,
    sync: str = "batch",
) -> DurableDatabase:
    """Open (creating or recovering) a durable database directory.

    The one-call durability entry point: a fresh directory becomes an
    empty durable database of the requested backend; an existing one
    is recovered from its committed checkpoint plus WAL suffix (the
    stored backend wins over the argument).
    """
    return DurableDatabase(
        path, backend=backend, shard_count=shard_count, sync=sync
    )
