"""The :class:`Database`: a name-indexed collection of relations.

A database instance ``D`` for a query ``q`` supplies one relation per
relation *symbol* of ``q``.  Self-joins mean several atoms can share a
symbol and hence a relation.  The input size ``m = size(D)`` is the
total number of tuples across relations — the parameter every runtime
bound in the paper is stated in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.interface import BACKENDS, check_backend
from repro.db.relation import Relation, Row, Value
from repro.db.sharded import ShardedColumnarRelation


class Database:
    """A mapping from relation names to relation objects.

    The ``backend`` switch selects the storage class for relations the
    database creates itself (:meth:`from_dict`, :meth:`ensure_relation`,
    :meth:`to_backend`): ``"python"`` (default) builds hash-set
    :class:`Relation` objects, ``"columnar"`` builds dictionary-encoded
    :class:`~repro.db.columnar.ColumnarRelation` objects that all share
    one value :class:`~repro.db.columnar.Dictionary`, so the vectorized
    join stack compares int codes instead of Python values, and
    ``"sharded"`` builds hash-partitioned
    :class:`~repro.db.sharded.ShardedColumnarRelation` objects
    (``shard_count`` shards each, over the same shared dictionary) for
    batched ingestion and merge-based distributed aggregation.
    """

    def __init__(
        self,
        relations: Optional[Iterable[Relation]] = None,
        backend: str = "python",
        shard_count: Optional[int] = None,
    ) -> None:
        self.backend = check_backend(backend)
        self._dictionary: Optional[Dictionary] = (
            Dictionary() if backend in ("columnar", "sharded") else None
        )
        self.shard_count = shard_count
        self._relations: Dict[str, Relation] = {}
        if relations is not None:
            for rel in relations:
                self.add_relation(rel)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_relation(
        self, name: str, arity: int, rows: Optional[Iterable] = None
    ):
        """A relation of this database's backend (not yet registered).

        Columnar and sharded relations share the database-wide value
        dictionary, so joins between them compare codes directly.
        """
        if self.backend == "sharded":
            return ShardedColumnarRelation(
                name,
                arity,
                rows,
                dictionary=self._dictionary,
                shard_count=self.shard_count,
            )
        if self.backend == "columnar":
            return ColumnarRelation(
                name, arity, rows, dictionary=self._dictionary
            )
        return Relation(name, arity, rows)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[Value]]],
        backend: str = "python",
        shard_count: Optional[int] = None,
    ) -> "Database":
        """Build a database from ``{name: iterable of tuples}``.

        Arity is inferred from the first tuple of each relation; empty
        iterables are rejected here because their arity is ambiguous
        (use :meth:`add_relation` with an explicit arity instead).
        """
        db = cls(backend=backend, shard_count=shard_count)
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise ValueError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "construct a Relation with explicit arity instead"
                )
            db.add_relation(db.new_relation(name, len(rows[0]), rows))
        return db

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; names must be unique.

        Any backend's relation object may be registered regardless of
        the database's own backend — the frame layer coerces between
        backends where needed.
        """
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def ensure_relation(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating an empty one if absent.

        Created relations use the database's backend.
        """
        rel = self._relations.get(name)
        if rel is None:
            rel = self.new_relation(name, arity)
            self._relations[name] = rel
        elif rel.arity != arity:
            raise ValueError(
                f"relation {name!r} has arity {rel.arity}, expected {arity}"
            )
        return rel

    def to_backend(
        self, backend: str, shard_count: Optional[int] = None
    ) -> "Database":
        """A copy of this database with every relation converted.

        Converting to ``"columnar"`` bulk-encodes each relation into a
        dictionary shared across the new database; ``"sharded"``
        additionally hash-routes each relation's batch across
        ``shard_count`` shards (default: the size heuristic
        :func:`repro.db.interface.preferred_shard_count`); converting
        to ``"python"`` decodes back to tuple sets.  A no-op backend
        still returns an independent copy.
        """
        if backend == "sharded" and shard_count is None:
            from repro.db.interface import preferred_shard_count

            shard_count = self.shard_count or preferred_shard_count(
                self.size()
            )
        out = Database(backend=backend, shard_count=shard_count)
        for rel in self._relations.values():
            out.add_relation(out.new_relation(rel.name, rel.arity, rel))
        return out

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in database") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Iterator[str]:
        return iter(self._relations.keys())

    def size(self) -> int:
        """Total number of tuples, the ``m`` of every bound in the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def active_domain(self) -> set:
        """Union of all values appearing in any relation."""
        dom: set = set()
        for rel in self._relations.values():
            dom.update(rel.active_domain())
        return dom

    def copy(self) -> "Database":
        """Deep copy (relations are copied, indexes are not shared).

        The semijoin passes of the Yannakakis algorithm mutate relations
        in place, so algorithm entry points copy their input first to
        keep the public API side-effect free.
        """
        out = Database(backend=self.backend, shard_count=self.shard_count)
        # Copied columnar relations keep their (append-only) dictionary;
        # the copy must create new relations against that same one to
        # preserve the shared-dictionary invariant.
        out._dictionary = self._dictionary
        for rel in self._relations.values():
            out.add_relation(rel.copy())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{r.name}:{r.arity}({len(r)})" for r in self._relations.values()
        )
        return f"Database({parts})"
