"""The :class:`Database`: a name-indexed collection of relations.

A database instance ``D`` for a query ``q`` supplies one relation per
relation *symbol* of ``q``.  Self-joins mean several atoms can share a
symbol and hence a relation.  The input size ``m = size(D)`` is the
total number of tuples across relations — the parameter every runtime
bound in the paper is stated in.

:class:`DurableDatabase` binds a database to an on-disk directory:
every mutation is mirrored into a write-ahead log
(:mod:`repro.db.wal`), :meth:`DurableDatabase.checkpoint` rolls the
log into an atomic snapshot (:mod:`repro.db.checkpoint`), and
:func:`attach` recovers snapshot + log suffix after a crash.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.executor import executor_for
from repro.db.interface import (
    BACKENDS,
    CorruptSnapshotError,
    CorruptWalError,
    DegradedDatabaseError,
    check_backend,
)
from repro.db.relation import Relation, Row, Value
from repro.db.sharded import ShardedColumnarRelation


class Database:
    """A mapping from relation names to relation objects.

    The ``backend`` switch selects the storage class for relations the
    database creates itself (:meth:`from_dict`, :meth:`ensure_relation`,
    :meth:`to_backend`): ``"python"`` (default) builds hash-set
    :class:`Relation` objects, ``"columnar"`` builds dictionary-encoded
    :class:`~repro.db.columnar.ColumnarRelation` objects that all share
    one value :class:`~repro.db.columnar.Dictionary`, so the vectorized
    join stack compares int codes instead of Python values, and
    ``"sharded"`` builds hash-partitioned
    :class:`~repro.db.sharded.ShardedColumnarRelation` objects
    (``shard_count`` shards each, over the same shared dictionary) for
    batched ingestion and merge-based distributed aggregation.
    """

    def __init__(
        self,
        relations: Optional[Iterable[Relation]] = None,
        backend: str = "python",
        shard_count: Optional[int] = None,
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
    ) -> None:
        self.backend = check_backend(backend)
        self._dictionary: Optional[Dictionary] = (
            Dictionary() if backend in ("columnar", "sharded") else None
        )
        self.shard_count = shard_count
        # Per-shard execution / residency knobs (sharded backend only):
        # workers sizes the ShardExecutor every created relation (and
        # frame derived from it) dispatches through; spill_dir /
        # max_resident_shards configure an LRU SpillPool that keeps
        # only the hot shards' main segments in RAM (out-of-core).
        self.workers = workers
        self.executor = (
            executor_for(workers) if workers is not None else None
        )
        self.spill = None
        if spill_dir is not None or max_resident_shards is not None:
            from repro.db.spill import SpillPool

            self.spill = SpillPool(spill_dir, max_resident_shards)
        self._relations: Dict[str, Relation] = {}
        if relations is not None:
            for rel in relations:
                self.add_relation(rel)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_relation(
        self, name: str, arity: int, rows: Optional[Iterable] = None
    ):
        """A relation of this database's backend (not yet registered).

        Columnar and sharded relations share the database-wide value
        dictionary, so joins between them compare codes directly.
        """
        if self.backend == "sharded":
            return ShardedColumnarRelation(
                name,
                arity,
                rows,
                dictionary=self._dictionary,
                shard_count=self.shard_count,
                executor=self.executor,
                spill=self.spill,
            )
        if self.backend == "columnar":
            return ColumnarRelation(
                name, arity, rows, dictionary=self._dictionary
            )
        return Relation(name, arity, rows)

    def configure_shard_runtime(
        self,
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
    ) -> None:
        """Set the shard executor / spill pool after construction.

        ``workers`` replaces the database executor and rewires every
        existing sharded relation to it; the spill knobs create an LRU
        :class:`~repro.db.spill.SpillPool` (once — a database keeps
        its first pool) and register existing sharded relations with
        it.  ``None`` arguments leave the corresponding setting alone.
        """
        if workers is not None:
            self.workers = workers
            self.executor = executor_for(workers)
            for rel in self._relations.values():
                if isinstance(rel, ShardedColumnarRelation):
                    rel.executor = self.executor
        if (
            spill_dir is not None or max_resident_shards is not None
        ) and self.spill is None:
            from repro.db.spill import SpillPool

            self.spill = SpillPool(spill_dir, max_resident_shards)
            for rel in self._relations.values():
                if (
                    isinstance(rel, ShardedColumnarRelation)
                    and rel.spill is None
                ):
                    rel.attach_spill(self.spill)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[Value]]],
        backend: str = "python",
        shard_count: Optional[int] = None,
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
    ) -> "Database":
        """Build a database from ``{name: iterable of tuples}``.

        Arity is inferred from the first tuple of each relation; empty
        iterables are rejected here because their arity is ambiguous
        (use :meth:`add_relation` with an explicit arity instead).
        """
        db = cls(
            backend=backend,
            shard_count=shard_count,
            workers=workers,
            spill_dir=spill_dir,
            max_resident_shards=max_resident_shards,
        )
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                raise ValueError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "construct a Relation with explicit arity instead"
                )
            db.add_relation(db.new_relation(name, len(rows[0]), rows))
        return db

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; names must be unique.

        Any backend's relation object may be registered regardless of
        the database's own backend — the frame layer coerces between
        backends where needed.
        """
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def ensure_relation(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating an empty one if absent.

        Created relations use the database's backend.
        """
        rel = self._relations.get(name)
        if rel is None:
            rel = self.new_relation(name, arity)
            self._relations[name] = rel
        elif rel.arity != arity:
            raise ValueError(
                f"relation {name!r} has arity {rel.arity}, expected {arity}"
            )
        return rel

    def to_backend(
        self, backend: str, shard_count: Optional[int] = None
    ) -> "Database":
        """A copy of this database with every relation converted.

        Converting to ``"columnar"`` bulk-encodes each relation into a
        dictionary shared across the new database; ``"sharded"``
        additionally hash-routes each relation's batch across
        ``shard_count`` shards (default: the size heuristic
        :func:`repro.db.interface.preferred_shard_count`); converting
        to ``"python"`` decodes back to tuple sets.  A no-op backend
        still returns an independent copy.
        """
        if backend == "sharded" and shard_count is None:
            from repro.db.interface import preferred_shard_count

            shard_count = self.shard_count or preferred_shard_count(
                self.size()
            )
        # Worker configuration carries over (it is backend-agnostic);
        # a spill pool does not — it manages the residency of exactly
        # the shards registered with it.
        out = Database(
            backend=backend, shard_count=shard_count, workers=self.workers
        )
        for rel in self._relations.values():
            out.add_relation(out.new_relation(rel.name, rel.arity, rel))
        return out

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r} in database") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Iterator[str]:
        return iter(self._relations.keys())

    def size(self) -> int:
        """Total number of tuples, the ``m`` of every bound in the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def active_domain(self) -> set:
        """Union of all values appearing in any relation."""
        dom: set = set()
        for rel in self._relations.values():
            dom.update(rel.active_domain())
        return dom

    def copy(self) -> "Database":
        """Deep copy (relations are copied, indexes are not shared).

        The semijoin passes of the Yannakakis algorithm mutate relations
        in place, so algorithm entry points copy their input first to
        keep the public API side-effect free.
        """
        out = Database(
            backend=self.backend,
            shard_count=self.shard_count,
            workers=self.workers,
        )
        # Copied columnar relations keep their (append-only) dictionary;
        # the copy must create new relations against that same one to
        # preserve the shared-dictionary invariant.
        out._dictionary = self._dictionary
        for rel in self._relations.values():
            out.add_relation(rel.copy())
        return out

    def close(self) -> None:
        """Release runtime resources deterministically (idempotent).

        In-memory databases only hold one kind of external resource —
        the spill pool's memmaps and ``.npy`` files — and closing
        returns every spilled shard to RAM and deletes the files.  The
        shard executor is deliberately *not* shut down here: pools are
        process-shared per worker count (see
        :func:`repro.db.executor.close_shared_pools` for an explicit
        global quiesce).  The database stays readable after close.
        """
        if self.spill is not None:
            self.spill.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{r.name}:{r.arity}({len(r)})" for r in self._relations.values()
        )
        return f"Database({parts})"


def replay_records(
    relations: Dict[str, Any], dictionary, records
) -> None:
    """Apply WAL records to a name→relation mapping, in order.

    The single replay semantics shared by crash recovery
    (:class:`DurableDatabase`) and WAL-file follower catch-up
    (:class:`repro.engine.replication.FollowerSession`): every record
    reproduces exactly one relation-level event, so replaying a
    suffix after a snapshot restores content *and*
    ``mutation_stamp`` sequences bit-exactly.
    """
    from repro.db.wal import (
        REC_BATCH,
        REC_COMPACT,
        REC_CREATE,
        REC_DICT,
        REC_OP,
        REC_REMOVE,
    )

    for record_type, payload in records:
        if record_type == REC_DICT:
            encode = dictionary.encode
            for value in payload:
                encode(value)
        elif record_type == REC_CREATE:
            name, arity, spec = payload
            kind = spec["kind"]
            if kind == "sharded":
                rel = ShardedColumnarRelation(
                    name,
                    arity,
                    dictionary=dictionary,
                    shard_count=spec["shard_count"],
                    key_column=spec["key_column"],
                )
                rel.restore_state(spec["state"])
            elif kind == "columnar":
                rel = ColumnarRelation(name, arity, dictionary=dictionary)
                rel.restore_state(*spec["state"])
            else:
                rel = Relation(name, arity)
                rel.restore_state(*spec["state"])
            relations[name] = rel
        elif record_type == REC_OP:
            name, coded, insert = payload
            rel = relations[name]
            if isinstance(rel, ColumnarRelation):
                rel.apply_coded(coded, insert)
            elif insert:
                rel.add(coded)
            else:
                rel.discard(coded)
        elif record_type == REC_BATCH:
            name, codes = payload
            relations[name].add_coded_batch(codes)
        elif record_type == REC_REMOVE:
            name, rows = payload
            rel = relations[name]
            if isinstance(rel, ColumnarRelation):
                rel.remove_coded_batch(rows)
            else:
                rel.remove_batch(rows)
        elif record_type == REC_COMPACT:
            relations[payload].compact()


class _DegradedJournal:
    """The journal of a degraded (read-only) open: every mutation
    attempt fails loudly instead of silently not being durable."""

    def _refuse(self, *args, **kwargs):
        raise DegradedDatabaseError(
            "database was opened degraded (read-only); mutations are "
            "not durable here — repair the directory and reopen"
        )

    record_create = record_op = record_batch = _refuse
    record_remove = record_compact = _refuse


class DurableDatabase(Database):
    """A :class:`Database` bound to an on-disk directory.

    Layout under ``path``: ``MANIFEST.json`` (the atomic commit
    point), one active WAL file plus zero or more sealed, immutable
    WAL segments (every mutation, framed and CRC-checked —
    :mod:`repro.db.wal`), and the checkpoint directories of the
    current base+delta *chain* (:mod:`repro.db.checkpoint`) plus any
    older ones retained for follower catch-up and repair.

    Opening an existing directory *recovers*: the newest checkpoint's
    (self-contained) meta is followed across the chain, every file
    read is verified against the manifest's recorded size/CRC32, the
    dictionary re-seeded, then the current epoch's sealed WAL
    segments and the active WAL are replayed record-by-record
    (stopping at — and physically truncating — the first *torn*
    record).  Damage that is not a clean torn tail raises
    :class:`~repro.db.interface.CorruptSnapshotError` /
    :class:`~repro.db.interface.CorruptWalError` — see
    :meth:`verify`, :meth:`repair`, and ``degraded=True`` for the
    recovery ladder.  Recovered relations resume with the same
    content and ``mutation_stamp`` values every fully-logged
    operation had reached, so derived structures resync through the
    ordinary ``delta_since`` contract.  The stored backend always
    wins over the constructor argument on recovery.

    ``sync``: ``"always"`` fsyncs per record (an acked mutation
    survives any crash), ``"batch"`` (default) fsyncs at
    checkpoint/flush/close, ``"never"`` leaves it to the OS.

    Robustness knobs (all persisted or harmless to vary per open):

    - ``wal_retain`` — how many sealed segments from *before* the
      current checkpoint epoch to keep for follower catch-up and
      older-snapshot repair (default 4; current-epoch segments are
      always kept — recovery needs them).
    - ``wal_segment_bytes`` — seal and rotate the active WAL once it
      exceeds this size (None: rotate only at :meth:`rotate_wal` /
      :meth:`checkpoint`).
    - ``chain_depth`` — fold incremental checkpoints back into a
      full base once the chain would reference more than this many
      directories (default
      :data:`repro.db.checkpoint.MAX_CHAIN_DEPTH`).
    - ``degraded`` — open read-only, loading whatever is intact and
      listing the rest in ``damaged_relations``; any mutation raises
      :class:`~repro.db.interface.DegradedDatabaseError`.
    """

    def __init__(
        self,
        path: str,
        backend: str = "columnar",
        shard_count: Optional[int] = None,
        sync: str = "batch",
        wal_retain: Optional[int] = None,
        wal_segment_bytes: Optional[int] = None,
        chain_depth: Optional[int] = None,
        degraded: bool = False,
        workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
    ) -> None:
        from repro.db import checkpoint as ckpt
        from repro.db.wal import WalJournal, WalWriter

        self.path = os.fspath(path)
        self.sync = sync
        self.degraded = degraded
        self.wal_segment_bytes = wal_segment_bytes
        self.chain_depth = (
            chain_depth if chain_depth is not None else ckpt.MAX_CHAIN_DEPTH
        )
        self.damaged_relations: Dict[str, str] = {}
        self.last_checkpoint: Optional[Dict[str, Any]] = None
        os.makedirs(self.path, exist_ok=True)
        manifest = ckpt.read_manifest(self.path)
        if manifest is None:
            if degraded:
                raise CorruptSnapshotError(
                    ckpt.MANIFEST, "nothing to open degraded: no manifest"
                )
            super().__init__(
                backend=backend,
                shard_count=shard_count,
                workers=workers,
                spill_dir=spill_dir,
                max_resident_shards=max_resident_shards,
            )
            self._ckpt_index: Optional[int] = None
            self._ckpt_meta: Optional[Dict[str, Any]] = None
            self._segments: list = []
            self._files: Dict[str, Any] = {}
            self._wal_name = ckpt.wal_filename(0)
            self.wal_retain = 4 if wal_retain is None else wal_retain
            wal_path = os.path.join(self.path, self._wal_name)
            self._writer = WalWriter(wal_path, sync=sync)
            ckpt.commit_manifest(self.path, self._manifest_dict())
        else:
            super().__init__(
                backend=manifest["backend"],
                shard_count=manifest["shard_count"],
                workers=workers,
                spill_dir=spill_dir,
                max_resident_shards=max_resident_shards,
            )
            self._ckpt_index = manifest["checkpoint"]
            self._ckpt_meta = None
            self._segments = list(manifest.get("segments") or [])
            self._files = dict(manifest.get("files") or {})
            self._wal_name = manifest["wal"]
            self.wal_retain = (
                manifest.get("wal_retain", 4)
                if wal_retain is None
                else wal_retain
            )
            verifier = ckpt.Verifier(self.path, self._files)
            if degraded:
                self._load_degraded(verifier)
                self._writer = None
                self._journal = _DegradedJournal()
                for rel in self._relations.values():
                    rel._journal = self._journal
                self._attach_shard_runtime()
                return
            if self._ckpt_index is not None:
                meta = ckpt.read_meta(
                    self.path, self._ckpt_index, verifier
                )
                self._ckpt_meta = meta
                ckpt.seed_dictionary(
                    self._dictionary, self.path, meta, verifier
                )
                for entry in meta["relations"]:
                    rel = ckpt.load_relation(
                        self.path, entry, self._dictionary, verifier
                    )
                    self._relations[rel.name] = rel
            valid = self._replay_wal_files(verifier, strict=True)
            wal_path = os.path.join(self.path, self._wal_name)
            self._writer = WalWriter(
                wal_path, sync=sync, truncate_to=valid
            )
        self._journal = WalJournal(self._writer, self._dictionary)
        if self.wal_segment_bytes:
            self._journal.on_record = self._maybe_rotate
        for rel in self._relations.values():
            rel._journal = self._journal
        self._attach_shard_runtime()
        self._collect_garbage()

    def _attach_shard_runtime(self) -> None:
        """Wire the executor / spill pool into recovered relations.

        Checkpoint loading and WAL replay construct relations outside
        :meth:`new_relation`, so relations recovered from disk would
        otherwise miss the database-level worker pool and spill knobs.
        """
        for rel in self._relations.values():
            if isinstance(rel, ShardedColumnarRelation):
                if self.executor is not None:
                    rel.executor = self.executor
                if self.spill is not None and rel.spill is None:
                    rel.attach_spill(self.spill)

    # ------------------------------------------------------------------
    # recovery: WAL replay (sealed segments of this epoch + active)
    # ------------------------------------------------------------------
    @property
    def _epoch(self) -> int:
        return self._ckpt_index or 0

    def _epoch_segments(self):
        return sorted(
            (s for s in self._segments if s["epoch"] == self._epoch),
            key=lambda s: s["seq"],
        )

    def _replay_wal_files(self, verifier, strict: bool) -> int:
        """Replay this epoch's sealed segments, then the active WAL.

        Returns the active WAL's valid-prefix length (the truncation
        point for the resumed writer).  ``strict`` raises
        :class:`CorruptWalError` on a sealed-segment checksum failure
        or mid-log damage in the active file; non-strict (degraded
        open) stops at the consistent prefix instead.
        """
        from repro.db.wal import read_records, scan_wal, seal_info

        for seg in self._epoch_segments():
            seg_path = os.path.join(self.path, seg["name"])
            if not os.path.exists(seg_path):
                actual = None
            else:
                actual = seal_info(seg_path)
            if actual != {"size": seg["size"], "crc32": seg["crc32"]}:
                if strict:
                    raise CorruptWalError(
                        seg["name"],
                        0,
                        "sealed segment fails its manifest checksum"
                        if actual is not None
                        else "sealed segment is missing",
                    )
                return 0  # stop at the consistent prefix
            records, _ = read_records(seg_path)
            self._replay(records)
        wal_path = os.path.join(self.path, self._wal_name)
        records, valid, damage = scan_wal(wal_path)
        if damage == "corrupt" and strict:
            raise CorruptWalError(
                self._wal_name,
                valid,
                "valid records exist beyond the damage (mid-log "
                "corruption, not a torn tail)",
            )
        self._replay(records)
        return valid

    def _load_degraded(self, verifier) -> None:
        """Best-effort load: keep what verifies, list what does not."""
        from repro.db import checkpoint as ckpt

        dictionary_ok = True
        meta = None
        if self._ckpt_index is not None:
            try:
                meta = ckpt.read_meta(
                    self.path, self._ckpt_index, verifier
                )
                self._ckpt_meta = meta
            except CorruptSnapshotError as exc:
                self.damaged_relations["*"] = str(exc)
                return
            if self._dictionary is not None:
                try:
                    ckpt.seed_dictionary(
                        self._dictionary, self.path, meta, verifier
                    )
                except CorruptSnapshotError as exc:
                    dictionary_ok = False
                    self.damaged_relations["<dictionary>"] = str(exc)
            for entry in meta["relations"]:
                if not dictionary_ok and entry["kind"] != "python":
                    self.damaged_relations[entry["name"]] = (
                        "shared dictionary is corrupt"
                    )
                    continue
                try:
                    rel = ckpt.load_relation(
                        self.path, entry, self._dictionary, verifier
                    )
                except CorruptSnapshotError as exc:
                    self.damaged_relations[entry["name"]] = str(exc)
                    continue
                self._relations[rel.name] = rel
        self._replay_degraded(dictionary_ok)

    def _replay_degraded(self, dictionary_ok: bool) -> None:
        from repro.db.wal import (
            REC_COMPACT,
            REC_CREATE,
            REC_DICT,
            read_records,
            scan_wal,
            seal_info,
        )

        batches = []
        for seg in self._epoch_segments():
            seg_path = os.path.join(self.path, seg["name"])
            if not os.path.exists(seg_path) or seal_info(seg_path) != {
                "size": seg["size"],
                "crc32": seg["crc32"],
            }:
                break  # consistent prefix only
            batches.append(read_records(seg_path)[0])
        else:
            wal_path = os.path.join(self.path, self._wal_name)
            batches.append(scan_wal(wal_path)[0])
        for records in batches:
            for record in records:
                record_type, payload = record
                if record_type == REC_DICT:
                    if not dictionary_ok:
                        continue
                    name = None
                elif record_type == REC_COMPACT:
                    name = payload
                else:
                    name = payload[0]
                if name is not None and name in self.damaged_relations:
                    continue
                if (
                    record_type == REC_CREATE
                    and not dictionary_ok
                    and payload[2]["kind"] != "python"
                ):
                    self.damaged_relations[name] = (
                        "shared dictionary is corrupt"
                    )
                    continue
                try:
                    replay_records(
                        self._relations, self._dictionary, [record]
                    )
                except Exception as exc:  # keep serving the rest
                    if name is not None:
                        self.damaged_relations[name] = str(exc)
                        self._relations.pop(name, None)

    def __getitem__(self, name: str):
        if name in self.damaged_relations:
            raise CorruptSnapshotError(
                name, self.damaged_relations[name]
            )
        return super().__getitem__(name)

    # ------------------------------------------------------------------
    # registration (journals a CREATE record, attaches the hook)
    # ------------------------------------------------------------------
    def _relation_spec(self, rel) -> Dict[str, Any]:
        if isinstance(rel, ShardedColumnarRelation):
            return {
                "kind": "sharded",
                "shard_count": rel.shard_count,
                "key_column": rel.key_column,
                "state": rel.snapshot_state(),
            }
        if isinstance(rel, ColumnarRelation):
            return {"kind": "columnar", "state": rel.snapshot_state()}
        return {"kind": "python", "state": rel.snapshot_state()}

    def _register_durable(self, rel) -> None:
        if (
            isinstance(rel, ColumnarRelation)
            and rel.dictionary is not self._dictionary
        ):
            raise ValueError(
                f"relation {rel.name!r} does not share the durable "
                "database's dictionary; create it via new_relation / "
                "ensure_relation instead"
            )
        self._journal.record_create(
            rel.name, rel.arity, self._relation_spec(rel)
        )
        rel._journal = self._journal

    def add_relation(self, relation) -> None:
        super().add_relation(relation)
        self._register_durable(relation)

    def ensure_relation(self, name: str, arity: int):
        created = name not in self._relations
        rel = super().ensure_relation(name, arity)
        if created:
            self._register_durable(rel)
        return rel

    # ------------------------------------------------------------------
    # recovery replay
    # ------------------------------------------------------------------
    def _replay(self, records) -> None:
        replay_records(self._relations, self._dictionary, records)

    # ------------------------------------------------------------------
    # checkpoint / lifecycle
    # ------------------------------------------------------------------
    @property
    def checkpoint_index(self) -> Optional[int]:
        """The committed checkpoint number (None before the first)."""
        return self._ckpt_index

    def _manifest_dict(self) -> Dict[str, Any]:
        from repro.db import checkpoint as ckpt

        chain = (
            ckpt.chain_of(self._ckpt_meta)
            if self._ckpt_meta is not None
            else ([self._ckpt_index] if self._ckpt_index is not None else [])
        )
        return {
            "version": 2,
            "backend": self.backend,
            "shard_count": self.shard_count,
            "checkpoint": self._ckpt_index,
            "chain": chain,
            "wal": self._wal_name,
            "segments": self._segments,
            "files": self._files,
            "wal_retain": self.wal_retain,
        }

    def _require_writer(self) -> None:
        if self._writer is None:
            raise DegradedDatabaseError(
                "database was opened degraded (read-only)"
            )

    def checkpoint(self, full: bool = False) -> str:
        """Snapshot what changed and rotate the WAL; return the path.

        Incremental by default: relations (per shard for sharded
        relations) whose ``mutation_stamp`` did not advance since the
        last checkpoint are carried as chain pointers, not rewritten;
        once the chain would exceed ``chain_depth`` directories — or
        when ``full=True`` — the deltas fold back into a full base.
        :attr:`last_checkpoint` records what the call actually wrote
        (``bytes_written``, ``files``, ``full``).

        The sequence is crash-safe at every step: the snapshot is
        written to a temp directory and renamed, the fresh (empty)
        WAL file is created, and only then is the manifest atomically
        replaced — the single commit point.  A crash anywhere earlier
        leaves the previous checkpoint plus the previous (complete)
        WAL as the recovery source; a crash after the swap merely
        leaves garbage files for the next recovery or checkpoint to
        collect.
        """
        from repro.db import checkpoint as ckpt
        from repro.db.wal import WalWriter, seal_info
        from repro.util.faultpoints import fault_point

        self._require_writer()
        index = (self._ckpt_index or 0) + 1
        self._writer.flush()
        previous = None if full else self._ckpt_meta
        if (
            previous is not None
            and len(ckpt.chain_of(previous)) >= self.chain_depth
        ):
            previous = None  # fold the chain back into a full base
        snapshot_path, meta, written = ckpt.write_snapshot(
            self.path, self, index, previous=previous
        )
        fault_point("ckpt.wal.create")
        new_wal = ckpt.wal_filename(index)
        new_wal_path = os.path.join(self.path, new_wal)
        with open(new_wal_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        # Seal the outgoing active WAL (its content is inside the new
        # snapshot, but retained segments let followers catch up from
        # files and let repair restart from an older snapshot).
        old_wal_path = os.path.join(self.path, self._wal_name)
        old_epoch, old_seq = ckpt.parse_wal_name(self._wal_name)
        sealed = seal_info(old_wal_path)
        segments = list(self._segments)
        if sealed["size"]:
            segments.append(
                {"name": self._wal_name, "epoch": old_epoch,
                 "seq": old_seq, **sealed}
            )
        if self.wal_retain >= 0:
            segments = (
                segments[-self.wal_retain:] if self.wal_retain else []
            )
        # Compose the integrity map: the new files plus every tracked
        # file in a directory that stays reachable.
        files = dict(written)
        keep_dirs = self._keep_dirs(meta, segments)
        for relpath, info in self._files.items():
            if relpath.split("/", 1)[0] in keep_dirs:
                files.setdefault(relpath, info)
        state = (
            self._ckpt_index,
            self._ckpt_meta,
            self._wal_name,
            self._segments,
            self._files,
        )
        self._ckpt_index, self._ckpt_meta = index, meta
        self._wal_name = new_wal
        self._segments, self._files = segments, files
        try:
            ckpt.commit_manifest(self.path, self._manifest_dict())
        except BaseException:
            (
                self._ckpt_index,
                self._ckpt_meta,
                self._wal_name,
                self._segments,
                self._files,
            ) = state
            raise
        # Committed: swap the journal onto the fresh log and collect
        # the superseded files.
        old_writer = self._writer
        self._writer = WalWriter(new_wal_path, sync=self.sync)
        self._journal.writer = self._writer
        old_writer.close()
        self._collect_garbage()
        self.last_checkpoint = {
            "path": snapshot_path,
            "index": index,
            "full": previous is None,
            "files": sorted(written),
            "bytes_written": sum(f["size"] for f in written.values()),
        }
        return snapshot_path

    def rotate_wal(self) -> str:
        """Seal the active WAL segment and open a fresh one.

        The sealed segment is immutable from here on — its whole-file
        size+CRC32 goes into the manifest, recovery verifies it before
        replay, and followers may stream it for cold catch-up.  The
        manifest swap is the commit point, exactly as for checkpoints:
        a crash before it leaves the old active WAL in place, still
        valid.  Returns the new active WAL's name.
        """
        from repro.db import checkpoint as ckpt
        from repro.db.wal import WalWriter, seal_info

        self._require_writer()
        self._writer.flush()
        old_name = self._wal_name
        old_path = os.path.join(self.path, old_name)
        epoch, seq = ckpt.parse_wal_name(old_name)
        new_name = ckpt.wal_segment_filename(epoch, seq + 1)
        new_path = os.path.join(self.path, new_name)
        with open(new_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        sealed = seal_info(old_path)
        state = (self._wal_name, self._segments)
        self._segments = self._segments + [
            {"name": old_name, "epoch": epoch, "seq": seq, **sealed}
        ]
        self._wal_name = new_name
        try:
            ckpt.commit_manifest(self.path, self._manifest_dict())
        except BaseException:
            self._wal_name, self._segments = state
            raise
        old_writer = self._writer
        self._writer = WalWriter(new_path, sync=self.sync)
        self._journal.writer = self._writer
        old_writer.close()
        self._collect_garbage()
        return new_name

    def _maybe_rotate(self) -> None:
        if (
            self.wal_segment_bytes
            and self._writer.tell() >= self.wal_segment_bytes
        ):
            self.rotate_wal()

    # ------------------------------------------------------------------
    # integrity surface
    # ------------------------------------------------------------------
    def verify(self):
        """Scrub this directory: re-check every checkpoint file and
        WAL segment against the manifest's recorded checksums.  Flushes
        first so the active WAL on disk is current.  Returns a
        :class:`repro.db.scrub.ScrubReport`."""
        from repro.db import scrub

        if self._writer is not None:
            self._writer.flush()
        return scrub.verify(self.path)

    @staticmethod
    def repair(path: str, feed=None):
        """Repair a damaged directory (see :func:`repro.db.scrub.repair`).

        A static method because the damaged directory typically cannot
        be opened — repair it first, then :func:`attach`.  ``feed`` is
        an optional :class:`repro.engine.replication.LeaderFeed` used
        as the last-resort reseed source.
        """
        from repro.db import scrub

        return scrub.repair(path, feed=feed)

    def _keep_dirs(self, meta, segments) -> set:
        """Checkpoint directories that must survive garbage collection:
        the current chain, plus — for retained older WAL segments —
        their epoch's checkpoint and *its* chain (so repair can restart
        from an older snapshot + WAL suffix)."""
        from repro.db import checkpoint as ckpt

        dirs = set()
        if meta is not None:
            dirs.update(
                ckpt.snapshot_dirname(i) for i in ckpt.chain_of(meta)
            )
        elif self._ckpt_index is not None:
            dirs.add(ckpt.snapshot_dirname(self._ckpt_index))
        for seg in segments:
            epoch = seg["epoch"]
            if epoch == 0:
                continue  # epoch 0 predates any checkpoint
            name = ckpt.snapshot_dirname(epoch)
            if name in dirs or not os.path.isdir(
                os.path.join(self.path, name)
            ):
                continue
            dirs.add(name)
            try:
                older = ckpt.read_meta(self.path, epoch)
                dirs.update(
                    ckpt.snapshot_dirname(i) for i in ckpt.chain_of(older)
                )
            except Exception:  # damaged older meta: keep just the dir
                pass
        return dirs

    def _collect_garbage(self) -> None:
        """Remove superseded ckpt-*/wal-* files and orphaned ``*.tmp``
        artifacts (a crash between a temp write and its rename leaves
        ``ckpt-<n>.tmp`` / ``MANIFEST.json.tmp`` / ``session.json.tmp``
        behind — recovery and every successful checkpoint sweep them).
        Quarantined artifacts are never touched."""
        import shutil

        keep = {self._wal_name}
        keep.update(seg["name"] for seg in self._segments)
        keep.update(self._keep_dirs(self._ckpt_meta, self._segments))
        for entry in os.listdir(self.path):
            if entry in keep or entry == "quarantine":
                continue
            if not (
                entry.startswith("ckpt-")
                or entry.startswith("wal-")
                or entry.endswith(".tmp")
            ):
                continue
            full = os.path.join(self.path, entry)
            try:
                if os.path.isdir(full):
                    shutil.rmtree(full)
                else:
                    os.remove(full)
            except OSError:  # pragma: no cover - cleanup is advisory
                pass

    def flush(self) -> None:
        """Flush (and, policy permitting, fsync) the active WAL."""
        self._require_writer()
        self._writer.flush()

    def close(self) -> None:
        """Flush and close the WAL (and spill); stays readable."""
        if self._writer is not None:
            self._writer.close()
        super().close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(
    path: str,
    backend: str = "columnar",
    shard_count: Optional[int] = None,
    sync: str = "batch",
    wal_retain: Optional[int] = None,
    wal_segment_bytes: Optional[int] = None,
    chain_depth: Optional[int] = None,
    degraded: bool = False,
    workers: Optional[int] = None,
    spill_dir: Optional[str] = None,
    max_resident_shards: Optional[int] = None,
) -> DurableDatabase:
    """Open (creating or recovering) a durable database directory.

    The one-call durability entry point: a fresh directory becomes an
    empty durable database of the requested backend; an existing one
    is recovered from its committed checkpoint chain plus WAL suffix
    (the stored backend wins over the argument).  ``wal_retain`` /
    ``wal_segment_bytes`` / ``chain_depth`` / ``degraded`` are the
    robustness knobs documented on :class:`DurableDatabase`;
    ``workers`` / ``spill_dir`` / ``max_resident_shards`` are the
    runtime execution knobs documented on :class:`Database` (they are
    per-open, not persisted).
    """
    return DurableDatabase(
        path,
        backend=backend,
        shard_count=shard_count,
        sync=sync,
        wal_retain=wal_retain,
        wal_segment_bytes=wal_segment_bytes,
        chain_depth=chain_depth,
        degraded=degraded,
        workers=workers,
        spill_dir=spill_dir,
        max_resident_shards=max_resident_shards,
    )
