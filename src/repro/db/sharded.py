"""Sharded columnar storage: hash-partitioned code matrices.

This module is the partitioned half of the columnar substrate: a
:class:`ShardedColumnarRelation` stores its tuples as ``shard_count``
independent :class:`~repro.db.columnar.ColumnarRelation` shards — each
a compacted main segment plus delta segments — over **one shared
dictionary**.  Rows are routed by a multiplicative hash of the code in
one *key column*, so equal tuples always land in the same shard and
the shards partition the tuple set.

Why the shared :class:`~repro.db.columnar.Dictionary` is the natural
shard boundary: dictionary codes are append-only and global, so two
shards' code matrices are directly comparable — a cross-shard join
compares ints, never values, and a shard's FAQ message is already a
``(separator codes, weight column)`` pair.  Cross-shard aggregation is
therefore just a *merge of messages* — one
:func:`repro.db.columnar.group_reduce` over the concatenation of the
per-shard messages — with no shared mutable state beyond the
append-only dictionary (see
:func:`repro.semiring.faq._aggregate_frames_columnar`).

**Ingestion.**  ``add_all`` encodes the whole batch once, computes the
shard of every row in one vectorized hash pass, and hands each shard
its sub-batch as a code matrix (:meth:`ColumnarRelation.
add_coded_batch`) — no per-row Python beyond the encode boundary that
every backend pays.  Single-tuple ``add``/``discard`` route to the
owning shard's delta segments in O(1).

**Consistency.**  Each shard keeps its own ``mutation_stamp`` /
``delta_since`` history, so the PR 3 consistency contract holds
*shard-locally*; the sharded relation exposes the same contract
globally by translating a global stamp back to the per-shard stamps it
corresponds to (a small routing history) and concatenating the shard
deltas.  When any shard compacted past the requested stamp the global
``delta_since`` raises :class:`~repro.db.interface.
TruncatedHistoryError` under the *parent's* name and global stamps —
exactly the columnar contract.

**Durability.**  Each shard carries a :class:`_ShardJournal`
forwarding hook: shard-level ops and barriers are mirrored into the
parent's write-ahead log under the parent's name.  Replay is purely
parent-level — routing is deterministic (bit-identical scalar and
vectorized hashes), so re-applying the parent-named records rebuilds
identical shards without persisting any shard ids.

**Materialization accounting.**  The promise of the sharded pipelines
is that the count/aggregate path never materializes a global array
larger than one shard (plus the merged separator domain).  Every place
that *does* coalesce shards into one global matrix (``codes()`` on the
relation, ``ShardedColumnarFrame._codes``) reports the coalesced row
count through :func:`note_coalesce`; benchmarks and tests read the
peak via :func:`coalesced_row_peak` to assert the promise, the same
way :func:`repro.db.columnar.decoded_row_count` asserts zero decodes.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.columnar import (
    DELTA_COMPACT_MIN,
    ColumnarRelation,
    Dictionary,
    Value,
)
from repro.db.executor import SERIAL, ShardExecutor, get_default_executor
from repro.db.interface import TruncatedHistoryError

# Default number of shards for relations created without an explicit
# count (Database(backend="sharded")).  The engine planner sizes real
# workloads via repro.db.interface.preferred_shard_count instead.
DEFAULT_SHARD_COUNT = 4

# Routing-history length bound: single-tuple ops append one (global
# stamp, shard, shard stamp) entry so delta_since can translate global
# stamps back to per-shard ones.  Past the bound the history is
# rebased (old stamps become unanswerable — callers rebuild), mirroring
# the weight-log truncation of repro.semiring.faq.WeightedDatabase.
_HISTORY_LIMIT = 8192

# 64-bit multiplicative (Fibonacci) hash constant; spreads consecutive
# dictionary codes across shards even though codes are dense.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

# ----------------------------------------------------------------------
# coalesce instrumentation
# ----------------------------------------------------------------------
# Peak row count of any multi-shard coalesce (global materialization)
# since the last reset.  The shard-parallel pipelines promise zero on
# the aggregate path; benchmarks assert it through this hook.  The
# read-compare-write is lock-guarded: coalesces can race on executor
# worker threads (repro.db.executor), and an unguarded max would let a
# smaller concurrent peak overwrite a larger one.
_COALESCED_PEAK = 0
_COALESCED_LOCK = threading.Lock()


def coalesced_row_peak() -> int:
    """Largest multi-shard coalesce (rows) since the last reset."""
    return _COALESCED_PEAK


def reset_coalesced_row_peak() -> None:
    global _COALESCED_PEAK
    with _COALESCED_LOCK:
        _COALESCED_PEAK = 0


def note_coalesce(rows: int) -> None:
    """Record a global (cross-shard) materialization of ``rows`` rows."""
    global _COALESCED_PEAK
    with _COALESCED_LOCK:
        if rows > _COALESCED_PEAK:
            _COALESCED_PEAK = rows


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def shard_of_code(code: int, shard_count: int) -> int:
    """The shard owning one dictionary code (scalar hash route).

    Fibonacci hash, then a multiply-shift range map over the *high*
     32 bits — the low bits of ``code * odd-constant`` are a mere
    permutation of ``code mod 2^k``, so a ``% shard_count`` route
    would partition dense codes with visible skew.
    """
    if shard_count <= 1:
        return 0
    mixed = (int(code) * _MIX) & _MASK
    mixed ^= mixed >> 33
    return int(((mixed >> 32) * shard_count) >> 32)


def shard_ids(key_codes: np.ndarray, shard_count: int) -> np.ndarray:
    """Per-row shard ids for a key-code column (vectorized hash route).

    Bit-identical to :func:`shard_of_code` applied elementwise, so the
    single-tuple and batched ingestion paths can never disagree about
    a tuple's owning shard.
    """
    if shard_count <= 1:
        return np.zeros(len(key_codes), dtype=np.int64)
    mixed = key_codes.astype(np.uint64) * np.uint64(_MIX)
    mixed ^= mixed >> np.uint64(33)
    high = mixed >> np.uint64(32)
    return ((high * np.uint64(shard_count)) >> np.uint64(32)).astype(
        np.int64
    )


class _ShardJournal:
    """Forwards a shard's journal records under the *parent's* name.

    Shards are internal ("R#3" never appears in the WAL): routing is
    deterministic, so replaying parent-named records through the
    parent's routed mutation methods reconstructs identical shards.
    The parent's journal is looked up per record, so attaching or
    detaching durability on the parent takes effect immediately.
    """

    __slots__ = ("_parent",)

    def __init__(self, parent: "ShardedColumnarRelation") -> None:
        self._parent = parent

    def record_op(self, _name: str, coded, is_insert: bool) -> None:
        journal = self._parent._journal
        if journal is not None:
            journal.record_op(self._parent.name, coded, is_insert)

    def record_batch(self, _name: str, codes) -> None:
        journal = self._parent._journal
        if journal is not None:
            journal.record_batch(self._parent.name, codes)

    def record_remove(self, _name: str, codes) -> None:
        journal = self._parent._journal
        if journal is not None:
            journal.record_remove(self._parent.name, codes)

    def record_compact(self, _name: str) -> None:
        journal = self._parent._journal
        if journal is not None:
            journal.record_compact(self._parent.name)


class ShardedColumnarRelation(ColumnarRelation):
    """A columnar relation hash-partitioned into independent shards.

    Drop-in replacement for :class:`ColumnarRelation` (it *is* one, so
    every columnar code path accepts it): same mutation/access/operator
    surface, same set semantics, one shared dictionary.  Storage is a
    list of per-shard :class:`ColumnarRelation` objects; rows are
    routed by hashing the dictionary code of the ``key_column``
    (default: the first column), so the shards are disjoint and the
    routing of a tuple never changes.

    Shard-aware consumers (:class:`repro.joins.vectorized.
    ShardedColumnarFrame`, the FAQ message merge) read the shards
    directly via :attr:`shards` / :meth:`shard_delta_since` and never
    touch a global matrix; generic columnar consumers fall back to
    :meth:`codes`, which coalesces — correct, merely unsharded — and
    reports the materialization through :func:`note_coalesce`.
    """

    backend = "sharded"

    def __init__(
        self,
        name: str,
        arity: int,
        rows: Optional[Iterable[Sequence[Value]]] = None,
        dictionary: Optional[Dictionary] = None,
        shard_count: Optional[int] = None,
        key_column: int = 0,
        executor: Optional[ShardExecutor] = None,
        spill=None,
    ) -> None:
        super().__init__(name, arity, rows=None, dictionary=dictionary)
        if shard_count is None:
            shard_count = DEFAULT_SHARD_COUNT
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        if arity == 0:
            key_column = 0
        elif not 0 <= key_column < arity:
            raise IndexError(
                f"key column {key_column} out of range for arity {arity}"
            )
        self.shard_count = shard_count
        self.key_column = key_column
        # Injected ShardExecutor for per-shard fan-outs (None => the
        # process default, see repro.db.executor).
        self.executor = executor
        self._shards: List[ColumnarRelation] = [
            ColumnarRelation(
                f"{name}#{i}", arity, dictionary=self.dictionary
            )
            for i in range(shard_count)
        ]
        # Routing history: (global stamp, shard index, shard stamp)
        # per single-tuple op since the last barrier, so delta_since
        # can translate a recorded global stamp to per-shard stamps.
        self._history: List[Tuple[int, int, int]] = []
        self._global_base_stamp = 0
        self._base_shard_stamps: List[int] = [0] * shard_count
        self._coalesced: Optional[np.ndarray] = None
        self.spill = None
        if spill is not None:
            self.attach_spill(spill)
        if rows is not None:
            self.add_all(rows)

    def attach_spill(self, pool) -> None:
        """Hand every shard's main segment to a
        :class:`repro.db.spill.SpillPool` (residency becomes
        pool-managed; see the spill module docstring)."""
        self.spill = pool
        for shard in self._shards:
            pool.register(shard)

    # ------------------------------------------------------------------
    # internal state
    # ------------------------------------------------------------------
    @property
    def _journal(self):
        return self.__dict__.get("_journal_value")

    @_journal.setter
    def _journal(self, journal) -> None:
        # Attaching durability on the parent wires every shard's hook
        # through a _ShardJournal (records surface under the parent's
        # name); detaching unhooks the shards so the no-durability
        # mutation path stays a single None check.
        self.__dict__["_journal_value"] = journal
        wrapper = _ShardJournal(self) if journal is not None else None
        for shard in getattr(self, "_shards", ()):
            shard._journal = wrapper

    def _exec(self) -> ShardExecutor:
        """Executor for read-only per-shard fan-outs."""
        executor = self.executor
        return executor if executor is not None else get_default_executor()

    def _mutation_exec(self) -> ShardExecutor:
        """Executor for *mutating* per-shard fan-outs.

        Serialized whenever durability or spilling is attached: WAL
        records from two shards must not interleave in the log, and a
        spill demotion triggered by one shard's barrier must not swap a
        sibling shard's main segment mid-rewrite.  Plain in-memory
        relations parallelize freely — shard state is disjoint.
        """
        if self._journal is not None or self.spill is not None:
            return SERIAL
        return self._exec()

    def _invalidate(self) -> None:
        super()._invalidate()
        self._coalesced = None

    def _rebase(self) -> None:
        """Truncate routing history (a global history barrier)."""
        self._history.clear()
        self._global_base_stamp = self.mutation_stamp
        self._base_shard_stamps = [
            shard.mutation_stamp for shard in self._shards
        ]

    def _owning_shard(self, coded: Sequence[int]) -> int:
        if self.arity == 0:
            return 0
        return shard_of_code(coded[self.key_column], self.shard_count)

    def _route_codes(self, codes: np.ndarray) -> np.ndarray:
        if self.arity == 0 or self.shard_count == 1:
            return np.zeros(len(codes), dtype=np.int64)
        return shard_ids(codes[:, self.key_column], self.shard_count)

    def _apply_one(self, coded: Tuple[int, ...], insert: bool) -> None:
        shard_index = self._owning_shard(coded)
        shard = self._shards[shard_index]
        shard.apply_coded(coded, insert)
        self._invalidate()
        self._history.append(
            (self.mutation_stamp, shard_index, shard.mutation_stamp)
        )
        if len(self._history) > _HISTORY_LIMIT:
            self._rebase()

    # ------------------------------------------------------------------
    # shard introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[ColumnarRelation, ...]:
        """The per-shard stores (read-only by convention)."""
        return tuple(self._shards)

    def shard_sizes(self) -> List[int]:
        """Tuples per shard (reveals partition skew)."""
        return [len(shard) for shard in self._shards]

    def shard_stamps(self) -> Tuple[int, ...]:
        """Each shard's current ``mutation_stamp`` (shard-local contract)."""
        return tuple(shard.mutation_stamp for shard in self._shards)

    def shard_delta_since(
        self, shard_index: int, stamp: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shard's net delta since a *shard-local* stamp (raises
        :class:`~repro.db.interface.TruncatedHistoryError` under the
        shard's own name when its history is gone)."""
        return self._shards[shard_index].delta_since(stamp)

    # ------------------------------------------------------------------
    # consistency contract
    # ------------------------------------------------------------------
    @property
    def mutation_stamp(self) -> int:
        """Monotone global stamp: the sum of the shard stamps."""
        return sum(shard.mutation_stamp for shard in self._shards)

    @property
    def delta_size(self) -> int:
        return sum(shard.delta_size for shard in self._shards)

    def delta_since(self, stamp: int) -> Tuple[np.ndarray, np.ndarray]:
        """Net ``(inserted, deleted)`` code rows since a global stamp.

        Translates the global stamp to the per-shard stamps it
        corresponds to (via the routing history) and concatenates the
        shards' exact net deltas.  Raises
        :class:`~repro.db.interface.TruncatedHistoryError` — under the
        parent's name and global stamps — when the routing history was
        rebased past ``stamp`` or any shard compacted its own history
        away; callers rebuild, exactly as for the unsharded contract.
        """
        empty = np.empty((0, self.arity), dtype=np.int64)
        current = self.mutation_stamp
        if stamp == current:
            return empty, empty
        if stamp < self._global_base_stamp or stamp > current:
            raise TruncatedHistoryError(
                self.name, stamp, self._global_base_stamp
            )
        targets = list(self._base_shard_stamps)
        for global_stamp, shard_index, shard_stamp in self._history:
            if global_stamp > stamp:
                break
            targets[shard_index] = shard_stamp
        def shard_delta(pair: Tuple[ColumnarRelation, int]):
            shard, target = pair
            return shard.delta_since(target)

        try:
            deltas = self._exec().map(
                shard_delta, list(zip(self._shards, targets))
            )
        except TruncatedHistoryError as exc:
            raise TruncatedHistoryError(
                self.name, stamp, self._global_base_stamp
            ) from exc
        inserted_parts: List[np.ndarray] = []
        deleted_parts: List[np.ndarray] = []
        for inserted, deleted in deltas:
            if len(inserted):
                inserted_parts.append(inserted)
            if len(deleted):
                deleted_parts.append(deleted)

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            if not parts:
                return empty
            if len(parts) == 1:
                return parts[0]
            return np.concatenate(parts, axis=0)

        return cat(inserted_parts), cat(deleted_parts)

    def compact(self) -> None:
        """Fold every shard's delta segments in (content unchanged)."""
        self._mutation_exec().map(
            lambda shard: shard.compact(), self._shards
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Value]) -> None:
        """Insert one tuple into its owning shard (O(1) delta append)."""
        tup = self._check_width(tuple(row))
        encode = self.dictionary.encode
        self._apply_one(tuple(encode(v) for v in tup), True)

    def discard(self, row: Sequence[Value]) -> None:
        """Remove a tuple if present, from its owning shard (O(1))."""
        tup = self._check_width(tuple(row))
        coded = []
        for value in tup:
            code = self.dictionary.encode_existing(value)
            if code is None:
                return  # value unseen => tuple cannot be stored
            coded.append(code)
        self._apply_one(tuple(coded), False)

    def apply_coded(self, coded: Sequence[int], insert: bool = True) -> None:
        """One insert/delete of an already-encoded tuple, routed to
        its owning shard (the code-level counterpart of
        :meth:`add`/:meth:`discard`)."""
        if len(coded) != self.arity:
            raise ValueError(
                f"coded row of width {len(coded)} for arity {self.arity}"
            )
        self._apply_one(tuple(int(c) for c in coded), insert)

    def add_coded_batch(self, codes: np.ndarray) -> None:
        """Bulk-insert already-encoded rows, hash-routed to the shards
        (a history barrier, like the unsharded counterpart)."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            codes = codes.reshape(len(codes), self.arity)
        if not len(codes):
            return
        ids = self._route_codes(codes)
        work = []
        for index, shard in enumerate(self._shards):
            part = codes[ids == index]
            if len(part):
                work.append((shard, part))
        self._mutation_exec().map(
            lambda item: item[0].add_coded_batch(item[1]), work
        )
        self._invalidate()
        self._rebase()

    def remove_coded_batch(self, codes: np.ndarray) -> int:
        """Bulk-delete already-encoded rows, hash-routed to the shards.

        A matching removal is a global history barrier, like the
        unsharded counterpart; an empty or fully-absent batch touches
        nothing.  WAL replay and replication followers use this to
        re-apply ``retain`` barriers (logged as removed code rows).
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            codes = codes.reshape(len(codes), self.arity)
        if not len(codes):
            return 0
        ids = self._route_codes(codes)
        work = []
        for index, shard in enumerate(self._shards):
            part = codes[ids == index]
            if len(part):
                work.append((shard, part))
        removed = sum(
            self._mutation_exec().map(
                lambda item: item[0].remove_coded_batch(item[1]), work
            )
        )
        if removed:
            self._invalidate()
            self._rebase()
        return removed

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Batched ingestion: encode once, route whole code batches.

        One encode pass, one vectorized hash-routing pass, then each
        shard receives its sub-batch as a code matrix.  Small batches
        (``<= DELTA_COMPACT_MIN`` rows) route through the shards'
        delta segments and keep history; larger ones are per-shard
        bulk rewrites and act as a global history barrier.
        """
        fresh = self.dictionary.encode_rows(
            (self._check_width(tuple(r)) for r in rows), self.arity
        )
        if not len(fresh):
            return
        if len(fresh) <= DELTA_COMPACT_MIN:
            for coded in map(tuple, fresh.tolist()):
                self._apply_one(coded, True)
            return
        self.add_coded_batch(fresh)

    def retain(self, predicate) -> int:
        """Keep only tuples satisfying ``predicate`` (per-shard scan).

        Same semantics as the unsharded ``retain``: evaluated on the
        merged view, and a removing ``retain`` is a history barrier.
        """
        removed = sum(
            self._mutation_exec().map(
                lambda shard: shard.retain(predicate), self._shards
            )
        )
        if removed:
            self._invalidate()
            self._rebase()
        return removed

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def codes(self) -> np.ndarray:
        """The *coalesced* global code matrix (shard concatenation).

        Correct for every generic columnar consumer, but it
        materializes all shards into one array — shard-aware pipelines
        read :attr:`shards` instead.  Multi-shard coalesces are
        reported through :func:`note_coalesce`.
        """
        if self._coalesced is None:
            parts = self._exec().map(
                lambda shard: shard.codes(), self._shards
            )
            if len(parts) == 1:
                self._coalesced = parts[0]
            else:
                note_coalesce(sum(len(part) for part in parts))
                self._coalesced = np.concatenate(parts, axis=0)
        return self._coalesced

    def __len__(self) -> int:
        # Shards are disjoint (routing is deterministic per tuple).
        return sum(len(shard) for shard in self._shards)

    def is_empty(self) -> bool:
        return all(shard.is_empty() for shard in self._shards)

    def has_coded(self, coded: Sequence[int]) -> bool:
        return self._shards[self._owning_shard(coded)].has_coded(coded)

    def distinct_values(self, column: int) -> set:
        (col,) = self._check_columns((column,))
        parts = self._exec().map(
            lambda shard: shard.distinct_values(col), self._shards
        )
        out: set = set()
        for part in parts:
            out |= part
        return out

    def column_distinct_counts(self) -> Tuple[int, ...]:
        """Distinct codes per column, unioned across shards (no coalesce).

        Per-shard ``np.unique`` passes fan out over the shard executor
        and the shard results are unioned per column — a code can land
        in several shards unless the column is the routing key, so the
        per-shard counts cannot simply be summed.  No global code
        matrix is materialized; :meth:`shard_sizes` supplies the
        companion skew histogram the planner's ``explain()`` cites.
        """
        if self._distinct_counts is None:
            arity = self.arity

            def shard_uniques(shard: ColumnarRelation) -> List[np.ndarray]:
                codes = shard.codes()
                return [np.unique(codes[:, j]) for j in range(arity)]

            parts = self._exec().map(shard_uniques, list(self._shards))
            self._distinct_counts = tuple(
                int(len(np.unique(np.concatenate([p[j] for p in parts]))))
                for j in range(arity)
            )
        return self._distinct_counts

    def active_domain(self) -> set:
        parts = self._exec().map(
            lambda shard: shard.active_domain(), self._shards
        )
        out: set = set()
        for part in parts:
            out |= part
        return out

    def copy(self, name: Optional[str] = None) -> "ShardedColumnarRelation":
        """An independent copy with the same partitioning (shared dict).

        The copy inherits the executor but not the spill pool: a pool
        manages the residency of exactly the shards registered with it.
        """
        out = ShardedColumnarRelation(
            name or self.name,
            self.arity,
            dictionary=self.dictionary,
            shard_count=self.shard_count,
            key_column=self.key_column,
            executor=self.executor,
        )
        out._shards = [shard.copy() for shard in self._shards]
        return out

    # ------------------------------------------------------------------
    # durability (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> List[Tuple[np.ndarray, int]]:
        """Per-shard ``(codes, stamp)`` pairs, for checkpointing.

        Shards are snapshotted individually (the ISSUE's per-shard
        column files); the parent's global stamp is the sum of the
        shard stamps, so nothing beyond the pairs needs persisting.
        """
        return [shard.snapshot_state() for shard in self._shards]

    def restore_state(  # type: ignore[override]
        self, shard_states: Sequence[Tuple[np.ndarray, int]], stamp: int = 0
    ) -> None:
        """Install per-shard snapshots and rebase the routing history.

        The rebase makes the restored global stamp the new answerable
        floor — pre-snapshot global stamps raise, exactly as if every
        shard had compacted at snapshot time.
        """
        if len(shard_states) != self.shard_count:
            raise ValueError(
                f"snapshot has {len(shard_states)} shards, relation "
                f"has {self.shard_count}"
            )
        for shard, (codes, shard_stamp) in zip(self._shards, shard_states):
            shard.restore_state(codes, shard_stamp)
        self._invalidate()
        self._rebase()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedColumnarRelation({self.name!r}, arity={self.arity}, "
            f"size={len(self)}, shards={self.shard_count})"
        )
