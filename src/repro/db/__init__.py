"""Relational substrate: relations, databases, hash indexes.

The machine model in the paper is a RAM with unit-cost operations; the
natural Python analogue is tuple stores backed by hash maps.  A
:class:`Relation` is a set of equal-arity tuples with on-demand hash
indexes; a :class:`Database` maps relation names to relations and
accounts for the total input size ``m`` (number of tuples), the quantity
every runtime bound in the paper is stated in.
"""

from repro.db.database import Database
from repro.db.relation import Relation

__all__ = ["Database", "Relation"]
