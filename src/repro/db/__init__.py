"""Relational substrate: relations, databases, hash and array indexes.

The machine model in the paper is a RAM with unit-cost operations; the
natural Python analogue is tuple stores backed by hash maps.  A
:class:`Relation` is a set of equal-arity tuples with on-demand hash
indexes; a :class:`Database` maps relation names to relations and
accounts for the total input size ``m`` (number of tuples), the quantity
every runtime bound in the paper is stated in.

Three storage backends implement the common tuple-store interface
(:mod:`repro.db.interface`): the default ``"python"`` backend
(:class:`Relation`, hash sets of tuples), the opt-in ``"columnar"``
backend (:class:`ColumnarRelation`, dictionary-encoded NumPy columns —
see :mod:`repro.db.columnar`), and the partitioned ``"sharded"``
backend (:class:`ShardedColumnarRelation`, hash-partitioned code
matrices over one shared dictionary — see :mod:`repro.db.sharded`),
selected via ``Database(backend=...)``.

Durability lives one layer up: :func:`attach` opens (or recovers) a
:class:`DurableDatabase` whose mutations are mirrored into a framed,
CRC-checked write-ahead log (:mod:`repro.db.wal`, rotated into sealed,
checksummed segments) and periodically rolled into atomic incremental
snapshots (:mod:`repro.db.checkpoint`).  :mod:`repro.db.scrub` closes
the loop against on-disk corruption: ``DurableDatabase.verify()``
re-checks every artifact, ``DurableDatabase.repair()`` restores the
newest provably-consistent state, and ``attach(path, degraded=True)``
serves the intact remainder read-only when repair is impossible —
damage surfaces as :class:`CorruptSnapshotError` /
:class:`CorruptWalError`, never as silently wrong rows.
"""

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.database import Database, DurableDatabase, attach
from repro.db.interface import (
    CorruptionError,
    CorruptSnapshotError,
    CorruptWalError,
    DegradedDatabaseError,
    FrameAlgebra,
    StaleStructureError,
    TruncatedHistoryError,
    TupleStore,
    preferred_backend,
    preferred_shard_count,
    snapshot_stamps,
    stale_relations,
)
from repro.db.relation import Relation
from repro.db.scrub import ScrubIssue, ScrubReport
from repro.db.sharded import ShardedColumnarRelation

__all__ = [
    "ColumnarRelation",
    "CorruptSnapshotError",
    "CorruptWalError",
    "CorruptionError",
    "Database",
    "DegradedDatabaseError",
    "Dictionary",
    "DurableDatabase",
    "FrameAlgebra",
    "Relation",
    "ScrubIssue",
    "ScrubReport",
    "ShardedColumnarRelation",
    "StaleStructureError",
    "TruncatedHistoryError",
    "TupleStore",
    "attach",
    "preferred_backend",
    "preferred_shard_count",
    "snapshot_stamps",
    "stale_relations",
]
