"""Columnar relation storage: dictionary-encoded NumPy columns.

This module is the storage half of the columnar execution backend (the
operator half lives in :mod:`repro.joins.vectorized`).  It trades the
per-tuple Python objects of :class:`repro.db.relation.Relation` for a
layout the hardware likes:

**Dictionary encoding.**  A :class:`Dictionary` is an append-only
bijection between arbitrary hashable Python values and dense int codes
``0, 1, 2, ...``.  A :class:`ColumnarRelation` stores its tuples as one
``(n, arity)`` int64 code matrix (equivalently, ``arity`` aligned int64
columns) plus a reference to the dictionary that decodes them.  All
relations of a columnar :class:`~repro.db.database.Database` share one
dictionary, so joins between them compare codes — never Python values.

Because codes are dense, a whole ``k``-column key usually fits in a
single machine word: with ``c`` distinct values a column needs
``ceil(log2 c)`` bits, and :func:`pack_rows` packs ``k`` such columns
into one int64 whenever ``k * bits <= 63``.  Equality of packed words
is equality of rows, which turns ``distinct``, hash joins, semijoins
and group-by into one-dimensional :func:`numpy.unique`,
:func:`numpy.searchsorted` and :func:`numpy.isin` calls.  When the keys
genuinely cannot fit (huge dictionaries times wide keys),
:func:`common_keys` falls back to a lexicographic row ``unique`` that
is slower but never wrong.

**When each backend wins.**  The Python backend pays O(1) *per tuple
touched* with a large constant (hashing, tuple allocation, pointer
chasing); the columnar backend pays a small per-*operation* constant
(array allocation, Python/NumPy boundary) plus O(1) per tuple with a
tiny constant (SIMD-friendly scans and sorts).  So: bulk analytics —
full reducers, hash joins, distinct, large projections — favour the
columnar backend by one to two orders of magnitude once relations have
more than a few thousand tuples.  Single-tuple mutation, tiny
relations, and workloads dominated by per-row Python callbacks (e.g.
``retain`` with an arbitrary predicate) favour the Python backend,
which is why it stays the default.

**Delta segments.**  Single-tuple ``add``/``discard`` do not rewrite
the code matrix: they append to an op log whose net effect (the
*delta segments* — pending inserts and deletes) is merged into the
compacted *main segment* on read and folded in for good only when the
delta outgrows ``max(DELTA_COMPACT_MIN, DELTA_COMPACT_FRACTION *
len(main))``.  Between compactions the relation keeps exact history:
``delta_since(stamp)`` reports the net inserted/deleted code rows
since any recorded ``mutation_stamp``, which is what lets derived
answer structures (FAQ messages, direct-access stores, enumeration
blocks) repair themselves incrementally instead of rebuilding — see
the mutation/consistency contract in :mod:`repro.db.interface`.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.db.interface import TruncatedHistoryError

Value = object
Row = Tuple[Value, ...]

# ----------------------------------------------------------------------
# delta-segment compaction policy
# ----------------------------------------------------------------------
# Pending single-tuple ops are folded into the main segment once they
# touch more than max(DELTA_COMPACT_MIN, DELTA_COMPACT_FRACTION * n)
# distinct tuples.  Below the threshold reads merge on the fly and the
# op log keeps exact history for ColumnarRelation.delta_since; at the
# threshold incremental repair of derived structures would approach
# rebuild cost anyway, so compaction (which truncates history) is the
# designed fallback point.
DELTA_COMPACT_MIN = 64
DELTA_COMPACT_FRACTION = 0.25

# ----------------------------------------------------------------------
# decode instrumentation
# ----------------------------------------------------------------------
# Counts how many rows have been decoded back into Python value tuples
# since the last reset.  The vectorized pipelines (counting, FAQ
# aggregation, direct access, enumeration preprocessing) promise *zero*
# per-row decodes on columnar inputs; tests assert that promise through
# this hook rather than by auditing call sites.  The bump is lock-guarded:
# per-shard work runs on pool threads (repro.db.executor) and an unguarded
# read-modify-write would drop counts under contention.
_DECODED_ROWS = 0
_DECODED_LOCK = threading.Lock()


def decoded_row_count() -> int:
    """Rows decoded via :meth:`Dictionary.decode_rows` since last reset."""
    return _DECODED_ROWS


def reset_decoded_row_count() -> None:
    global _DECODED_ROWS
    with _DECODED_LOCK:
        _DECODED_ROWS = 0


# ----------------------------------------------------------------------
# aggregation-scratch instrumentation
# ----------------------------------------------------------------------
# Peak row count of any materialized aggregation intermediate — a
# gathered per-row message column or a reduced (per-group) message —
# since the last reset.  The chained FAQ pipeline materializes one
# full-size gathered column per child message; the fused pipeline
# (:func:`fused_group_lookup`) only ever materializes group-sized
# reduced values, and tests assert that win through this hook instead
# of auditing allocations.  Same locking rationale as the decode
# counter: per-shard work runs on pool threads and an unguarded max
# would let a smaller concurrent peak overwrite a larger one.
_SCRATCH_PEAK = 0
_SCRATCH_LOCK = threading.Lock()


def scratch_peak() -> int:
    """Largest materialized aggregation intermediate (rows) since reset."""
    return _SCRATCH_PEAK


def reset_scratch_peak() -> None:
    global _SCRATCH_PEAK
    with _SCRATCH_LOCK:
        _SCRATCH_PEAK = 0


def note_scratch(rows: int) -> None:
    """Record a materialized aggregation intermediate of ``rows`` rows."""
    global _SCRATCH_PEAK
    with _SCRATCH_LOCK:
        if rows > _SCRATCH_PEAK:
            _SCRATCH_PEAK = rows


class Dictionary:
    """An append-only bijection ``value <-> dense int code``.

    Codes are assigned in first-seen order.  The mapping only ever
    grows, so sharing one dictionary between many relations and frames
    is safe: codes never get reassigned behind a holder's back.
    """

    __slots__ = ("_code_of", "_values")

    def __init__(self) -> None:
        self._code_of: Dict[Value, int] = {}
        self._values: List[Value] = []

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> List[Value]:
        """All known values, in code order (index == code)."""
        return self._values

    def encode(self, value: Value) -> int:
        """The code of ``value``, assigning a fresh one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def encode_existing(self, value: Value) -> Optional[int]:
        """The code of ``value``, or ``None`` if it was never encoded."""
        return self._code_of.get(value)

    def extend_tail(self, values: Sequence[Value]) -> None:
        """Bulk-append fresh ``values`` as codes ``len(self)..`` .

        The fast path for re-seeding a dictionary from a checkpoint,
        whose dictionary files store exactly the value suffix in code
        order — one dict update instead of one :meth:`encode` call per
        value.  Every value must be previously unseen: a duplicate
        would silently fork the bijection (codes past it shift by
        one), so it raises ``ValueError`` instead and leaves the
        dictionary unchanged.
        """
        start = len(self._values)
        code_of = self._code_of
        code_of.update(zip(values, range(start, start + len(values))))
        if len(code_of) != start + len(values):
            # a duplicate collapsed the update: restore the map from
            # the (untouched) value list and refuse
            self._code_of = {v: c for c, v in enumerate(self._values)}
            raise ValueError(
                "extend_tail got an already-encoded or repeated value"
            )
        self._values.extend(values)

    def decode(self, code: int) -> Value:
        return self._values[code]

    def encode_rows(
        self, rows: Iterable[Sequence[Value]], arity: int
    ) -> np.ndarray:
        """Encode an iterable of width-``arity`` rows into a code matrix.

        This is the only place the columnar backend touches values one
        by one; everything downstream is vectorized.
        """
        code_of = self._code_of
        values = self._values
        flat: List[int] = []
        count = 0
        for row in rows:
            if len(row) != arity:
                raise ValueError(
                    f"row of width {len(row)} for arity {arity}"
                )
            count += 1
            for value in row:
                code = code_of.get(value)
                if code is None:
                    code = len(values)
                    code_of[value] = code
                    values.append(value)
                flat.append(code)
        return np.asarray(flat, dtype=np.int64).reshape(count, arity)

    def decode_rows(self, codes: np.ndarray) -> List[Row]:
        """Decode a code matrix back into a list of value tuples."""
        global _DECODED_ROWS
        with _DECODED_LOCK:
            _DECODED_ROWS += len(codes)
        values = self._values
        return [tuple(values[c] for c in row) for row in codes.tolist()]


# ----------------------------------------------------------------------
# vectorized key primitives
# ----------------------------------------------------------------------
def pack_rows(codes: np.ndarray, cardinality: int) -> Optional[np.ndarray]:
    """Pack each row of a code matrix into one int64 key, if it fits.

    With ``cardinality`` distinct codes, each column needs
    ``bit_length(cardinality - 1)`` bits; ``k`` columns fit when the
    total stays within 63 bits.  Returns ``None`` on overflow — callers
    fall back to :func:`numpy.unique` over rows.
    """
    n, k = codes.shape
    if k == 0:
        return np.zeros(n, dtype=np.int64)
    bits = max(int(cardinality - 1).bit_length(), 1) if cardinality > 1 else 1
    if bits * k > 63:
        return None
    packed = codes[:, 0].astype(np.int64, copy=True)
    for j in range(1, k):
        np.left_shift(packed, bits, out=packed)
        np.bitwise_or(packed, codes[:, j], out=packed)
    return packed


def unique_rows(codes: np.ndarray, cardinality: int) -> np.ndarray:
    """Distinct rows of a code matrix (order unspecified — set semantics)."""
    if len(codes) <= 1:
        return codes.copy()
    if codes.shape[1] == 0:
        return codes[:1]
    packed = pack_rows(codes, cardinality)
    if packed is not None:
        _, first = np.unique(packed, return_index=True)
        return codes[first]
    return np.unique(codes, axis=0)


def common_keys(
    left: np.ndarray, right: np.ndarray, cardinality: int
) -> Tuple[np.ndarray, np.ndarray]:
    """1-D int64 keys for two code matrices, comparable across both.

    Equal rows (within or across the two inputs) get equal keys.  Uses
    64-bit packing when possible, otherwise a joint lexicographic
    ``unique`` over the concatenation.
    """
    packed_left = pack_rows(left, cardinality)
    if packed_left is not None:
        packed_right = pack_rows(right, cardinality)
        if packed_right is not None:
            return packed_left, packed_right
    both = np.concatenate([left, right], axis=0)
    _, inverse = np.unique(both, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return inverse[: len(left)], inverse[len(left):]


def atom_projection(
    atom_variables: Sequence[str],
) -> Tuple[Tuple[int, ...], List[Tuple[int, int]]]:
    """First-occurrence positions and repeated-position checks.

    Returns ``(proj, checks)``: the positions that survive projection
    onto distinct variables (first occurrences, in order) and the
    ``(position, first_position)`` pairs a stored tuple must satisfy
    with equality to pass the atom's repeated-variable selection.
    This is the single-row counterpart of :func:`atom_codes` — the
    incremental maintainers use it to map a relation's delta rows onto
    frame rows, so the semantics cannot drift from the bulk path.
    """
    first: Dict[str, int] = {}
    proj: List[int] = []
    checks: List[Tuple[int, int]] = []
    for pos, var in enumerate(atom_variables):
        if var in first:
            checks.append((pos, first[var]))
        else:
            first[var] = pos
            proj.append(pos)
    return tuple(proj), checks


def atom_codes(
    relation: "ColumnarRelation", atom_variables: Sequence[str]
) -> Tuple[List[str], Dict[str, int], np.ndarray]:
    """Bind a relation's code matrix to an atom's variable tuple.

    Repeated variables act as equality selections, applied as
    vectorized column compares.  Returns the distinct variables in
    first-occurrence order, each variable's first column position, and
    the filtered code matrix.  Shared by the frame constructor and the
    Generic Join trie builder so repeated-variable semantics cannot
    drift between them.
    """
    distinct: List[str] = []
    first_pos: Dict[str, int] = {}
    mask: Optional[np.ndarray] = None
    codes = relation.codes()
    for pos, var in enumerate(atom_variables):
        if var not in first_pos:
            first_pos[var] = pos
            distinct.append(var)
        else:
            eq = codes[:, pos] == codes[:, first_pos[var]]
            mask = eq if mask is None else (mask & eq)
    if mask is not None:
        codes = codes[mask]
    return distinct, first_pos, codes


def match_pairs(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(li, ri)`` with ``left_keys[li] == right_keys[ri]``.

    The vectorized core of the hash join: sort the right keys once,
    locate each left key's run by binary search, then expand the runs
    with ``repeat``/``cumsum`` arithmetic — no per-row Python.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_index = np.repeat(np.arange(len(left_keys)), counts)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(offsets, counts)
    right_index = order[np.repeat(starts, counts) + within]
    return left_index, right_index


def group_rows(
    codes: np.ndarray, cardinality: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Group equal rows of a code matrix.

    Returns ``(representatives, group_ids, group_count)``: one
    representative row per distinct key (in ascending key order), a
    dense group id in ``[0, group_count)`` for every input row, and the
    number of groups.  Width-0 matrices form a single group.  This is
    the vectorized core of group-by-aggregate: callers pair the group
    ids with :func:`group_reduce`.
    """
    packed = pack_rows(codes, cardinality)
    if packed is not None:
        _, first, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
    else:
        _, first, inverse = np.unique(
            codes, axis=0, return_index=True, return_inverse=True
        )
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return codes[first], inverse, len(first)


def group_reduce(
    values: np.ndarray,
    group_ids: np.ndarray,
    group_count: int,
    ufunc,
) -> np.ndarray:
    """Reduce ``values`` per dense group id with a binary ufunc.

    Sorts by group id once, then reduces each contiguous segment with
    ``ufunc.reduceat`` — ``np.add`` realizes counting, ``np.minimum`` /
    ``np.maximum`` the tropical semirings, and ``np.frompyfunc`` lifts
    an arbitrary Python fold over object arrays (the escape hatch for
    semirings without a native dtype).  Every group id in
    ``[0, group_count)`` must occur at least once (guaranteed when the
    ids come from :func:`group_rows`).
    """
    if group_count == 0:
        return values[:0]
    order = np.argsort(group_ids, kind="stable")
    sorted_values = values[order]
    sorted_ids = group_ids[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    return ufunc.reduceat(sorted_values, starts)


def block_slices(
    sorted_codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contiguous equal-row blocks of an already-sorted code matrix.

    Returns ``(representatives, starts, ends)``: one representative
    row per block plus the half-open ``[start, end)`` bounds.  Rows
    equal under the matrix's columns must already be adjacent (sort by
    those columns first); width-0 matrices form a single block.  The
    direct-access and enumeration builders derive their per-separator
    slice maps from this.
    """
    n = len(sorted_codes)
    if not n:
        empty = np.empty(0, dtype=np.int64)
        return sorted_codes[:0], empty, empty
    if sorted_codes.shape[1]:
        change = np.any(sorted_codes[1:] != sorted_codes[:-1], axis=1)
        starts = np.flatnonzero(np.concatenate(([True], change)))
    else:
        starts = np.zeros(1, dtype=np.int64)
    ends = np.append(starts[1:], n)
    return sorted_codes[starts], starts, ends


def lookup_rows(
    queries: np.ndarray, table: np.ndarray, cardinality: int
) -> np.ndarray:
    """For each query row, its index in ``table`` — or ``-1`` if absent.

    ``table`` must hold distinct rows (e.g. the representatives from
    :func:`group_rows`).  One joint key computation plus a binary
    search per query row; no per-row Python.
    """
    if not len(table):
        return np.full(len(queries), -1, dtype=np.int64)
    query_keys, table_keys = common_keys(queries, table, cardinality)
    order = np.argsort(table_keys, kind="stable")
    sorted_keys = table_keys[order]
    pos = np.searchsorted(sorted_keys, query_keys)
    pos = np.minimum(pos, len(sorted_keys) - 1)
    found = sorted_keys[pos] == query_keys
    return np.where(found, order[pos], -1).astype(np.int64, copy=False)


def fused_group_lookup(
    source_sub: np.ndarray,
    source_values: np.ndarray,
    query_sub: np.ndarray,
    cardinality: int,
    plus_ufunc,
    times_fn,
    target: np.ndarray,
    scratch: Optional[np.ndarray] = None,
    kernel=None,
) -> np.ndarray:
    """Fused ``group_reduce`` → binary-search gather → ⊗-combine.

    Semantically identical to the chained pipeline

        reps, ids, n = group_rows(source_sub, cardinality)
        reduced = group_reduce(source_values, ids, n, plus_ufunc)
        index = lookup_rows(query_sub, reps, cardinality)
        found = index >= 0
        target[:] = times_fn(target, reduced[np.where(found, index, 0)])

    but in one pass: the source rows are key-sorted once, each equal-key
    segment is ⊕-reduced (``reduceat``), the query keys binary-search
    the sorted unique source keys directly, and the gathered segment
    values are ⊗-combined into ``target`` in place (``out=`` for native
    dtypes, reusing ``scratch`` for the gather).  Neither the group
    representative matrix (G×d) nor — given a ``scratch`` buffer — a
    fresh full-size gathered column is materialized; the new
    allocations are the 1-D key columns and the group-sized reduced
    values, reported through :func:`note_scratch` (the chained pipeline
    reports its full-size gathered columns through the same hook, which
    is how tests assert the fusion's peak-memory win).

    The per-group ⊕ fold runs in source row order within each key (the
    stable sort), exactly like :func:`group_reduce` after
    :func:`group_rows` — results are bit-identical to the chain for
    every semiring, including object-dtype carriers.

    Query rows without a matching source key pick up an arbitrary
    segment's value; mask them with the returned ``found`` array, the
    same way the chained pipeline masks its dead rows.

    ``kernel``, when given, is a compiled fused segment-reduce + search
    + combine (:mod:`repro.semiring.kernels`, numba-jitted); it
    replaces the reduceat/searchsorted/gather steps with one pass.
    """
    n = len(target)
    if not len(source_sub):
        return np.zeros(n, dtype=bool)
    q_keys, s_keys = common_keys(query_sub, source_sub, cardinality)
    order = np.argsort(s_keys, kind="stable")
    sorted_keys = s_keys[order]
    seg_starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    uniq_keys = sorted_keys[seg_starts]
    sorted_values = source_values[order]
    note_scratch(len(uniq_keys))
    found = np.empty(n, dtype=bool)
    if kernel is not None:
        kernel(sorted_values, seg_starts, uniq_keys, q_keys, target, found)
        return found
    reduced = plus_ufunc.reduceat(sorted_values, seg_starts)
    pos = np.searchsorted(uniq_keys, q_keys)
    np.minimum(pos, len(uniq_keys) - 1, out=pos)
    np.equal(uniq_keys[pos], q_keys, out=found)
    if (
        scratch is not None
        and scratch.shape == target.shape
        and scratch.dtype == reduced.dtype
        and reduced.dtype != np.dtype(object)
    ):
        np.take(reduced, pos, out=scratch)
        times_fn(target, scratch, out=target)
    else:
        gathered = reduced[pos]
        note_scratch(len(gathered))
        target[:] = times_fn(target, gathered)
    return found


class ColumnarRelation:
    """A named, fixed-arity tuple set stored as NumPy code columns.

    Drop-in replacement for :class:`repro.db.relation.Relation`: same
    constructor shape, same mutation/access/operator surface, same set
    semantics.  Values are dictionary-encoded on ingestion; relational
    operators work on the code matrix and only decode at the Python
    boundary (iteration, ``rows()``, legacy ``index()``).

    Storage is a compacted main segment plus delta segments: an op log
    of single-tuple inserts/deletes merged on read and compacted when
    it outgrows a fraction of the main segment (module docstring).
    ``mutation_stamp`` / ``delta_since`` expose the consistency
    contract of :mod:`repro.db.interface` to derived structures.
    """

    backend = "columnar"

    def __init__(
        self,
        name: str,
        arity: int,
        rows: Optional[Iterable[Sequence[Value]]] = None,
        dictionary: Optional[Dictionary] = None,
    ) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        # Compacted main segment: deduplicated (n, arity) code matrix.
        self._main = np.empty((0, arity), dtype=np.int64)
        # Delta segments: append-only op log since the last barrier
        # (coded tuple, True=insert/False=delete, stamp), plus its
        # last-op-wins net view used by merge-on-read and has_coded.
        self._log: List[Tuple[Tuple[int, ...], bool, int]] = []
        self._net: Dict[Tuple[int, ...], bool] = {}
        self._stamp = 0
        # Stamp as of the last barrier (compaction / bulk rewrite);
        # delta_since cannot answer for stamps before it.
        self._base_stamp = 0
        self._merged: Optional[np.ndarray] = None
        self._main_set: Optional[FrozenSet[Tuple[int, ...]]] = None
        self._tuple_cache: Optional[List[Row]] = None
        self._set_cache: Optional[FrozenSet[Row]] = None
        self._indexes: Dict[Tuple[int, ...], Dict[Row, List[Row]]] = {}
        self._distinct_counts: Optional[Tuple[int, ...]] = None
        # Durability hook (repro.db.wal.WalJournal, or the sharded
        # substrate's forwarding wrapper).  None costs one attribute
        # check per mutation; non-None mirrors every op and barrier
        # into the write-ahead log.
        self._journal = None
        # Residency hook (repro.db.spill.SpillPool).  None costs one
        # attribute check per read/barrier; non-None lets the pool
        # swap the main segment between RAM and an np.memmap-backed
        # file, keeping only the LRU-hot shards resident.
        self._spill = None
        if rows is not None:
            self.add_all(rows)

    # ------------------------------------------------------------------
    # internal state
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._tuple_cache = None
        self._set_cache = None
        self._merged = None
        self._indexes.clear()
        self._distinct_counts = None

    def _compact_limit(self) -> int:
        return max(
            DELTA_COMPACT_MIN,
            int(DELTA_COMPACT_FRACTION * len(self._main)),
        )

    def _main_frozen(self) -> FrozenSet[Tuple[int, ...]]:
        """Coded-tuple set of the main segment (cached per epoch)."""
        if self._main_set is None:
            self._main_set = frozenset(map(tuple, self._main.tolist()))
        return self._main_set

    def _merge(self) -> np.ndarray:
        """The merged view: main minus net deletes plus net inserts."""
        if not self._net:
            return self._main
        ops = np.asarray(list(self._net.keys()), dtype=np.int64).reshape(
            len(self._net), self.arity
        )
        is_insert = np.fromiter(
            self._net.values(), dtype=bool, count=len(self._net)
        )
        main_keys, op_keys = common_keys(
            self._main, ops, len(self.dictionary)
        )
        delete_keys = op_keys[~is_insert]
        base = (
            self._main[~np.isin(main_keys, delete_keys)]
            if len(delete_keys)
            else self._main
        )
        appends = ops[is_insert & ~np.isin(op_keys, main_keys)]
        if not len(appends):
            return base
        return np.concatenate([base, appends], axis=0)

    def _adopt(self, codes: np.ndarray) -> None:
        """Make ``codes`` the new main segment (a history barrier)."""
        self._main = codes
        self._log.clear()
        self._net.clear()
        self._base_stamp = self._stamp
        self._main_set = None
        self._merged = codes
        if self._spill is not None:
            self._spill.adopted(self)

    def _log_op(self, coded: Tuple[int, ...], is_insert: bool) -> None:
        self._stamp += 1
        self._log.append((coded, is_insert, self._stamp))
        self._net[coded] = is_insert
        self._invalidate()
        if self._journal is not None:
            self._journal.record_op(self.name, coded, is_insert)
        if len(self._net) > self._compact_limit():
            # Auto-compaction is a pure function of the op stream, so
            # WAL replay re-triggers it at exactly this point — it is
            # deliberately *not* journaled (only explicit compact()
            # calls are, since they are invisible to the op stream).
            self._adopt(self._merge())

    def compact(self) -> None:
        """Fold the delta segments into the main segment.

        A no-op when there are no pending ops: the barrier stamp does
        not move and history survives.  An effective compaction leaves
        content unchanged (``mutation_stamp`` does not move) but
        truncates history: ``delta_since`` raises
        :class:`~repro.db.interface.TruncatedHistoryError` for stamps
        recorded before this point, and the barrier is mirrored into
        the write-ahead log as an explicit record.
        """
        if self._net:
            self._adopt(self._merge())
            if self._journal is not None:
                self._journal.record_compact(self.name)

    @property
    def mutation_stamp(self) -> int:
        """Monotone stamp, bumped by every (possibly) mutating call."""
        return self._stamp

    @property
    def delta_size(self) -> int:
        """Distinct tuples touched by the pending delta segments."""
        return len(self._net)

    def delta_since(self, stamp: int) -> Tuple[np.ndarray, np.ndarray]:
        """Net ``(inserted, deleted)`` code rows since ``stamp``.

        Exact: logically-absorbed ops (re-adding a present tuple, an
        add/discard pair) cancel out.  Raises
        :class:`~repro.db.interface.TruncatedHistoryError` when
        ``stamp`` predates the last barrier (compaction or bulk
        rewrite) or lies beyond the current stamp (the caller's
        snapshot belongs to a pre-recovery incarnation) — the history
        needed no longer exists and callers must rebuild.
        """
        empty = np.empty((0, self.arity), dtype=np.int64)
        if stamp == self._stamp:
            return empty, empty
        if stamp < self._base_stamp or stamp > self._stamp:
            raise TruncatedHistoryError(self.name, stamp, self._base_stamp)
        before: Dict[Tuple[int, ...], bool] = {}
        touched: Dict[Tuple[int, ...], None] = {}
        for coded, is_insert, op_stamp in self._log:
            if op_stamp <= stamp:
                before[coded] = is_insert
            else:
                touched[coded] = None
        inserted: List[Tuple[int, ...]] = []
        deleted: List[Tuple[int, ...]] = []
        for coded in touched:
            now = self._net[coded]
            was = before.get(coded)
            if was is None:
                was = coded in self._main_frozen()
            if now and not was:
                inserted.append(coded)
            elif was and not now:
                deleted.append(coded)

        def matrix(rows: List[Tuple[int, ...]]) -> np.ndarray:
            if not rows:
                return empty
            return np.asarray(rows, dtype=np.int64).reshape(
                len(rows), self.arity
            )

        return matrix(inserted), matrix(deleted)

    def codes(self) -> np.ndarray:
        """The deduplicated ``(n, arity)`` int64 code matrix (merged view)."""
        if self._spill is not None:
            self._spill.touch(self)
        if self._merged is None:
            self._merged = self._merge()
        return self._merged

    def _tuples(self) -> List[Row]:
        """Decoded rows, aligned with :meth:`codes` (cached)."""
        if self._tuple_cache is None:
            self._tuple_cache = self.dictionary.decode_rows(self.codes())
        return self._tuple_cache

    def _row_set(self) -> FrozenSet[Row]:
        if self._set_cache is None:
            self._set_cache = frozenset(self._tuples())
        return self._set_cache

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _check_width(self, tup: Row) -> Row:
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, "
                f"got tuple of length {len(tup)}"
            )
        return tup

    def add(self, row: Sequence[Value]) -> None:
        """Insert one tuple; duplicates are silently absorbed.

        Appends to the delta segments in O(1); the main segment is not
        rewritten.  ``mutation_stamp`` advances even when the tuple was
        already present (``delta_since`` reports the exact net change).
        """
        tup = self._check_width(tuple(row))
        encode = self.dictionary.encode
        self._log_op(tuple(encode(v) for v in tup), True)

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Bulk insert: one encode pass, one vectorized dedupe.

        Small batches (``<= DELTA_COMPACT_MIN`` rows) route through the
        delta segments and keep history; larger ones rewrite the main
        segment and act as a history barrier.
        """
        fresh = self.dictionary.encode_rows(
            (self._check_width(tuple(r)) for r in rows), self.arity
        )
        if not len(fresh):
            return
        if len(fresh) <= DELTA_COMPACT_MIN:
            for coded in map(tuple, fresh.tolist()):
                self._log_op(coded, True)
            return
        self.add_coded_batch(fresh)

    def discard(self, row: Sequence[Value]) -> None:
        """Remove a tuple if present (delta-segment append, O(1))."""
        tup = self._check_width(tuple(row))
        coded = []
        for value in tup:
            code = self.dictionary.encode_existing(value)
            if code is None:
                return  # value unseen => tuple cannot be stored
            coded.append(code)
        self._log_op(tuple(coded), False)

    def apply_coded(self, coded: Sequence[int], insert: bool = True) -> None:
        """One insert/delete of an *already-encoded* tuple (O(1) log append).

        Code-level counterpart of :meth:`add`/:meth:`discard` for
        callers that route batches of codes themselves (the sharded
        substrate of :mod:`repro.db.sharded`).  The codes must come
        from this relation's dictionary; no validation is performed.
        """
        if len(coded) != self.arity:
            raise ValueError(
                f"coded row of width {len(coded)} for arity {self.arity}"
            )
        self._log_op(tuple(int(c) for c in coded), insert)

    def add_coded_batch(self, codes: np.ndarray) -> None:
        """Bulk-insert already-encoded rows (a history barrier).

        The code-level counterpart of :meth:`add_all`'s bulk path:
        one concatenate + one vectorized dedupe, no per-row Python.
        Used by the sharded substrate to route whole code batches to
        their owning shard without re-encoding.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:  # width-0 rows defeat reshape(-1, 0)
            codes = codes.reshape(len(codes), self.arity)
        if not len(codes):
            return
        merged = np.concatenate([self.codes(), codes], axis=0)
        self._stamp += 1
        self._invalidate()
        self._adopt(unique_rows(merged, len(self.dictionary)))
        if self._journal is not None:
            self._journal.record_batch(self.name, codes)

    def remove_coded_batch(self, codes: np.ndarray) -> int:
        """Bulk-delete already-encoded rows; return the removed count.

        The deletion counterpart of :meth:`add_coded_batch`: one key
        pass over the merged view, no per-row Python.  A matching
        removal is a bulk rewrite and therefore a history barrier
        (mirrored into the write-ahead log); an empty or fully-absent
        batch touches nothing — no stamp advance, no barrier.  Used by
        WAL replay (``retain`` barriers are logged as the removed code
        rows, since predicates cannot be replayed) and by replication
        followers applying shipped deletions.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            codes = codes.reshape(len(codes), self.arity)
        if not len(codes):
            return 0
        merged = self.codes()
        if not len(merged):
            return 0
        if self.arity == 0:
            # One deduplicated row at most; removing () empties it.
            removed = len(merged)
            keep = np.zeros(len(merged), dtype=bool)
        else:
            merged_keys, drop_keys = common_keys(
                merged, codes, len(self.dictionary)
            )
            keep = ~np.isin(merged_keys, drop_keys)
            removed = int(len(merged) - keep.sum())
        if not removed:
            return 0
        retained = merged[keep]
        self._stamp += 1
        self._invalidate()
        self._adopt(retained)
        if self._journal is not None:
            self._journal.record_remove(self.name, codes)
        return removed

    def retain(self, predicate) -> int:
        """Keep only tuples satisfying ``predicate``; return removed count.

        The predicate is an arbitrary Python callable, so this is a
        decode-and-scan — one of the operations where the Python
        backend's layout is no worse (see module docstring).

        Semantics under delta segments: the predicate is evaluated on
        the *merged* view (pending ops included, last-op-wins), and a
        removing ``retain`` is a bulk rewrite — it compacts the result
        into the main segment and acts as a history barrier for
        ``delta_since``.  A ``retain`` that removes nothing leaves the
        stamp, the delta segments and the history untouched.
        """
        tuples = self._tuples()
        if not tuples:
            return 0
        keep = np.fromiter(
            (bool(predicate(t)) for t in tuples),
            dtype=bool,
            count=len(tuples),
        )
        removed = int(len(tuples) - keep.sum())
        if removed:
            # Route through remove_coded_batch so the barrier reaches
            # the write-ahead log as the removed code rows (an
            # arbitrary Python predicate cannot be replayed).
            self.remove_coded_batch(self.codes()[~keep])
        return removed

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.codes())

    def __iter__(self) -> Iterator[Row]:
        return iter(self._tuples())

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._row_set()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarRelation):
            return (
                self.arity == other.arity
                and self._row_set() == other._row_set()
            )
        rows = getattr(other, "rows", None)
        if callable(rows) and hasattr(other, "arity"):
            return self.arity == other.arity and self._row_set() == rows()
        return NotImplemented

    def __hash__(self):  # relations are mutable
        raise TypeError("ColumnarRelation objects are unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarRelation({self.name!r}, arity={self.arity}, "
            f"size={len(self)})"
        )

    def rows(self) -> FrozenSet[Row]:
        """A frozen snapshot of the (decoded) tuple set."""
        return self._row_set()

    def has_coded(self, coded: Sequence[int]) -> bool:
        """Membership test on an already-encoded tuple — no value decode.

        Weight stores and other code-level callers use this instead of
        ``__contains__``, which would decode the whole relation just to
        build a value set.  O(1) under update streams: the net delta
        ops answer directly, falling back to the per-epoch main-segment
        set (rebuilt only at compaction, not per mutation).
        """
        key = tuple(coded)
        net = self._net.get(key)
        if net is not None:
            return net
        return key in self._main_frozen()

    def is_empty(self) -> bool:
        return not len(self.codes())

    # ------------------------------------------------------------------
    # indexes and relational operators
    # ------------------------------------------------------------------
    def _check_columns(self, columns: Sequence[int]) -> Tuple[int, ...]:
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise IndexError(
                    f"column {c} out of range for arity {self.arity}"
                )
        return cols

    def index(self, columns: Sequence[int]) -> Dict[Row, List[Row]]:
        """Legacy dict-of-lists hash index over decoded tuples (cached).

        Provided for compatibility with callers written against the
        Python backend (brute-force oracle, enumeration).  Vectorized
        operators never use it — they group via sorted code arrays.
        """
        cols = self._check_columns(columns)
        cached = self._indexes.get(cols)
        if cached is not None:
            return cached
        idx: Dict[Row, List[Row]] = {}
        for tup in self._tuples():
            key = tuple(tup[c] for c in cols)
            idx.setdefault(key, []).append(tup)
        self._indexes[cols] = idx
        return idx

    def lookup(self, columns: Sequence[int], key: Sequence[Value]) -> List[Row]:
        """All tuples whose projection onto ``columns`` equals ``key``."""
        return self.index(columns).get(tuple(key), [])

    def distinct_values(self, column: int) -> set:
        """The set of values appearing in one column (vectorized)."""
        (col,) = self._check_columns((column,))
        codes = np.unique(self.codes()[:, col])
        decode = self.dictionary.decode
        return {decode(int(c)) for c in codes}

    def column_distinct_counts(self) -> Tuple[int, ...]:
        """Distinct codes per column (cached until the next mutation).

        The cheap statistic behind statistics-aware planning (ROADMAP
        open item 4): Generic Join breaks variable-order ties toward
        variables whose columns hold fewer distinct values (narrower
        frontiers), and ``explain()`` cites the measured counts.  One
        ``np.unique`` per column over the merged view; ``_invalidate``
        drops the cache, so a stale count is never served.
        """
        if self._distinct_counts is None:
            codes = self.codes()
            self._distinct_counts = tuple(
                int(len(np.unique(codes[:, j])))
                for j in range(self.arity)
            )
        return self._distinct_counts

    def project(
        self, columns: Sequence[int], name: Optional[str] = None
    ) -> "ColumnarRelation":
        """Projection onto column positions (set semantics, vectorized)."""
        cols = self._check_columns(columns)
        out = ColumnarRelation(
            name or f"{self.name}_proj", len(cols), dictionary=self.dictionary
        )
        taken = self.codes()[:, list(cols)] if cols else self.codes()[:, :0]
        out._main = unique_rows(taken, len(self.dictionary))
        return out

    def select_eq(self, column: int, value: Value) -> "ColumnarRelation":
        """Selection ``column = value`` (vectorized compare)."""
        (col,) = self._check_columns((column,))
        out = ColumnarRelation(
            f"{self.name}_sel", self.arity, dictionary=self.dictionary
        )
        code = self.dictionary.encode_existing(value)
        if code is not None:
            codes = self.codes()
            out._main = codes[codes[:, col] == code]
        return out

    def active_domain(self) -> set:
        """All values appearing anywhere in the relation."""
        codes = np.unique(self.codes())
        decode = self.dictionary.decode
        return {decode(int(c)) for c in codes}

    def copy(self, name: Optional[str] = None) -> "ColumnarRelation":
        """An independent copy (the dictionary is shared — append-only)."""
        out = ColumnarRelation(
            name or self.name, self.arity, dictionary=self.dictionary
        )
        out._main = self.codes().copy()
        return out

    # ------------------------------------------------------------------
    # durability (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Tuple[np.ndarray, int]:
        """The merged code matrix and current stamp, for checkpointing.

        The snapshot is the *merged* view — pending delta segments are
        included, not folded (no barrier, no stamp movement), so taking
        a checkpoint never perturbs live ``delta_since`` history.
        """
        return self.codes(), self._stamp

    def restore_state(self, codes: np.ndarray, stamp: int) -> None:
        """Install a snapshot: ``codes`` becomes the main segment.

        History restarts at ``stamp`` (``_base_stamp == stamp``), so
        ``delta_since(stamp)`` is immediately answerable and earlier
        stamps raise — identical semantics to a relation that compacted
        at the moment the snapshot was taken.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.arity:
            codes = codes.reshape(len(codes), self.arity)
        self._log.clear()
        self._net.clear()
        self._stamp = self._base_stamp = int(stamp)
        self._invalidate()
        self._main = codes
        self._main_set = None
        if self._spill is not None:
            self._spill.adopted(self)
        self._merged = codes
