"""Atomic per-relation snapshots: the checkpoint half of durability.

A checkpoint is a directory ``ckpt-<n>/`` holding

- ``meta.json`` — one entry per relation (arity, backend kind, stamp,
  shard layout), plus the dictionary length;
- ``dictionary.pkl`` — the shared value dictionary, in code order
  (columnar/sharded databases only);
- per-relation payloads, named by relation *index* (names may not be
  filename-safe): ``<i>.c<j>.npy`` — one ``np.save`` file per column
  of a columnar relation; ``<i>.s<s>.c<j>.npy`` — per shard, per
  column, for sharded relations; ``<i>.rows.pkl`` — the tuple set of
  a python-backend relation.

Atomicity is two-stage.  First the snapshot is written file-by-file
into ``ckpt-<n>.tmp`` (each file fsynced) and renamed to ``ckpt-<n>``
in one ``os.replace``.  Second — and this is the *only* commit point —
``MANIFEST.json`` is atomically replaced to reference the new
checkpoint and its fresh WAL file.  A crash anywhere before the
manifest swap leaves the old manifest pointing at the old checkpoint
plus the old (still-growing, still-valid) WAL: recovery never sees a
half-written snapshot.  Stale ``ckpt-*``/``wal-*`` files left by such
a crash are garbage-collected by the next successful checkpoint.

Snapshots store the *merged* view (pending delta segments included)
and the exact ``mutation_stamp`` per relation (per shard for sharded
relations), so a recovered relation answers ``delta_since`` from the
checkpoint stamp onward — identical semantics to one that compacted
at snapshot time.

Every write/rename site carries a :mod:`repro.util.faultpoints` hook.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.relation import Relation
from repro.db.sharded import ShardedColumnarRelation
from repro.util.faultpoints import declare, fault_point

__all__ = [
    "CRASH_POINTS",
    "MANIFEST",
    "commit_manifest",
    "load_dictionary",
    "load_snapshot",
    "read_manifest",
    "wal_filename",
    "write_snapshot",
]

MANIFEST = "MANIFEST.json"

CRASH_POINTS = declare(
    "ckpt.begin",
    "ckpt.column.write",
    "ckpt.dictionary.write",
    "ckpt.meta.write",
    "ckpt.dir.rename",
    "ckpt.wal.create",
    "ckpt.manifest.write",
    "ckpt.manifest.rename",
    module=__name__,
)


def wal_filename(index: int) -> str:
    """The WAL file paired with checkpoint ``index``."""
    return f"wal-{index}.log"


def snapshot_dirname(index: int) -> str:
    return f"ckpt-{index}"


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_bytes(path: str, data: bytes, point: str) -> None:
    fault_point(point)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _write_column(path: str, column: np.ndarray) -> None:
    fault_point("ckpt.column.write")
    with open(path, "wb") as handle:
        np.save(handle, np.ascontiguousarray(column))
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# snapshot write
# ----------------------------------------------------------------------
def write_snapshot(root: str, db, index: int) -> str:
    """Write ``ckpt-<index>/`` under ``root``; return its final path.

    Builds the whole directory under ``ckpt-<index>.tmp`` and renames
    once — readers either see a complete snapshot or none.  The
    manifest is *not* touched here; see :func:`commit_manifest`.
    """
    tmp = os.path.join(root, snapshot_dirname(index) + ".tmp")
    final = os.path.join(root, snapshot_dirname(index))
    for stale in (tmp, final):
        if os.path.exists(stale):
            shutil.rmtree(stale)
    os.makedirs(tmp)
    fault_point("ckpt.begin")
    relations: List[Dict[str, Any]] = []
    for idx, rel in enumerate(db):
        entry: Dict[str, Any] = {"name": rel.name, "arity": rel.arity}
        if isinstance(rel, ShardedColumnarRelation):
            entry["kind"] = "sharded"
            entry["shard_count"] = rel.shard_count
            entry["key_column"] = rel.key_column
            shard_stamps: List[int] = []
            shard_counts: List[int] = []
            for s, (codes, stamp) in enumerate(rel.snapshot_state()):
                shard_stamps.append(stamp)
                shard_counts.append(len(codes))
                for j in range(rel.arity):
                    _write_column(
                        os.path.join(tmp, f"{idx}.s{s}.c{j}.npy"),
                        codes[:, j],
                    )
            entry["shard_stamps"] = shard_stamps
            entry["shard_counts"] = shard_counts
        elif isinstance(rel, ColumnarRelation):
            codes, stamp = rel.snapshot_state()
            entry["kind"] = "columnar"
            entry["stamp"] = stamp
            entry["count"] = len(codes)
            for j in range(rel.arity):
                _write_column(
                    os.path.join(tmp, f"{idx}.c{j}.npy"), codes[:, j]
                )
        else:
            rows, stamp = rel.snapshot_state()
            entry["kind"] = "python"
            entry["stamp"] = stamp
            _write_bytes(
                os.path.join(tmp, f"{idx}.rows.pkl"),
                pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL),
                "ckpt.column.write",
            )
        relations.append(entry)
    dictionary = getattr(db, "_dictionary", None)
    meta: Dict[str, Any] = {
        "index": index,
        "relations": relations,
        "dictionary_len": len(dictionary) if dictionary is not None else 0,
    }
    if dictionary is not None:
        _write_bytes(
            os.path.join(tmp, "dictionary.pkl"),
            pickle.dumps(
                dictionary.values(), protocol=pickle.HIGHEST_PROTOCOL
            ),
            "ckpt.dictionary.write",
        )
    _write_bytes(
        os.path.join(tmp, "meta.json"),
        json.dumps(meta, indent=1).encode("utf-8"),
        "ckpt.meta.write",
    )
    fault_point("ckpt.dir.rename")
    os.replace(tmp, final)
    _fsync_dir(root)
    return final


# ----------------------------------------------------------------------
# snapshot read
# ----------------------------------------------------------------------
def read_meta(root: str, index: int) -> Dict[str, Any]:
    path = os.path.join(root, snapshot_dirname(index), "meta.json")
    with open(path, "rb") as handle:
        return json.loads(handle.read().decode("utf-8"))


def load_dictionary(root: str, index: int) -> List[Any]:
    """The snapshotted dictionary values, in code order (may be [])."""
    path = os.path.join(root, snapshot_dirname(index), "dictionary.pkl")
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _load_codes(
    ckpt: str, pattern: str, arity: int, count: int
) -> np.ndarray:
    if arity == 0:
        return np.empty((count, 0), dtype=np.int64)
    columns = [
        np.load(os.path.join(ckpt, pattern.format(j=j)))
        for j in range(arity)
    ]
    if not count and not len(columns[0]):
        return np.empty((0, arity), dtype=np.int64)
    return np.stack(columns, axis=1).astype(np.int64, copy=False)


def load_snapshot(
    root: str, index: int, dictionary: Optional[Dictionary]
) -> Tuple[List[Any], Dict[str, Any]]:
    """Rebuild the snapshotted relations; return them plus the meta.

    Columnar and sharded relations are constructed against the given
    (already re-seeded) shared ``dictionary``; stamps are restored so
    ``delta_since(checkpoint stamp)`` is answerable immediately.
    """
    meta = read_meta(root, index)
    ckpt = os.path.join(root, snapshot_dirname(index))
    relations: List[Any] = []
    for idx, entry in enumerate(meta["relations"]):
        name, arity, kind = entry["name"], entry["arity"], entry["kind"]
        if kind == "sharded":
            rel = ShardedColumnarRelation(
                name,
                arity,
                dictionary=dictionary,
                shard_count=entry["shard_count"],
                key_column=entry["key_column"],
            )
            states = [
                (
                    _load_codes(
                        ckpt, f"{idx}.s{s}.c{{j}}.npy", arity, count
                    ),
                    stamp,
                )
                for s, (stamp, count) in enumerate(
                    zip(entry["shard_stamps"], entry["shard_counts"])
                )
            ]
            rel.restore_state(states)
        elif kind == "columnar":
            rel = ColumnarRelation(name, arity, dictionary=dictionary)
            rel.restore_state(
                _load_codes(ckpt, f"{idx}.c{{j}}.npy", arity, entry["count"]),
                entry["stamp"],
            )
        else:
            rel = Relation(name, arity)
            with open(
                os.path.join(ckpt, f"{idx}.rows.pkl"), "rb"
            ) as handle:
                rows = pickle.load(handle)
            rel.restore_state(rows, entry["stamp"])
        relations.append(rel)
    return relations, meta


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def read_manifest(root: str) -> Optional[Dict[str, Any]]:
    """The committed manifest, or ``None`` for a fresh directory."""
    path = os.path.join(root, MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        return json.loads(handle.read().decode("utf-8"))


def commit_manifest(root: str, manifest: Dict[str, Any]) -> None:
    """Atomically replace ``MANIFEST.json`` — the durability commit point."""
    tmp = os.path.join(root, MANIFEST + ".tmp")
    _write_bytes(
        tmp,
        json.dumps(manifest, indent=1).encode("utf-8"),
        "ckpt.manifest.write",
    )
    fault_point("ckpt.manifest.rename")
    os.replace(tmp, os.path.join(root, MANIFEST))
    _fsync_dir(root)
