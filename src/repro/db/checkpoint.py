"""Atomic per-relation snapshots: the checkpoint half of durability.

A checkpoint is a directory ``ckpt-<n>/`` holding

- ``meta.json`` — one entry per relation (arity, backend kind, stamp,
  shard layout, **source pointers**), plus the dictionary length and
  its source chain;
- ``dictionary.pkl`` — the shared value dictionary *suffix* new since
  the previous checkpoint, in code order (the full value list for a
  base checkpoint);
- per-relation payloads, named by relation *file index* (names may
  not be filename-safe): ``<i>.c<j>.npy`` — one ``np.save`` file per
  column of a columnar relation; ``<i>.s<s>.c<j>.npy`` — per shard,
  per column, for sharded relations; ``<i>.rows.pkl`` — the tuple set
  of a python-backend relation.

**Incremental checkpoints.**  ``write_snapshot`` compares each
relation's ``mutation_stamp`` (per shard for sharded relations)
against the previous checkpoint's meta and rewrites only what
advanced; unchanged payloads are *referenced* by source pointers —
``entry["source"]`` names the checkpoint directory that physically
holds the file, ``entry["file_index"]`` its name there.  Every meta
is therefore **self-contained**: recovery reads only the newest
``meta.json`` and follows pointers into older directories (the
*chain*, :func:`chain_of`), never replaying metas transitively.  The
database bounds chain depth (``MAX_CHAIN_DEPTH``) by periodically
folding deltas back into a full base snapshot.

Atomicity is unchanged from the full-snapshot scheme and two-stage.
First the snapshot is written file-by-file into ``ckpt-<n>.tmp``
(each file fsynced) and renamed to ``ckpt-<n>`` in one
``os.replace``.  Second — and this is the *only* commit point —
``MANIFEST.json`` is atomically replaced to reference the new
checkpoint and its fresh WAL file.  A crash anywhere before the
manifest swap leaves the old manifest pointing at the old checkpoint
plus the old (still-growing, still-valid) WAL: recovery never sees a
half-written snapshot.  Stale ``ckpt-*``/``wal-*``/``*.tmp`` files
left by such a crash are garbage-collected on recovery and on the
next successful checkpoint.

**Integrity.**  Every file written here reports its size and CRC32
(the ``written`` map returned by ``write_snapshot``); the database
records them in the manifest and recovery re-checks them on every
read through a :class:`Verifier` — so snapshot corruption surfaces
as :class:`~repro.db.interface.CorruptSnapshotError` at open time,
by construction, never as silently wrong rows.

Snapshots store the *merged* view (pending delta segments included)
and the exact ``mutation_stamp`` per relation (per shard for sharded
relations), so a recovered relation answers ``delta_since`` from the
checkpoint stamp onward — identical semantics to one that compacted
at snapshot time.

Every write/rename site carries a :mod:`repro.util.faultpoints` hook.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import shutil
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.db.columnar import ColumnarRelation, Dictionary
from repro.db.interface import CorruptSnapshotError
from repro.db.relation import Relation
from repro.db.sharded import ShardedColumnarRelation
from repro.util.faultpoints import declare, fault_point

__all__ = [
    "CRASH_POINTS",
    "MANIFEST",
    "MAX_CHAIN_DEPTH",
    "Verifier",
    "chain_of",
    "commit_manifest",
    "compose_dictionary",
    "load_dictionary",
    "load_snapshot",
    "normalize_meta",
    "parse_wal_name",
    "read_manifest",
    "read_meta",
    "seed_dictionary",
    "wal_filename",
    "wal_segment_filename",
    "write_snapshot",
]

MANIFEST = "MANIFEST.json"

#: Maximum number of distinct checkpoint directories a meta may
#: reference (its base+delta chain) before the next checkpoint folds
#: everything back into one full base.  Bounds both recovery's
#: directory fan-out and the disk held live by old checkpoints.
MAX_CHAIN_DEPTH = 4

CRASH_POINTS = declare(
    "ckpt.begin",
    "ckpt.column.write",
    "ckpt.dictionary.write",
    "ckpt.meta.write",
    "ckpt.dir.rename",
    "ckpt.wal.create",
    "ckpt.manifest.write",
    "ckpt.manifest.rename",
    module=__name__,
)

_WAL_NAME = re.compile(r"wal-(\d+)(?:\.(\d+))?\.log")


def wal_filename(index: int) -> str:
    """The WAL file paired with checkpoint ``index``."""
    return f"wal-{index}.log"


def wal_segment_filename(epoch: int, seq: int) -> str:
    """The ``seq``-th WAL segment of checkpoint epoch ``epoch``.

    ``wal-<epoch>.log`` (seq 0) is created by the checkpoint itself;
    each size-triggered rotation seals the active file *under its own
    name* (no renames — sealed segments are immutable) and opens
    ``wal-<epoch>.<seq>.log`` as the new active tail.
    """
    if seq == 0:
        return wal_filename(epoch)
    return f"wal-{epoch}.{seq}.log"


def parse_wal_name(name: str) -> Optional[Tuple[int, int]]:
    """``(epoch, seq)`` for a WAL file name, or None for non-WAL."""
    match = _WAL_NAME.fullmatch(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2) or 0)


def snapshot_dirname(index: int) -> str:
    return f"ckpt-{index}"


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _digest(data: bytes) -> Dict[str, int]:
    return {"size": len(data), "crc32": zlib.crc32(data) & 0xFFFFFFFF}


def _write_bytes(path: str, data: bytes, point: str) -> Dict[str, int]:
    fault_point(point)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    return _digest(data)


def _write_column(path: str, column: np.ndarray) -> Dict[str, int]:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(column))
    return _write_bytes(path, buffer.getvalue(), "ckpt.column.write")


# ----------------------------------------------------------------------
# verified reads
# ----------------------------------------------------------------------
class Verifier:
    """Size+CRC32-checked reads of checkpoint artifacts.

    ``files`` maps root-relative paths (``ckpt-<n>/<file>``) to
    ``{"size", "crc32"}`` as recorded in the manifest at commit time.
    Reads of tracked files that are missing, resized, or fail the CRC
    raise :class:`CorruptSnapshotError`; untracked files (pre-upgrade
    v1 checkpoints) read unverified, so old directories stay
    openable.
    """

    def __init__(self, root: str, files: Optional[Dict[str, Any]] = None):
        self.root = root
        self.files = files or {}

    def read(self, relpath: str) -> bytes:
        path = os.path.join(self.root, relpath)
        expect = self.files.get(relpath)
        if not os.path.exists(path):
            if expect is not None:
                raise CorruptSnapshotError(relpath, "file is missing")
            raise CorruptSnapshotError(relpath, "file does not exist")
        with open(path, "rb") as handle:
            data = handle.read()
        if expect is not None:
            if len(data) != expect["size"]:
                raise CorruptSnapshotError(
                    relpath,
                    f"size {len(data)} != recorded {expect['size']}",
                )
            if zlib.crc32(data) & 0xFFFFFFFF != expect["crc32"]:
                raise CorruptSnapshotError(relpath, "CRC32 mismatch")
        return data


def _read_bytes(root: str, relpath: str, verifier: Optional[Verifier]):
    if verifier is not None:
        return verifier.read(relpath)
    path = os.path.join(root, relpath)
    if not os.path.exists(path):
        raise CorruptSnapshotError(relpath, "file does not exist")
    with open(path, "rb") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# snapshot write
# ----------------------------------------------------------------------
def _shard_sources(entry: Dict[str, Any], meta_index: int, idx: int):
    return entry.get(
        "shard_sources",
        [[meta_index, idx] for _ in entry["shard_stamps"]],
    )


def normalize_meta(meta: Dict[str, Any]) -> Dict[str, Any]:
    """Fill v1 (full-snapshot) metas' source pointers in place.

    A pre-chain meta implicitly holds every payload itself; making
    the pointers explicit lets the rest of the stack treat every meta
    as self-contained.
    """
    index = meta["index"]
    for idx, entry in enumerate(meta["relations"]):
        if entry["kind"] == "sharded":
            entry["shard_sources"] = _shard_sources(entry, index, idx)
        else:
            entry.setdefault("source", index)
            entry.setdefault("file_index", idx)
    if "dict_sources" not in meta:
        length = meta.get("dictionary_len", 0)
        meta["dict_sources"] = [[index, 0, length]] if length else []
    return meta


def chain_of(meta: Dict[str, Any]) -> List[int]:
    """Every checkpoint index the meta's payloads live in, sorted."""
    refs = {meta["index"]}
    for entry in meta["relations"]:
        if entry["kind"] == "sharded":
            refs.update(src for src, _ in entry["shard_sources"])
        else:
            refs.add(entry["source"])
    refs.update(src for src, _, _ in meta.get("dict_sources", ()))
    return sorted(refs)


def write_snapshot(
    root: str,
    db,
    index: int,
    previous: Optional[Dict[str, Any]] = None,
) -> Tuple[str, Dict[str, Any], Dict[str, Dict[str, int]]]:
    """Write ``ckpt-<index>/`` under ``root``.

    With ``previous`` (the prior checkpoint's normalized meta) the
    snapshot is *incremental*: relations — shards, for sharded
    relations — whose ``mutation_stamp`` did not advance are carried
    as source pointers into older directories instead of being
    rewritten, and only the dictionary suffix new since ``previous``
    is stored.  Without it, a full base snapshot.

    Builds the whole directory under ``ckpt-<index>.tmp`` and renames
    once — readers either see a complete snapshot or none.  The
    manifest is *not* touched here; see :func:`commit_manifest`.

    Returns ``(final_path, meta, written)`` where ``written`` maps
    each file's root-relative path to its size and CRC32 for the
    manifest's integrity map.
    """
    tmp = os.path.join(root, snapshot_dirname(index) + ".tmp")
    final = os.path.join(root, snapshot_dirname(index))
    dirname = snapshot_dirname(index)
    for stale in (tmp, final):
        if os.path.exists(stale):
            shutil.rmtree(stale)
    os.makedirs(tmp)
    fault_point("ckpt.begin")
    prev_entries: Dict[str, Dict[str, Any]] = {}
    if previous is not None:
        prev_entries = {e["name"]: e for e in previous["relations"]}
    written: Dict[str, Dict[str, int]] = {}

    def emit_column(filename: str, column: np.ndarray) -> None:
        written[f"{dirname}/{filename}"] = _write_column(
            os.path.join(tmp, filename), column
        )

    def emit_bytes(filename: str, data: bytes, point: str) -> None:
        written[f"{dirname}/{filename}"] = _write_bytes(
            os.path.join(tmp, filename), data, point
        )

    relations: List[Dict[str, Any]] = []
    for idx, rel in enumerate(db):
        entry: Dict[str, Any] = {"name": rel.name, "arity": rel.arity}
        prev = prev_entries.get(rel.name)
        if isinstance(rel, ShardedColumnarRelation):
            entry["kind"] = "sharded"
            entry["shard_count"] = rel.shard_count
            entry["key_column"] = rel.key_column
            reusable = (
                prev is not None
                and prev["kind"] == "sharded"
                and prev["arity"] == rel.arity
                and prev["shard_count"] == rel.shard_count
            )
            stamps: List[int] = []
            counts: List[int] = []
            sources: List[List[int]] = []
            shards = rel.shards
            for s in range(rel.shard_count):
                if (
                    reusable
                    and prev["shard_stamps"][s]
                    == shards[s].mutation_stamp
                ):
                    stamps.append(prev["shard_stamps"][s])
                    counts.append(prev["shard_counts"][s])
                    sources.append(list(prev["shard_sources"][s]))
                    continue
                codes, stamp = shards[s].snapshot_state()
                stamps.append(stamp)
                counts.append(len(codes))
                sources.append([index, idx])
                for j in range(rel.arity):
                    emit_column(f"{idx}.s{s}.c{j}.npy", codes[:, j])
            entry["shard_stamps"] = stamps
            entry["shard_counts"] = counts
            entry["shard_sources"] = sources
        elif isinstance(rel, ColumnarRelation):
            entry["kind"] = "columnar"
            if (
                prev is not None
                and prev["kind"] == "columnar"
                and prev["arity"] == rel.arity
                and prev["stamp"] == rel.mutation_stamp
            ):
                entry["stamp"] = prev["stamp"]
                entry["count"] = prev["count"]
                entry["source"] = prev["source"]
                entry["file_index"] = prev["file_index"]
            else:
                codes, stamp = rel.snapshot_state()
                entry["stamp"] = stamp
                entry["count"] = len(codes)
                entry["source"] = index
                entry["file_index"] = idx
                for j in range(rel.arity):
                    emit_column(f"{idx}.c{j}.npy", codes[:, j])
        else:
            entry["kind"] = "python"
            if (
                prev is not None
                and prev["kind"] == "python"
                and prev["arity"] == rel.arity
                and prev["stamp"] == rel.mutation_stamp
            ):
                entry["stamp"] = prev["stamp"]
                entry["source"] = prev["source"]
                entry["file_index"] = prev["file_index"]
            else:
                rows, stamp = rel.snapshot_state()
                entry["stamp"] = stamp
                entry["source"] = index
                entry["file_index"] = idx
                emit_bytes(
                    f"{idx}.rows.pkl",
                    pickle.dumps(
                        rows, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                    "ckpt.column.write",
                )
        relations.append(entry)

    dictionary = getattr(db, "_dictionary", None)
    dict_len = len(dictionary) if dictionary is not None else 0
    meta: Dict[str, Any] = {
        "index": index,
        "relations": relations,
        "dictionary_len": dict_len,
    }
    if dictionary is not None:
        if previous is None:
            emit_bytes(
                "dictionary.pkl",
                pickle.dumps(
                    dictionary.values(),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
                "ckpt.dictionary.write",
            )
            meta["dict_sources"] = (
                [[index, 0, dict_len]] if dict_len else []
            )
        else:
            sources = [list(s) for s in previous["dict_sources"]]
            prev_len = previous["dictionary_len"]
            if dict_len > prev_len:
                emit_bytes(
                    "dictionary.pkl",
                    pickle.dumps(
                        dictionary.values()[prev_len:],
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                    "ckpt.dictionary.write",
                )
                sources.append([index, prev_len, dict_len - prev_len])
            meta["dict_sources"] = sources
    else:
        meta["dict_sources"] = []
    emit_bytes(
        "meta.json",
        json.dumps(meta, indent=1).encode("utf-8"),
        "ckpt.meta.write",
    )
    fault_point("ckpt.dir.rename")
    os.replace(tmp, final)
    _fsync_dir(root)
    return final, meta, written


# ----------------------------------------------------------------------
# snapshot read
# ----------------------------------------------------------------------
def read_meta(
    root: str, index: int, verifier: Optional[Verifier] = None
) -> Dict[str, Any]:
    relpath = f"{snapshot_dirname(index)}/meta.json"
    data = _read_bytes(root, relpath, verifier)
    try:
        meta = json.loads(data.decode("utf-8"))
    except Exception as exc:
        raise CorruptSnapshotError(relpath, f"unparseable: {exc}")
    return normalize_meta(meta)


def load_dictionary(root: str, index: int) -> List[Any]:
    """The dictionary values a *base* snapshot stores (may be []).

    Kept for v1 compatibility; chained checkpoints compose their full
    dictionary with :func:`compose_dictionary`.
    """
    path = os.path.join(root, snapshot_dirname(index), "dictionary.pkl")
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        return pickle.load(handle)


def compose_dictionary(
    root: str,
    meta: Dict[str, Any],
    verifier: Optional[Verifier] = None,
) -> List[Any]:
    """The full dictionary value list, concatenated along the chain.

    Each source triple ``[ckpt, start, count]`` says: the suffix
    stored in ``ckpt-<ckpt>/dictionary.pkl`` holds codes
    ``start .. start+count``.  Contiguity and the final length are
    checked — a gap means the chain is damaged.
    """
    values: List[Any] = []
    for src, start, count in meta.get("dict_sources", ()):
        relpath = f"{snapshot_dirname(src)}/dictionary.pkl"
        chunk = pickle.loads(_read_bytes(root, relpath, verifier))
        if start != len(values) or len(chunk) != count:
            raise CorruptSnapshotError(
                relpath,
                f"dictionary chain gap: expected {count} values at "
                f"code {start}, file holds {len(chunk)} at "
                f"{len(values)}",
            )
        values.extend(chunk)
    if len(values) != meta.get("dictionary_len", 0):
        raise CorruptSnapshotError(
            f"{snapshot_dirname(meta['index'])}/meta.json",
            f"dictionary chain yields {len(values)} values, meta "
            f"records {meta['dictionary_len']}",
        )
    return values


def seed_dictionary(
    dictionary: Optional[Dictionary],
    root: str,
    meta: Dict[str, Any],
    verifier: Optional[Verifier] = None,
) -> None:
    """Compose the chain's dictionary and bulk-load it into
    ``dictionary`` (codes assigned in stored order).

    Every recovery path re-seeds through this: the stored values are
    by construction fresh and in code order, so the bulk
    :meth:`~repro.db.columnar.Dictionary.extend_tail` applies — and
    its duplicate check turns a corrupt chunk that per-value encoding
    would have silently collapsed (shifting every later code) into a
    loud :class:`CorruptSnapshotError`.
    """
    if dictionary is None:
        return
    values = compose_dictionary(root, meta, verifier)
    try:
        dictionary.extend_tail(values)
    except ValueError as exc:
        raise CorruptSnapshotError(
            f"{snapshot_dirname(meta['index'])}/dictionary.pkl",
            f"dictionary chain is not a fresh code-ordered suffix: "
            f"{exc}",
        )


def _load_array(
    root: str, relpath: str, verifier: Optional[Verifier]
) -> np.ndarray:
    data = _read_bytes(root, relpath, verifier)
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except Exception as exc:
        raise CorruptSnapshotError(relpath, f"unreadable array: {exc}")


def _load_codes(
    root: str,
    source: int,
    pattern: str,
    arity: int,
    count: int,
    verifier: Optional[Verifier],
) -> np.ndarray:
    if arity == 0:
        return np.empty((count, 0), dtype=np.int64)
    dirname = snapshot_dirname(source)
    columns = [
        _load_array(root, f"{dirname}/{pattern.format(j=j)}", verifier)
        for j in range(arity)
    ]
    if not count and not len(columns[0]):
        return np.empty((0, arity), dtype=np.int64)
    codes = np.stack(columns, axis=1).astype(np.int64, copy=False)
    if len(codes) != count:
        raise CorruptSnapshotError(
            f"{dirname}/{pattern.format(j=0)}",
            f"{len(codes)} rows on disk, meta records {count}",
        )
    return codes


def load_snapshot(
    root: str,
    index: int,
    dictionary: Optional[Dictionary],
    verifier: Optional[Verifier] = None,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Rebuild the checkpoint's relations; return them plus the meta.

    Follows each entry's source pointers across the base+delta chain,
    verifying every file read against the manifest's recorded
    size/CRC32 when a ``verifier`` is given.  Columnar and sharded
    relations are constructed against the given (already re-seeded)
    shared ``dictionary``; stamps are restored so
    ``delta_since(checkpoint stamp)`` is answerable immediately.
    """
    meta = read_meta(root, index, verifier)
    relations: List[Any] = []
    for entry in meta["relations"]:
        relations.append(load_relation(root, entry, dictionary, verifier))
    return relations, meta


def load_relation(
    root: str,
    entry: Dict[str, Any],
    dictionary: Optional[Dictionary],
    verifier: Optional[Verifier] = None,
):
    """Rebuild one relation from its (possibly chained) meta entry."""
    name, arity, kind = entry["name"], entry["arity"], entry["kind"]
    if kind == "sharded":
        rel = ShardedColumnarRelation(
            name,
            arity,
            dictionary=dictionary,
            shard_count=entry["shard_count"],
            key_column=entry["key_column"],
        )
        states = [
            (
                _load_codes(
                    root,
                    src,
                    f"{fidx}.s{s}.c{{j}}.npy",
                    arity,
                    count,
                    verifier,
                ),
                stamp,
            )
            for s, ((src, fidx), stamp, count) in enumerate(
                zip(
                    entry["shard_sources"],
                    entry["shard_stamps"],
                    entry["shard_counts"],
                )
            )
        ]
        rel.restore_state(states)
    elif kind == "columnar":
        rel = ColumnarRelation(name, arity, dictionary=dictionary)
        rel.restore_state(
            _load_codes(
                root,
                entry["source"],
                f"{entry['file_index']}.c{{j}}.npy",
                arity,
                entry["count"],
                verifier,
            ),
            entry["stamp"],
        )
    else:
        rel = Relation(name, arity)
        relpath = (
            f"{snapshot_dirname(entry['source'])}/"
            f"{entry['file_index']}.rows.pkl"
        )
        try:
            rows = pickle.loads(_read_bytes(root, relpath, verifier))
        except CorruptSnapshotError:
            raise
        except Exception as exc:
            raise CorruptSnapshotError(relpath, f"unpicklable: {exc}")
        rel.restore_state(rows, entry["stamp"])
    return rel


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def read_manifest(root: str) -> Optional[Dict[str, Any]]:
    """The committed manifest, or ``None`` for a fresh directory.

    v1 manifests (pre-chain, no integrity map) are upgraded in
    memory: a single-element chain, no sealed segments, an empty
    files map (reads of their checkpoints are simply unverified).
    Raises :class:`CorruptSnapshotError` when the manifest exists but
    cannot be parsed — that is mid-file corruption of the commit
    record itself, repairable only by :func:`repro.db.scrub.repair`.
    """
    path = os.path.join(root, MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    try:
        manifest = json.loads(data.decode("utf-8"))
    except Exception as exc:
        raise CorruptSnapshotError(MANIFEST, f"unparseable: {exc}")
    if manifest.get("version", 1) < 2:
        manifest.setdefault(
            "chain",
            [manifest["checkpoint"]]
            if manifest.get("checkpoint") is not None
            else [],
        )
        manifest.setdefault("segments", [])
        manifest.setdefault("files", {})
    return manifest


def commit_manifest(root: str, manifest: Dict[str, Any]) -> None:
    """Atomically replace ``MANIFEST.json`` — the durability commit point."""
    tmp = os.path.join(root, MANIFEST + ".tmp")
    _write_bytes(
        tmp,
        json.dumps(manifest, indent=1).encode("utf-8"),
        "ckpt.manifest.write",
    )
    fault_point("ckpt.manifest.rename")
    os.replace(tmp, os.path.join(root, MANIFEST))
    _fsync_dir(root)
