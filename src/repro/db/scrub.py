"""Scrub & repair: detect-or-repair for the durable directory.

The durability stack's one uncatchable failure class is silent
corruption — a recovered database serving *wrong rows* would sail
straight past the paper's ``mutation_stamp`` consistency contract,
which assumes the storage layer tells the truth.  This module closes
that hole with two operations over a durable directory:

:func:`verify`
    Re-checks every artifact the manifest vouches for — each
    checkpoint file against its recorded size+CRC32, each sealed WAL
    segment against its whole-file seal, the active WAL frame by
    frame (distinguishing a *torn tail*, the benign crash-mid-append
    residue, from *mid-log* damage with valid records beyond it) —
    and returns a :class:`ScrubReport` of issues.  ``verify`` never
    modifies the directory.

:func:`repair`
    Restores the newest provable-consistent state, in preference
    order: a torn-tail-only directory is truncated in place; anything
    worse quarantines the damaged artifacts into ``quarantine/`` and
    rebuilds from the newest *intact* base+delta checkpoint chain
    plus its undamaged WAL suffix — falling back to ever-older
    checkpoints — and, when no on-disk candidate survives, reseeds
    from a live replica ``feed``.  The rebuilt state is committed as
    a fresh *full* checkpoint + manifest (the usual atomic swap), so
    a crash mid-repair just means repairing again.  When every source
    is exhausted, :class:`CorruptSnapshotError` propagates — the
    caller can still open read-only with ``attach(path,
    degraded=True)`` to evacuate whatever loads.

The repair ladder never *invents* state: every byte it commits was
either verified against a recorded checksum or replayed from a
CRC-valid WAL prefix, so the repaired database is always an exact
earlier-or-equal version of the damaged one (the "consistent prefix"
the fault-injection suite asserts against its oracle).
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.db.interface import CorruptionError, CorruptSnapshotError

__all__ = ["ScrubIssue", "ScrubReport", "repair", "verify"]


@dataclass(frozen=True)
class ScrubIssue:
    """One damaged artifact: what, which failure class, and why.

    ``kind`` is one of ``"manifest-corrupt"``, ``"snapshot-missing"``,
    ``"snapshot-corrupt"``, ``"wal-missing"``, ``"wal-corrupt"``,
    ``"wal-torn"`` — only the last is benign (crash residue that
    recovery truncates safely).
    """

    artifact: str
    kind: str
    detail: str


@dataclass
class ScrubReport:
    """The outcome of one :func:`verify` pass."""

    path: str
    issues: List[ScrubIssue] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def torn_tail_only(self) -> bool:
        """True when every issue is a benign active-WAL torn tail."""
        return bool(self.issues) and all(
            issue.kind == "wal-torn" for issue in self.issues
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self.ok else f"{len(self.issues)} issue(s)"
        return f"ScrubReport({self.path!r}, {self.checked} checked, {state})"


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def verify(path: str) -> ScrubReport:
    """Check every manifest-tracked artifact; modify nothing."""
    from repro.db import checkpoint as ckpt
    from repro.db.wal import scan_wal, seal_info

    report = ScrubReport(path=os.fspath(path))
    try:
        manifest = ckpt.read_manifest(path)
    except CorruptSnapshotError as exc:
        report.issues.append(
            ScrubIssue(ckpt.MANIFEST, "manifest-corrupt", exc.detail)
        )
        return report
    if manifest is None:
        report.issues.append(
            ScrubIssue(ckpt.MANIFEST, "snapshot-missing", "no manifest")
        )
        return report
    verifier = ckpt.Verifier(path, manifest.get("files") or {})
    for relpath in sorted(verifier.files):
        report.checked += 1
        try:
            verifier.read(relpath)
        except CorruptSnapshotError as exc:
            kind = (
                "snapshot-missing"
                if "missing" in exc.detail
                else "snapshot-corrupt"
            )
            report.issues.append(ScrubIssue(relpath, kind, exc.detail))
    for seg in manifest.get("segments") or []:
        report.checked += 1
        seg_path = os.path.join(path, seg["name"])
        if not os.path.exists(seg_path):
            report.issues.append(
                ScrubIssue(seg["name"], "wal-missing", "sealed segment "
                           "is missing")
            )
            continue
        actual = seal_info(seg_path)
        if actual != {"size": seg["size"], "crc32": seg["crc32"]}:
            report.issues.append(
                ScrubIssue(
                    seg["name"],
                    "wal-corrupt",
                    f"sealed {seg['size']}B/crc {seg['crc32']}, found "
                    f"{actual['size']}B/crc {actual['crc32']}",
                )
            )
    active = manifest.get("wal")
    if active:
        report.checked += 1
        _, valid, damage = scan_wal(os.path.join(path, active))
        if damage == "torn":
            report.issues.append(
                ScrubIssue(
                    active,
                    "wal-torn",
                    f"torn tail after byte {valid} (safe to truncate)",
                )
            )
        elif damage == "corrupt":
            report.issues.append(
                ScrubIssue(
                    active,
                    "wal-corrupt",
                    f"valid records beyond damage at byte {valid}",
                )
            )
    return report


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
def _quarantine(path: str, artifacts) -> List[str]:
    """Move damaged artifacts under ``quarantine/`` (keeping them for
    forensics — repair never destroys evidence)."""
    qdir = os.path.join(path, "quarantine")
    moved: List[str] = []
    for artifact in sorted(set(artifacts)):
        src = os.path.join(path, artifact)
        if not os.path.exists(src):
            continue
        dst = os.path.join(qdir, artifact)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        if os.path.exists(dst):
            if os.path.isdir(dst):
                shutil.rmtree(dst)
            else:
                os.remove(dst)
        os.replace(src, dst)
        moved.append(artifact)
    return moved


def _candidate_indices(path: str, manifest) -> List[int]:
    """Checkpoint indices to attempt rebuilding from, newest first."""
    indices = set()
    if manifest is not None:
        if manifest.get("checkpoint") is not None:
            indices.add(manifest["checkpoint"])
        indices.update(manifest.get("chain") or [])
        for seg in manifest.get("segments") or []:
            if seg["epoch"]:
                indices.add(seg["epoch"])
    for entry in os.listdir(path):
        if entry.startswith("ckpt-") and not entry.endswith(".tmp"):
            try:
                indices.add(int(entry[len("ckpt-"):]))
            except ValueError:
                continue
    # Candidate 0 is the empty origin: no snapshot, full WAL history
    # from wal-0.log onward — the last on-disk rung of the ladder,
    # viable only while the origin WAL is still retained.
    indices.add(0)
    return sorted(indices, reverse=True)


def _wal_files_from(path: str, manifest, start_epoch: int):
    """The WAL files holding ops after checkpoint ``start_epoch``, in
    replay order: sealed segments (with their seals, when the manifest
    records them) then the active file, epoch/seq ordered."""
    from repro.db import checkpoint as ckpt

    known: Dict[Tuple[int, int], Optional[dict]] = {}
    if manifest is not None:
        for seg in manifest.get("segments") or []:
            known[(seg["epoch"], seg["seq"])] = seg
    active_key = None
    active = manifest.get("wal") if manifest is not None else None
    for entry in os.listdir(path):
        parsed = ckpt.parse_wal_name(entry)
        if parsed is not None:
            known.setdefault(parsed, None)
            if entry == active:
                active_key = parsed
    ordered = []
    for key in sorted(known):
        epoch, seq = key
        if epoch < start_epoch:
            continue
        seal = known[key]
        name = ckpt.wal_segment_filename(epoch, seq)
        ordered.append((key, name, seal, key == active_key))
    return ordered


def _rebuild_from_checkpoint(path: str, manifest, index: int):
    """Load checkpoint ``index`` + its undamaged WAL suffix, or raise.

    Returns ``(relations, dictionary, quarantine_list)`` — the longest
    provably-consistent prefix reachable from this candidate, plus the
    artifacts found damaged along the way.
    """
    from repro.db import checkpoint as ckpt
    from repro.db.columnar import Dictionary
    from repro.db.database import replay_records
    from repro.db.wal import read_records, scan_wal, seal_info

    files = (manifest.get("files") or {}) if manifest is not None else {}
    verifier = ckpt.Verifier(path, files)
    dictionary = Dictionary()
    relations: Dict[str, Any] = {}
    if index == 0:
        # The empty-origin candidate: everything must come from the
        # complete WAL history, so its first file is load-bearing —
        # without it an "empty" rebuild would fabricate data loss.
        if not os.path.exists(os.path.join(path, ckpt.wal_filename(0))):
            raise CorruptSnapshotError(
                ckpt.wal_filename(0), "origin WAL is no longer retained"
            )
    else:
        meta = ckpt.read_meta(path, index, verifier)
        ckpt.seed_dictionary(dictionary, path, meta, verifier)
        for entry in meta["relations"]:
            relations[entry["name"]] = ckpt.load_relation(
                path, entry, dictionary, verifier
            )
    # Replay the WAL suffix, stopping at the first damaged file or
    # sequence gap — a missing (epoch, seq) means later files may
    # depend on lost ops, so nothing after it can be applied
    # (consistent-prefix discipline).  Legal successors of (a, s) are
    # (a, s+1) — a rotation — and (a+1, 0) — a checkpoint; the replay
    # must begin at exactly (index, 0), the WAL the candidate
    # checkpoint itself created.
    damaged: List[str] = []
    expected = {(index, 0)}
    for key, name, seal, is_active in _wal_files_from(
        path, manifest, index
    ):
        if key not in expected:
            break
        expected = {(key[0], key[1] + 1), (key[0] + 1, 0)}
        full = os.path.join(path, name)
        if not os.path.exists(full):
            damaged.append(name)
            break
        if seal is not None and seal_info(full) != {
            "size": seal["size"],
            "crc32": seal["crc32"],
        }:
            damaged.append(name)
            break
        if is_active or seal is None:
            records, _, damage = scan_wal(full)
            replay_records(relations, dictionary, records)
            if damage is not None:
                damaged.append(name)
                break
        else:
            records, _ = read_records(full)
            replay_records(relations, dictionary, records)
    return relations, dictionary, damaged


def _seed_from_feed(feed):
    """Build relations + dictionary from a replica feed's handshake."""
    from repro.db.columnar import ColumnarRelation, Dictionary
    from repro.db.relation import Relation
    from repro.db.sharded import ShardedColumnarRelation

    import numpy as np

    seed = feed.handshake()
    dictionary = Dictionary()
    for value in seed["dict_values"]:
        dictionary.encode(value)
    relations: Dict[str, Any] = {}
    for entry in seed["relations"]:
        name, arity = entry["name"], entry["arity"]
        content = entry["content"]
        if isinstance(content, np.ndarray):
            if seed["backend"] == "sharded":
                rel = ShardedColumnarRelation(
                    name,
                    arity,
                    dictionary=dictionary,
                    shard_count=seed["shard_count"],
                )
            else:
                rel = ColumnarRelation(name, arity, dictionary=dictionary)
            if len(content):
                rel.add_coded_batch(
                    np.asarray(content, dtype=np.int64).reshape(
                        len(content), arity
                    )
                )
        else:
            rel = Relation(name, arity)
            rel.add_all([tuple(r) for r in content])
        relations[name] = rel
    return relations, dictionary, seed


class _RepairedState:
    """The minimal database duck :func:`checkpoint.write_snapshot`
    needs: iteration order + the shared dictionary."""

    def __init__(self, relations, dictionary):
        self._relations = relations
        self._dictionary = dictionary

    def __iter__(self):
        return iter(self._relations.values())


def _infer_layout(manifest, relations) -> Tuple[str, Optional[int]]:
    from repro.db.columnar import ColumnarRelation
    from repro.db.sharded import ShardedColumnarRelation

    if manifest is not None:
        return manifest["backend"], manifest.get("shard_count")
    for rel in relations.values():
        if isinstance(rel, ShardedColumnarRelation):
            return "sharded", rel.shard_count
    for rel in relations.values():
        if isinstance(rel, ColumnarRelation):
            return "columnar", None
    return "python", None


def repair(path: str, feed=None) -> Dict[str, Any]:
    """Restore the newest provably-consistent state of ``path``.

    Returns a summary dict: ``action`` (``"none"``, ``"truncate"``,
    ``"rebuild"``, ``"reseed"``), the repair ``source``, and the
    ``quarantined`` artifacts.  Raises
    :class:`~repro.db.interface.CorruptSnapshotError` when no intact
    checkpoint chain survives and no ``feed`` was given — the
    directory is then only openable with ``attach(path,
    degraded=True)``.
    """
    from repro.db import checkpoint as ckpt
    from repro.db.wal import scan_wal

    path = os.fspath(path)
    report = verify(path)
    if report.ok:
        return {"action": "none", "source": None, "quarantined": []}
    if report.torn_tail_only:
        # The benign case: physically truncate the torn tail, exactly
        # as a normal recovery would.
        manifest = ckpt.read_manifest(path)
        wal_path = os.path.join(path, manifest["wal"])
        _, valid, _ = scan_wal(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(valid)
        return {
            "action": "truncate",
            "source": manifest["wal"],
            "quarantined": [],
        }
    try:
        manifest = ckpt.read_manifest(path)
    except CorruptSnapshotError:
        manifest = None
    quarantine = {
        issue.artifact
        for issue in report.issues
        if issue.kind != "wal-torn"
    }
    rebuilt = None
    source: Any = None
    for index in _candidate_indices(path, manifest):
        try:
            relations, dictionary, damaged = _rebuild_from_checkpoint(
                path, manifest, index
            )
        except CorruptionError:
            continue
        quarantine.update(damaged)
        rebuilt = (relations, dictionary)
        source = f"ckpt-{index}" if index else "wal-history"
        action = "rebuild"
        break
    if rebuilt is None and feed is not None:
        relations, dictionary, seed = _seed_from_feed(feed)
        rebuilt = (relations, dictionary)
        source = "feed"
        action = "reseed"
        manifest = manifest or {
            "backend": seed["backend"],
            "shard_count": seed["shard_count"],
        }
    if rebuilt is None:
        raise CorruptSnapshotError(
            path,
            "no intact checkpoint chain and no replica feed to reseed "
            "from; open with attach(path, degraded=True) to salvage "
            "what remains",
        )
    relations, dictionary = rebuilt
    backend, shard_count = _infer_layout(manifest, relations)
    # Quarantine the damage, then commit the rebuilt state as a fresh
    # full checkpoint — same atomic manifest swap as a live
    # checkpoint, so a crash mid-repair only means repairing again.
    quarantined = _quarantine(
        path,
        (a for a in quarantine if a != ckpt.MANIFEST),
    )
    new_index = max(_candidate_indices(path, manifest) or [0]) + 1
    state = _RepairedState(relations, dictionary)
    _, meta, written = ckpt.write_snapshot(path, state, new_index)
    new_wal = ckpt.wal_filename(new_index)
    with open(os.path.join(path, new_wal), "wb") as handle:
        handle.flush()
        os.fsync(handle.fileno())
    ckpt.commit_manifest(
        path,
        {
            "version": 2,
            "backend": backend,
            "shard_count": shard_count,
            "checkpoint": new_index,
            "chain": ckpt.chain_of(meta),
            "wal": new_wal,
            "segments": [],
            "files": written,
            "wal_retain": (
                manifest.get("wal_retain", 4) if manifest else 4
            ),
        },
    )
    return {
        "action": action,
        "source": source,
        "quarantined": quarantined,
    }
