"""Delay instrumentation for enumeration algorithms.

The enumeration model separates *preprocessing time* from *delay* (the
maximum time between consecutive answers).  :func:`measure_delays`
captures both so the benchmark harness can plot max-delay against
database size: flat for free-connex queries (Theorem 3.17), growing for
the materializing fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple


@dataclass
class DelayProfile:
    """Timing profile of one enumeration run."""

    preprocessing_seconds: float
    delays: List[float]
    answers: int

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    @property
    def mean_delay(self) -> float:
        return (
            sum(self.delays) / len(self.delays) if self.delays else 0.0
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"preprocess={self.preprocessing_seconds:.4f}s "
            f"answers={self.answers} max_delay={self.max_delay * 1e6:.1f}µs"
        )


def measure_delays(
    make_enumerator: Callable[[], Iterable],
    limit: Optional[int] = None,
) -> DelayProfile:
    """Time preprocessing and per-answer delays.

    ``make_enumerator`` runs the preprocessing and returns an iterable
    of answers (e.g. ``lambda: ConstantDelayEnumerator(q, db)``).
    ``limit`` truncates the enumeration — delays are a per-answer
    quantity, so a prefix is a valid sample and keeps large-output
    experiments affordable.
    """
    start = time.perf_counter()
    enumerator = make_enumerator()
    iterator = iter(enumerator)
    preprocessing = time.perf_counter() - start

    delays: List[float] = []
    produced = 0
    last = time.perf_counter()
    for _answer in iterator:
        now = time.perf_counter()
        delays.append(now - last)
        last = now
        produced += 1
        if limit is not None and produced >= limit:
            break
    return DelayProfile(
        preprocessing_seconds=preprocessing,
        delays=delays,
        answers=produced,
    )
