"""Constant-delay enumeration for free-connex acyclic queries.

Preprocessing (Theorem 3.17's upper bound, all O(m)):

1. reduce the query to an equivalent acyclic *join* query over the free
   variables (:func:`repro.joins.fc_reduce.free_connex_reduce`);
2. for every join-tree node, index its rows by the separator toward the
   parent.

Enumeration then walks the join tree depth-first.  Because the frames
are fully reduced, *every* partial assignment extends to an answer:
there are no dead ends, so the work between two consecutive answers is
bounded by the number of tree nodes — a constant in data complexity.
Answers are emitted without repetition because the reduced query is a
join query over exactly the free variables (set semantics).

For non-free-connex queries, ``strict=False`` switches to a
materialize-first fallback whose preprocessing is the full evaluation —
the superlinear behaviour that Theorem 3.16 proves necessary.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.hypergraph.freeconnex import is_free_connex
from repro.joins.fc_reduce import ReducedJoinQuery, free_connex_reduce
from repro.joins.generic_join import generic_join
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


class ConstantDelayEnumerator:
    """Enumerate query answers with constant delay after preprocessing.

    Parameters
    ----------
    query, db:
        The conjunctive query and database.
    strict:
        When True (default), refuse non-free-connex queries with
        :class:`ValueError`.  When False, fall back to materializing
        the answers during preprocessing (superlinear, measured by the
        benchmarks as the hard side of the dichotomy).

    The constructor *is* the preprocessing phase; iteration is the
    enumeration phase.
    """

    def __init__(
        self, query: ConjunctiveQuery, db: Database, strict: bool = True
    ) -> None:
        self.query = query
        self.head = tuple(query.head)
        self.mode: str
        self._materialized: Optional[List[Row]] = None
        self._reduced: Optional[ReducedJoinQuery] = None
        if query.is_boolean():
            raise ValueError(
                "Boolean queries have nothing to enumerate; use "
                "yannakakis_boolean"
            )
        if is_free_connex(query):
            self.mode = "free-connex"
            self._reduced = free_connex_reduce(query, db)
            self._build_indexes()
        elif strict:
            raise ValueError(
                f"query {query.name} is not free-connex; constant-delay "
                "enumeration after linear preprocessing is impossible "
                "under the hypotheses of Theorem 3.17 (pass strict=False "
                "for the materializing fallback)"
            )
        else:
            self.mode = "materialized"
            self._materialized = sorted(generic_join(query, db))

    # ------------------------------------------------------------------
    # preprocessing internals
    # ------------------------------------------------------------------
    def _build_indexes(self) -> None:
        """Index every node's rows by its parent separator key."""
        reduced = self._reduced
        assert reduced is not None
        self._node_order: List[int] = []
        self._indexes: Dict[int, Dict[Row, List[Row]]] = {}
        self._sep_vars: Dict[int, Tuple[str, ...]] = {}
        if reduced.is_empty:
            return
        tree = reduced.tree
        # Depth-first preorder over the forest, deterministic.
        stack = list(reversed(tree.roots))
        while stack:
            node = stack.pop()
            self._node_order.append(node)
            stack.extend(reversed(tree.children(node)))
        for node in self._node_order:
            frame = reduced.frames[node]
            parent = tree.parent.get(node)
            if parent is None:
                sep: Tuple[str, ...] = ()
            else:
                parent_vars = reduced.frames[parent].variables
                sep = tuple(
                    v for v in frame.variables if v in parent_vars
                )
            positions = frame.positions(sep)
            index: Dict[Row, List[Row]] = {}
            for row in frame.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            for rows in index.values():
                rows.sort()
            self._sep_vars[node] = sep
            self._indexes[node] = index

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        if self.mode == "materialized":
            assert self._materialized is not None
            return iter(self._materialized)
        return self._enumerate_free_connex()

    def _enumerate_free_connex(self) -> Iterator[Row]:
        reduced = self._reduced
        assert reduced is not None
        if reduced.is_empty:
            return
        order = self._node_order
        head = self.head
        head_index = {v: i for i, v in enumerate(head)}
        var_positions: Dict[int, List[Tuple[int, int]]] = {}
        for node in order:
            frame = reduced.frames[node]
            var_positions[node] = [
                (head_index[v], p)
                for p, v in enumerate(frame.variables)
            ]
        assignment: List[object] = [None] * len(head)

        def recurse(depth: int) -> Iterator[Row]:
            if depth == len(order):
                yield tuple(assignment)
                return
            node = order[depth]
            frame = reduced.frames[node]
            sep = self._sep_vars[node]
            key = tuple(assignment[head_index[v]] for v in sep)
            for row in self._indexes[node].get(key, ()):
                # Consistency with already-bound variables beyond the
                # separator cannot fail (running intersection confines
                # sharing to the separator), so bind and descend.
                for target, source in var_positions[node]:
                    assignment[target] = row[source]
                yield from recurse(depth + 1)
            # No cleanup needed: ancestors rebind on their next row.

        yield from recurse(0)

    def count_via_enumeration(self) -> int:
        """Number of answers by exhausting the stream (test helper)."""
        return sum(1 for _ in self)
