"""Constant-delay enumeration for free-connex acyclic queries.

Preprocessing (Theorem 3.17's upper bound, all O(m)):

1. reduce the query to an equivalent acyclic *join* query over the free
   variables (:func:`repro.joins.fc_reduce.free_connex_reduce`);
2. for every join-tree node, index its rows by the separator toward the
   parent.

On Python-backend frames step 2 builds one dict-of-lists per node.  On
columnar frames it is an array program: one ``np.lexsort`` per node
(separator columns major) materializes the adjacency as contiguous
sorted blocks and block boundaries come from one vectorized
change-detection pass — the sorted matrices stay *code matrices*, so
no tuple is decoded and no per-row list is materialized during
preprocessing.  Enumeration walks the matrices with a row cursor,
binds dictionary *codes*, and decodes exactly one answer per yield, so
the decode cost is part of the (constant) delay, not the
preprocessing.

Enumeration walks the join tree depth-first.  Because the frames are
fully reduced, *every* partial assignment extends to an answer: there
are no dead ends, so the work between two consecutive answers is
bounded by the number of tree nodes — a constant in data complexity.
Answers are emitted without repetition because the reduced query is a
join query over exactly the free variables (set semantics).

**Staleness and maintenance.**  The blocks snapshot the database; the
constructor records every relation's ``mutation_stamp`` and iteration
compares them first.  On drift the default (``on_stale="error"``)
raises :class:`repro.db.interface.StaleStructureError` instead of
silently streaming pre-mutation answers.  With ``on_stale="refresh"``
(columnar join queries) the blocks are built per *atom* over the
unreduced frames and a drifted relation rebuilds only its own node's
blocks — block families are independent across nodes, so nothing else
is touched.  Skipping the full reducer means a partial assignment can
hit a dead end (the walk just backtracks), trading the constant-delay
guarantee for cheap maintenance; answers remain exactly ``q(D)``.
Non-join or non-columnar inputs refresh by full rebuild.

For non-free-connex queries, ``strict=False`` switches to a
materialize-first fallback whose preprocessing is the full evaluation —
the superlinear behaviour that Theorem 3.16 proves necessary.

This is the low-level entry point; the engine facade
(:mod:`repro.engine`) constructs it automatically when a prepared
query's plan admits constant-delay iteration — see
``examples/quickstart.py`` (facade) vs ``examples/ranked_paging.py``
(direct low-level use).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.db.columnar import block_slices
from repro.db.database import Database
from repro.db.interface import (
    StaleStructureError,
    snapshot_stamps,
    stale_relations,
)
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import join_tree
from repro.joins.fc_reduce import ReducedJoinQuery, free_connex_reduce
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames
from repro.joins.vectorized import ColumnarFrame, columnar_family
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


class ConstantDelayEnumerator:
    """Enumerate query answers with constant delay after preprocessing.

    Parameters
    ----------
    query, db:
        The conjunctive query and database.
    strict:
        When True (default), refuse non-free-connex queries with
        :class:`ValueError`.  When False, fall back to materializing
        the answers during preprocessing (superlinear, measured by the
        benchmarks as the hard side of the dichotomy).
    on_stale:
        ``"error"`` (default) raises :class:`StaleStructureError` when
        iterating after an underlying relation mutated; ``"refresh"``
        repairs the blocks first (per-node rebuild for columnar join
        queries, full rebuild otherwise — module docstring).

    The constructor *is* the preprocessing phase; iteration is the
    enumeration phase.  ``store_backend`` reports which preprocessing
    ran (``"columnar"`` = vectorized, zero row decodes).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        strict: bool = True,
        on_stale: str = "error",
    ) -> None:
        if on_stale not in ("error", "refresh"):
            raise ValueError(
                f"on_stale must be 'error' or 'refresh', got {on_stale!r}"
            )
        self.query = query
        self.head = tuple(query.head)
        self.strict = strict
        self.on_stale = on_stale
        self._db = db
        self.rebuilds = -1  # the build below is construction
        if query.is_boolean():
            raise ValueError(
                "Boolean queries have nothing to enumerate; use "
                "yannakakis_boolean"
            )
        self._build()

    def _build(self) -> None:
        query, db = self.query, self._db
        self.rebuilds += 1
        self._stamps = snapshot_stamps(db, query.relation_symbols)
        self.mode: str
        self.store_backend = "python"
        self._materialized: Optional[List[Row]] = None
        self._reduced: Optional[ReducedJoinQuery] = None
        self._dictionary = None
        self._maintain = False
        if is_free_connex(query):
            self.mode = "free-connex"
            if (
                self.on_stale == "refresh"
                and query.is_join_query()
                and self._try_build_maintained()
            ):
                return
            self._reduced = free_connex_reduce(query, db)
            self._build_indexes()
        elif self.strict:
            raise ValueError(
                f"query {query.name} is not free-connex; constant-delay "
                "enumeration after linear preprocessing is impossible "
                "under the hypotheses of Theorem 3.17 (pass strict=False "
                "for the materializing fallback)"
            )
        else:
            self.mode = "materialized"
            self._materialized = sorted(generic_join(query, db))

    def _try_build_maintained(self) -> bool:
        """Per-atom blocks over unreduced columnar frames.

        Node = atom, so a drifted relation maps to a known set of
        nodes whose blocks can be rebuilt in isolation.  Returns False
        (caller takes the classic reduced build) when the frames are
        not an all-columnar family.
        """
        query, db = self.query, self._db
        frames = dict(enumerate(atom_frames(query, db)))
        dictionary = columnar_family(frames.values())
        if dictionary is None:
            return False
        self._reduced = ReducedJoinQuery(
            head=self.head,
            frames=frames,
            tree=join_tree(query.hypergraph()),
        )
        self._maintain = True
        self._atom_nodes: Dict[str, List[int]] = {}
        for node, atom in enumerate(query.atoms):
            self._atom_nodes.setdefault(atom.relation, []).append(node)
        self._build_indexes()
        assert self.store_backend == "columnar"
        return True

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------
    def _check_fresh(self) -> None:
        drifted = stale_relations(self._db, self._stamps)
        if not drifted:
            return
        if self.on_stale == "refresh":
            self.refresh()
            return
        raise StaleStructureError(
            f"ConstantDelayEnumerator for query {self.query.name} was "
            f"built before relation(s) {sorted(drifted)} mutated; its "
            "stream would be stale. Rebuild it, or construct with "
            "on_stale='refresh' to repair automatically."
        )

    def refresh(self) -> None:
        """Bring the blocks up to date with the database.

        Maintained structures rebuild only the drifted relations'
        nodes (block families are per-node and independent); anything
        else rebuilds wholesale.
        """
        drifted = stale_relations(self._db, self._stamps)
        if not drifted:
            return
        if not self._maintain:
            self._build()
            return
        reduced = self._reduced
        assert reduced is not None
        for name in drifted:
            for node in self._atom_nodes.get(name, ()):
                atom = self.query.atoms[node]
                frame = ColumnarFrame.from_atom(
                    self._db[name], atom.variables
                )
                reduced.frames[node] = frame
                self._build_node_blocks(node)
            self._stamps[name] = self._db[name].mutation_stamp

    # ------------------------------------------------------------------
    # preprocessing internals
    # ------------------------------------------------------------------
    def _node_order_and_seps(self) -> None:
        """Depth-first node order and each node's parent separator."""
        reduced = self._reduced
        assert reduced is not None
        self._node_order: List[int] = []
        self._sep_vars: Dict[int, Tuple[str, ...]] = {}
        tree = reduced.tree
        # Depth-first preorder over the forest, deterministic.
        stack = list(reversed(tree.roots))
        while stack:
            node = stack.pop()
            self._node_order.append(node)
            stack.extend(reversed(tree.children(node)))
        for node in self._node_order:
            frame = reduced.frames[node]
            parent = tree.parent.get(node)
            if parent is None:
                sep: Tuple[str, ...] = ()
            else:
                parent_vars = reduced.frames[parent].variables
                sep = tuple(
                    v for v in frame.variables if v in parent_vars
                )
            self._sep_vars[node] = sep

    def _build_indexes(self) -> None:
        """Index every node's rows by its parent separator key."""
        reduced = self._reduced
        assert reduced is not None
        self._node_order = []
        self._indexes: Dict[int, Dict[Row, object]] = {}
        self._sep_vars = {}
        if reduced.is_empty:
            return
        self._node_order_and_seps()
        self._dictionary = columnar_family(reduced.frames.values())
        if self._dictionary is not None:
            self.store_backend = "columnar"
            self._blocks: Dict[
                int,
                Tuple[
                    np.ndarray,
                    Dict[Tuple[int, ...], Tuple[int, int]],
                ],
            ] = {}
            for node in self._node_order:
                self._build_node_blocks(node)
            return
        for node in self._node_order:
            frame = reduced.frames[node]
            positions = frame.positions(self._sep_vars[node])
            index: Dict[Row, List[Row]] = {}
            for row in frame.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            for rows in index.values():
                rows.sort()
            self._indexes[node] = index

    def _build_node_blocks(self, node: int) -> None:
        """Adjacency of one node as lexsorted code blocks (zero decodes).

        Sort the code matrix with the separator columns as major keys,
        detect block boundaries vectorized, and map each coded
        separator key to its ``(start, end)`` slice over the sorted
        matrix.  The matrix is kept *as a code matrix* — enumeration
        walks it with a row cursor and decodes one answer per yield,
        so the preprocessing performs no output-sized ``tolist``
        export (the ROADMAP's enumeration export gap).  Block-internal
        order is code order — deterministic, but backend-specific
        (value order would require comparing decoded values, which
        this phase promises not to do).  Blocks are per-node, which is
        what lets the maintained refresh rebuild one drifted node in
        isolation.
        """
        reduced = self._reduced
        assert reduced is not None
        frame = reduced.frames[node]
        codes = frame.codes()
        n, width = codes.shape
        sep_pos = list(frame.positions(self._sep_vars[node]))
        if n and width:
            # Minor keys: the full row (deterministic block order);
            # major keys (last in the lexsort tuple): separators.
            keys = [
                codes[:, j] for j in range(width - 1, -1, -1)
            ] + [codes[:, j] for j in reversed(sep_pos)]
            codes = codes[np.lexsort(tuple(keys))]
        sep_codes = codes[:, sep_pos] if sep_pos else codes[:, :0]
        representatives, starts, ends = block_slices(sep_codes)
        slices = {
            tuple(rep): (int(start), int(end))
            for rep, start, end in zip(
                representatives.tolist(),
                starts.tolist(),
                ends.tolist(),
            )
        }
        self._blocks[node] = (codes, slices)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        self._check_fresh()
        if self.mode == "materialized":
            assert self._materialized is not None
            return iter(self._materialized)
        if self.store_backend == "columnar":
            return self._enumerate_columnar()
        return self._enumerate_free_connex()

    def _var_positions(self) -> Dict[int, List[Tuple[int, int]]]:
        reduced = self._reduced
        assert reduced is not None
        head_index = {v: i for i, v in enumerate(self.head)}
        return {
            node: [
                (head_index[v], p)
                for p, v in enumerate(reduced.frames[node].variables)
            ]
            for node in self._node_order
        }

    def _enumerate_free_connex(self) -> Iterator[Row]:
        reduced = self._reduced
        assert reduced is not None
        if reduced.is_empty:
            return
        order = self._node_order
        head_index = {v: i for i, v in enumerate(self.head)}
        var_positions = self._var_positions()
        assignment: List[object] = [None] * len(self.head)

        def recurse(depth: int) -> Iterator[Row]:
            if depth == len(order):
                yield tuple(assignment)
                return
            node = order[depth]
            sep = self._sep_vars[node]
            key = tuple(assignment[head_index[v]] for v in sep)
            for row in self._indexes[node].get(key, ()):
                # Consistency with already-bound variables beyond the
                # separator cannot fail (running intersection confines
                # sharing to the separator), so bind and descend.
                for target, source in var_positions[node]:
                    assignment[target] = row[source]
                yield from recurse(depth + 1)
            # No cleanup needed: ancestors rebind on their next row.

        yield from recurse(0)

    def _enumerate_columnar(self) -> Iterator[Row]:
        """The same depth-first walk over dictionary codes.

        Each answer is decoded individually at yield time — a
        constant-per-answer cost, preserving the delay contract while
        the preprocessing stays decode-free.  (Maintained structures
        skip the full reducer, so a branch can dead-end and backtrack;
        the answer set is unaffected.)
        """
        reduced = self._reduced
        assert reduced is not None
        if reduced.is_empty or not self._node_order:
            return
        order = self._node_order
        head_index = {v: i for i, v in enumerate(self.head)}
        var_positions = self._var_positions()
        decode = self._dictionary.decode
        assignment: List[int] = [0] * len(self.head)

        def recurse(depth: int) -> Iterator[Row]:
            if depth == len(order):
                yield tuple(decode(code) for code in assignment)
                return
            node = order[depth]
            sep = self._sep_vars[node]
            key = tuple(assignment[head_index[v]] for v in sep)
            rows, slices = self._blocks[node]
            slice_ = slices.get(key)
            if slice_ is None:
                return
            for position in range(slice_[0], slice_[1]):
                row = rows[position]
                for target, source in var_positions[node]:
                    assignment[target] = row[source]
                yield from recurse(depth + 1)

        yield from recurse(0)

    def count_via_enumeration(self) -> int:
        """Number of answers by exhausting the stream (test helper)."""
        return sum(1 for _ in self)
