"""Constant-delay enumeration (paper Section 3.3).

:class:`ConstantDelayEnumerator` realizes the upper bound of Theorem
3.17: for free-connex acyclic queries, after O(m) preprocessing the
answers stream with delay independent of the database.  The
:mod:`repro.enumeration.delay` helpers instrument actual delays so the
benchmark harness can verify flatness in m (and watch the fallback path
for non-free-connex queries blow up, as Theorems 3.15/3.16 predict).
"""

from repro.enumeration.constant_delay import ConstantDelayEnumerator
from repro.enumeration.delay import DelayProfile, measure_delays

__all__ = ["ConstantDelayEnumerator", "DelayProfile", "measure_delays"]
