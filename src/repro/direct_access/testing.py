"""The testing problem for conjunctive queries (paper Section 3.4.1).

After preprocessing the database, the algorithm must answer membership
queries "is this tuple an answer?".  Lemma 3.20 reduces testing to
lexicographic direct access by binary search over the simulated array
(a log(M) factor, M ≤ the maximum result size); Lemma 3.21 shows that
for q*_2 no linear-preprocessing / constant-time tester exists under
the Triangle Hypothesis — which is why the fallback here materializes
a hash set (superlinear preprocessing, then O(1) tests), the behaviour
experiment E9 measures.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.db.database import Database
from repro.direct_access.lex import LexDirectAccess
from repro.joins.generic_join import generic_join
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


class TestingOracle:
    """Membership testing via direct access (Lemma 3.20) or hashing.

    ``mode="direct-access"`` builds a :class:`LexDirectAccess` in the
    head order and answers each test with O(log |result|) accesses —
    this needs a layered tree (free-connex + trio-free order).
    ``mode="hash"`` materializes the answer set (cost: full evaluation)
    and tests in O(1).  Default: direct access when available, else
    hash.
    """

    __test__ = False  # "Testing" is the paper's problem name, not a pytest class

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        mode: Optional[str] = None,
    ) -> None:
        if query.is_boolean():
            raise ValueError("testing a Boolean query is just deciding it")
        self.query = query
        self.head = tuple(query.head)
        self.accesses = 0  # probe counter, reported by the benchmarks
        if mode not in (None, "direct-access", "hash"):
            raise ValueError(f"unknown testing mode {mode!r}")
        self._da: Optional[LexDirectAccess] = None
        self._set: Optional[Set[Row]] = None
        if mode in (None, "direct-access"):
            try:
                self._da = LexDirectAccess(query, db, order=self.head)
                self.mode = "direct-access"
                return
            except ValueError:
                if mode == "direct-access":
                    raise
        self.mode = "hash"
        self._set = set(generic_join(query, db))

    def test(self, row: Sequence[object]) -> bool:
        """Is ``row`` (in head order) an answer?"""
        tup = tuple(row)
        if len(tup) != len(self.head):
            raise ValueError(
                f"expected a tuple of width {len(self.head)}, got {tup}"
            )
        if self.mode == "hash":
            assert self._set is not None
            return tup in self._set
        assert self._da is not None
        low, high = 0, len(self._da) - 1
        while low <= high:
            mid = (low + high) // 2
            self.accesses += 1
            candidate = self._da.access(mid)
            if candidate == tup:
                return True
            if candidate < tup:
                low = mid + 1
            else:
                high = mid - 1
        return False
