"""Direct access under sum-of-weights orders (paper Section 3.4.2).

Each domain value gets a weight; an answer's weight is the sum of its
entries' weights, and the simulated array is sorted by answer weight.
Theorem 3.26: an acyclic self-join-free join query admits linear
preprocessing iff some atom contains *all* variables — then the
(reduced) covering relation *is* the answer set, and sorting it is the
whole preprocessing.  Otherwise two variables share no atom, Lemma 3.25
embeds 3SUM, and superlinear preprocessing is unavoidable — realized
here by the materializing fallback the benchmarks measure.

**Columnar covering path.**  When the reduced covering frame is
columnar, the preprocessing is an array program sharing the
value-rank machinery of :func:`repro.direct_access.lex.
value_rank_table`: per-row weights are one table gather + columnwise
sum over the code matrix, the sort is one ``np.lexsort`` over
(value-ranked columns as tie-breaks, weight column as primary key),
and no row is decoded during preprocessing — ``access(i)`` decodes
exactly the returned answer, matching the lex stores' decode budget.
The decoded-and-sorted list of the scalar path is gone.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.direct_access.lex import value_rank_table
from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.joins.vectorized import ColumnarFrame
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]
WeightMap = Mapping[object, float]


def covering_atom_index(query: ConjunctiveQuery) -> Optional[int]:
    """Index of an atom whose scope contains every variable, if any."""
    all_vars = query.variables
    for i, atom in enumerate(query.atoms):
        if atom.scope >= all_vars:
            return i
    return None


def uncovered_pair(query: ConjunctiveQuery) -> Optional[Tuple[str, str]]:
    """Two variables sharing no atom (Lemma 3.25's hardness pattern).

    For acyclic join queries, exists iff there is no covering atom
    (via minimum edge cover = maximum independent set on acyclic
    hypergraphs, [39, Lemma 19]).
    """
    variables = sorted(query.variables)
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            if not any(
                x in atom.scope and y in atom.scope for atom in query.atoms
            ):
                return (x, y)
    return None


class SumOrderDirectAccess:
    """Direct access by sum-of-weights order.

    ``weights`` maps domain values to numbers (missing values weigh 0).
    For join queries with a covering atom the preprocessing is
    Õ(m log m): reduce, then sort the covering relation — over code
    columns with zero row decodes when the frame is columnar
    (``store_backend`` reports which path ran).  Otherwise
    (``strict=False``) the full result is materialized and sorted.
    Ties are broken by the tuple itself (value order) so the order is
    total and deterministic on both paths.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        weights: WeightMap,
        strict: bool = True,
    ) -> None:
        if not query.is_join_query():
            raise ValueError(
                "sum-order direct access is defined for join queries here "
                "(the paper's Section 3.4.2 restriction)"
            )
        self.query = query
        self.head = tuple(query.head)
        self.weights = dict(weights)
        self.store_backend = "python"
        self._sorted_codes: Optional[np.ndarray] = None
        self._dictionary = None
        self._answers: List[Row] = []
        cover = covering_atom_index(query)
        if cover is not None and is_acyclic(query.hypergraph()):
            self.mode = "covering"
            frame = self._reduced_covering_frame(query, db, cover)
            if isinstance(frame, ColumnarFrame):
                self._build_columnar(frame)
                return
            answers = [
                tuple(row[p] for p in frame.positions(self.head))
                for row in frame.rows
            ]
        elif strict:
            pair = uncovered_pair(query)
            raise ValueError(
                f"query {query.name} has no covering atom (e.g. variables "
                f"{pair} share no atom); by Theorem 3.26 linear "
                "preprocessing is impossible — pass strict=False for the "
                "materializing fallback"
            )
        else:
            self.mode = "materialized"
            answers = list(generic_join(query, db))
        decorated = [(self.answer_weight(row), row) for row in answers]
        decorated.sort()
        self._answers = [row for _, row in decorated]
        self._keys = [weight for weight, _ in decorated]

    def _reduced_covering_frame(
        self, query: ConjunctiveQuery, db: Database, cover: int
    ):
        tree = join_tree(query.hypergraph())
        reduced = full_reducer_pass(
            dict(enumerate(atom_frames(query, db))), tree
        )
        return reduced[cover]

    def _build_columnar(self, frame: ColumnarFrame) -> None:
        """Sort the covering frame's *codes* by (weight, value ranks).

        One weight-table gather per column realizes the answer weights
        (summed left to right, bit-identical to the scalar path's
        ``sum``); the value-rank remap makes the lexsort's tie-break
        the value order the scalar path gets by sorting decoded
        tuples.  Zero decodes — ``access`` decodes one answer.
        """
        self.store_backend = "columnar"
        dictionary = frame.dictionary
        self._dictionary = dictionary
        codes = frame.codes()[:, list(frame.positions(self.head))]
        n, width = codes.shape
        row_weights = np.zeros(n, dtype=np.float64)
        if n and width:
            used = np.unique(codes)
            values = dictionary.values()
            weight_table = np.zeros(int(used[-1]) + 1, dtype=np.float64)
            get = self.weights.get
            for code in used.tolist():
                weight_table[code] = get(values[code], 0.0)
            for j in range(width):
                row_weights = row_weights + weight_table[codes[:, j]]
            # One rank table per column: the scalar path's tie-break
            # compares tuples position-wise, so values are only ever
            # compared within a column — a single cross-column table
            # would impose (and require) a global order that mixed
            # column types need not have.
            ranks = np.empty_like(codes)
            for j in range(width):
                column = codes[:, j]
                ranks[:, j] = value_rank_table(dictionary, column)[column]
            order = np.lexsort(
                tuple(
                    [ranks[:, j] for j in range(width - 1, -1, -1)]
                    + [row_weights]
                )
            )
            codes, row_weights = codes[order], row_weights[order]
        self._sorted_codes = codes
        self._keys = row_weights

    # ------------------------------------------------------------------
    # the direct access interface
    # ------------------------------------------------------------------
    def answer_weight(self, row: Sequence[object]) -> float:
        """Sum of the entry weights of an answer tuple."""
        return sum(self.weights.get(value, 0.0) for value in row)

    def __len__(self) -> int:
        if self._sorted_codes is not None:
            return len(self._sorted_codes)
        return len(self._answers)

    def access(self, index: int) -> Row:
        """The index-th lightest answer (IndexError past the end)."""
        if index < 0 or index >= len(self):
            raise IndexError(
                f"index {index} out of range for {len(self)} answers"
            )
        if self._sorted_codes is not None:
            decode = self._dictionary.decode
            return tuple(
                decode(int(code)) for code in self._sorted_codes[index]
            )
        return self._answers[index]

    def has_weight(self, target: float, tolerance: float = 0.0) -> bool:
        """Is there an answer of total weight ``target``?

        Binary search over the sorted weights — O(log n), the probe the
        3SUM reduction of Lemma 3.25 performs for every c ∈ C.
        """
        slot = bisect_left(self._keys, target - tolerance)
        return (
            slot < len(self._keys)
            and self._keys[slot] <= target + tolerance
        )
