"""Direct access under sum-of-weights orders (paper Section 3.4.2).

Each domain value gets a weight; an answer's weight is the sum of its
entries' weights, and the simulated array is sorted by answer weight.
Theorem 3.26: an acyclic self-join-free join query admits linear
preprocessing iff some atom contains *all* variables — then the
(reduced) covering relation *is* the answer set, and sorting it is the
whole preprocessing.  Otherwise two variables share no atom, Lemma 3.25
embeds 3SUM, and superlinear preprocessing is unavoidable — realized
here by the materializing fallback the benchmarks measure.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]
WeightMap = Mapping[object, float]


def covering_atom_index(query: ConjunctiveQuery) -> Optional[int]:
    """Index of an atom whose scope contains every variable, if any."""
    all_vars = query.variables
    for i, atom in enumerate(query.atoms):
        if atom.scope >= all_vars:
            return i
    return None


def uncovered_pair(query: ConjunctiveQuery) -> Optional[Tuple[str, str]]:
    """Two variables sharing no atom (Lemma 3.25's hardness pattern).

    For acyclic join queries, exists iff there is no covering atom
    (via minimum edge cover = maximum independent set on acyclic
    hypergraphs, [39, Lemma 19]).
    """
    variables = sorted(query.variables)
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            if not any(
                x in atom.scope and y in atom.scope for atom in query.atoms
            ):
                return (x, y)
    return None


class SumOrderDirectAccess:
    """Direct access by sum-of-weights order.

    ``weights`` maps domain values to numbers (missing values weigh 0).
    For join queries with a covering atom the preprocessing is
    Õ(m log m): reduce, then sort the covering relation.  Otherwise
    (``strict=False``) the full result is materialized and sorted.
    Ties are broken by the tuple itself so the order is total and
    deterministic.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        weights: WeightMap,
        strict: bool = True,
    ) -> None:
        if not query.is_join_query():
            raise ValueError(
                "sum-order direct access is defined for join queries here "
                "(the paper's Section 3.4.2 restriction)"
            )
        self.query = query
        self.head = tuple(query.head)
        self.weights = dict(weights)
        cover = covering_atom_index(query)
        if cover is not None and is_acyclic(query.hypergraph()):
            self.mode = "covering"
            answers = self._reduced_covering_rows(query, db, cover)
        elif strict:
            pair = uncovered_pair(query)
            raise ValueError(
                f"query {query.name} has no covering atom (e.g. variables "
                f"{pair} share no atom); by Theorem 3.26 linear "
                "preprocessing is impossible — pass strict=False for the "
                "materializing fallback"
            )
        else:
            self.mode = "materialized"
            answers = list(generic_join(query, db))
        self._answers: List[Row] = answers
        self._keys: List[float] = []
        decorated = [
            (self.answer_weight(row), row) for row in self._answers
        ]
        decorated.sort()
        self._answers = [row for _, row in decorated]
        self._keys = [weight for weight, _ in decorated]

    def _reduced_covering_rows(
        self, query: ConjunctiveQuery, db: Database, cover: int
    ) -> List[Row]:
        tree = join_tree(query.hypergraph())
        reduced = full_reducer_pass(
            dict(enumerate(atom_frames(query, db))), tree
        )
        frame = reduced[cover]
        return [
            tuple(row[p] for p in frame.positions(self.head))
            for row in frame.rows
        ]

    # ------------------------------------------------------------------
    # the direct access interface
    # ------------------------------------------------------------------
    def answer_weight(self, row: Sequence[object]) -> float:
        """Sum of the entry weights of an answer tuple."""
        return sum(self.weights.get(value, 0.0) for value in row)

    def __len__(self) -> int:
        return len(self._answers)

    def access(self, index: int) -> Row:
        """The index-th lightest answer (IndexError past the end)."""
        if index < 0 or index >= len(self._answers):
            raise IndexError(
                f"index {index} out of range for {len(self._answers)} answers"
            )
        return self._answers[index]

    def has_weight(self, target: float, tolerance: float = 0.0) -> bool:
        """Is there an answer of total weight ``target``?

        Binary search over the sorted weights — O(log n), the probe the
        3SUM reduction of Lemma 3.25 performs for every c ∈ C.
        """
        slot = bisect_left(self._keys, target - tolerance)
        return (
            slot < len(self._keys)
            and self._keys[slot] <= target + tolerance
        )
