"""Direct access to query answers (paper Section 3.4).

Direct access simulates an array holding the sorted query result:
after preprocessing, ``access(i)`` returns the i-th answer (raising
:class:`IndexError` past the end, the paper's "error").

- :mod:`repro.direct_access.lex` — lexicographic orders.  For acyclic
  join queries whose order has no disruptive trio (Theorem 3.24) —
  and more generally free-connex queries with a compatible order
  (Corollary 3.22) — preprocessing is Õ(m) and access Õ(log m), via
  subtree-count prefix sums over an order-compatible join tree.
- :mod:`repro.direct_access.sum_order` — sum-of-weights orders.
  Linear preprocessing exactly when one atom covers all variables
  (Theorem 3.26); the general fallback materializes and sorts.
- :mod:`repro.direct_access.testing` — the testing problem and the
  Lemma 3.20 reduction of testing to direct access via binary search.
"""

from repro.direct_access.lex import LexDirectAccess
from repro.direct_access.sum_order import SumOrderDirectAccess
from repro.direct_access.testing import TestingOracle

__all__ = ["LexDirectAccess", "SumOrderDirectAccess", "TestingOracle"]
