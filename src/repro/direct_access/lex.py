"""Lexicographic direct access (paper Theorems 3.18/3.24, Cor. 3.22).

For a free-connex acyclic query (join queries included) and a variable
order admitting a layered join tree — equivalently, by [27], an order
with no disruptive trio — preprocessing is Õ(m) and each access costs
Õ(log m):

1. reduce to an acyclic join query over the free variables
   (:func:`repro.joins.fc_reduce.free_connex_reduce`);
2. find a layered join tree for the order
   (:mod:`repro.direct_access.layered`);
3. bottom-up, count each tuple's extensions in its subtree, and store,
   per (node, parent-separator key), the tuples sorted by their own
   variables with prefix sums of those counts;
4. ``access(i)`` descends the tree, selecting each node's tuple by
   binary search in the prefix sums and splitting the residual index
   across the children blocks mixed-radix style.

**Columnar preprocessing.**  When the reduced frames are columnar
(:class:`repro.joins.vectorized.ColumnarFrame` over one dictionary),
step 3 is an array program: subtree counts are binary-search gathers of
child block totals (:func:`repro.db.columnar.lookup_rows`) multiplied
columnwise; the per-separator blocks come from one ``np.lexsort`` over
(separator codes, order-preserving *value ranks* of the own columns —
dictionary codes are first-seen, not sorted, so the own columns are
remapped through a rank table before sorting); and the prefix sums are
one ``np.cumsum``.  No row is decoded during preprocessing —
``access(i)`` descends over codes via ``np.searchsorted`` and decodes
only the single returned answer.  Subtree counts use int64 (exact
below 2^63; the Python store keeps bigints).

**Staleness and maintenance.**  The stores snapshot the database: the
constructor records every relation's ``mutation_stamp`` and ``access``
compares them first.  On drift the default (``on_stale="error"``) is
to raise :class:`repro.db.interface.StaleStructureError` — the
structure used to answer silently from the dead snapshot.  With
``on_stale="refresh"`` the structure repairs itself: for a columnar
join query it is built over the *unreduced* atom frames (so rows the
full reducer would drop stay present with subtree count 0 and can
revive later) and each net delta row from
:meth:`repro.db.columnar.ColumnarRelation.delta_since` is spliced into
its node's sorted block — one ``np.insert`` plus a prefix-sum
recompute — with the affected ancestor counts repaired level by level
(a vectorized scan per level).  When a relation's delta history is
gone (compaction past the threshold, or a bulk rewrite) refresh falls
back to a full rebuild — the regime where patching would not have
been cheaper anyway.

**Sharded inputs.**  Direct access needs globally sorted per-node
stores, so frames of the sharded backend
(:class:`repro.joins.vectorized.ShardedColumnarFrame`) coalesce per
node at build time — an inherently global structure.  Counting and
aggregation never pay that: the engine serves ``count()`` /
``aggregate()`` through the FAQ message passing, which on sharded
frames computes one message per shard and merges them in the separator
domain (:mod:`repro.semiring.faq`), so only an explicit ``access``
demand materializes anything shard-global.

When no layered tree exists (a disruptive trio), the ``strict=False``
fallback materializes and sorts the whole result — the superlinear
preprocessing that Lemma 3.23 proves necessary.

This is the low-level entry point; the engine facade
(:mod:`repro.engine`) plans it behind ``AnswerSet.__getitem__`` when
the order is admissible — see ``examples/quickstart.py`` (facade) vs
``examples/ranked_paging.py`` (direct low-level use).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.columnar import (
    atom_projection,
    block_slices,
    common_keys,
    lookup_rows,
    unique_rows,
)
from repro.db.database import Database
from repro.db.interface import (
    StaleStructureError,
    TruncatedHistoryError,
    snapshot_stamps,
    stale_relations,
)
from repro.direct_access.layered import (
    VIRTUAL_ROOT,
    LayeredTree,
    find_layered_tree,
)
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.jointree import JoinTree
from repro.joins.fc_reduce import ReducedJoinQuery, free_connex_reduce
from repro.joins.generic_join import generic_join
from repro.joins.semijoin import atom_frames
from repro.joins.vectorized import columnar_family
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


def value_rank_table(dictionary, codes: np.ndarray) -> np.ndarray:
    """An order-preserving ``code -> rank`` table for the used codes.

    Dictionary codes are assigned first-seen, not value-ordered, so
    sorting raw codes would realize insertion order.  This returns a
    dense int64 table mapping every code appearing in ``codes`` to its
    rank in the sorted order of the *decoded values*; a lexsort over
    rank-remapped columns then realizes the value order the access
    contracts promise, without decoding any row.  Values must be
    mutually comparable (the same constraint the Python backend's sort
    has).  Entries for unused codes are 0 — look up used codes only.

    Shared by the lexicographic stores here and the sum-order covering
    path (:mod:`repro.direct_access.sum_order`), so the two access
    structures cannot drift in how they realize value order.
    """
    used = np.unique(codes)
    if not len(used):
        return np.zeros(1, dtype=np.int64)
    values = dictionary.values()
    by_value = sorted(used.tolist(), key=lambda code: values[code])
    table = np.zeros(int(used[-1]) + 1, dtype=np.int64)
    table[np.asarray(by_value, dtype=np.int64)] = np.arange(
        len(by_value), dtype=np.int64
    )
    return table


class _NodeStore:
    """Per-node access structures: grouped, sorted, prefix-summed."""

    __slots__ = ("groups", "sep_positions", "own_positions")

    def __init__(self) -> None:
        # key -> (sorted own projections, rows, cumulative counts)
        self.groups: Dict[Row, Tuple[List[Row], List[Row], List[int]]] = {}
        self.sep_positions: Tuple[int, ...] = ()
        self.own_positions: Tuple[int, ...] = ()

    def total(self, key: Row) -> int:
        group = self.groups.get(key)
        return group[2][-1] if group else 0

    def locate(self, key: Row, index: int) -> Tuple[Row, int]:
        """The row covering ``index`` within the key's block, and the
        cumulative count preceding that row."""
        _, rows, cumulative = self.groups[key]
        slot = bisect_right(cumulative, index)
        previous = cumulative[slot - 1] if slot else 0
        return rows[slot], previous


class _ColumnarNodeStore:
    """Per-node access structures over lexsorted code columns.

    ``codes`` holds the node's rows sorted by (separator codes, own
    value-ranks); ``counts`` the per-row subtree counts in that order
    and ``cum0`` their exclusive prefix sum.  Blocks (one per coded
    separator key) are kept as aligned sorted structures — ``rep_keys``
    (a bisectable list of key tuples), ``rep_matrix`` (the same keys as
    a code matrix, for vectorized gathers) and ``starts``/``ends``
    half-open bounds — so a single-row patch is one ``bisect`` plus a
    couple of ``np.insert`` memmoves rather than a dict rebuild.
    Zero-count rows may be present (maintained stores keep them so a
    later update can revive them); ``locate``'s right-sided binary
    search never selects them.
    """

    __slots__ = (
        "codes",
        "counts",
        "cum0",
        "rep_keys",
        "rep_matrix",
        "starts",
        "ends",
        "sep_pos",
        "own_pos",
    )

    def __init__(self) -> None:
        self.codes: np.ndarray = np.empty((0, 0), dtype=np.int64)
        self.counts: np.ndarray = np.empty(0, dtype=np.int64)
        self.cum0: np.ndarray = np.zeros(1, dtype=np.int64)
        self.rep_keys: List[Tuple[int, ...]] = []
        self.rep_matrix: np.ndarray = np.empty((0, 0), dtype=np.int64)
        self.starts: np.ndarray = np.empty(0, dtype=np.int64)
        self.ends: np.ndarray = np.empty(0, dtype=np.int64)
        self.sep_pos: List[int] = []
        self.own_pos: List[int] = []

    def block(self, key: Tuple[int, ...]) -> Optional[int]:
        """The block index of a coded separator key, or None."""
        i = bisect_left(self.rep_keys, key)
        if i < len(self.rep_keys) and self.rep_keys[i] == key:
            return i
        return None

    def refresh_cum(self) -> None:
        self.cum0 = np.concatenate(
            ([0], np.cumsum(self.counts, dtype=np.int64))
        )

    def totals_array(self) -> np.ndarray:
        """Per-block totals, aligned with ``rep_keys``/``rep_matrix``."""
        return self.cum0[self.ends] - self.cum0[self.starts]

    def total(self, key: Row) -> int:
        i = self.block(tuple(key))
        if i is None:
            return 0
        return int(
            self.cum0[int(self.ends[i])] - self.cum0[int(self.starts[i])]
        )

    def locate(self, key: Row, index: int) -> Tuple[Row, int]:
        i = self.block(tuple(key))
        start, end = int(self.starts[i]), int(self.ends[i])
        target = int(self.cum0[start]) + index
        slot = start + int(
            np.searchsorted(
                self.cum0[start + 1 : end + 1], target, side="right"
            )
        )
        previous = int(self.cum0[slot] - self.cum0[start])
        return tuple(self.codes[slot].tolist()), previous


class LexDirectAccess:
    """Direct access to query answers under a lexicographic order.

    ``order`` lists the free variables, most significant first.
    Answers are returned as tuples in *head* order; their ranking
    follows ``order``.  ``access(i)`` raises :class:`IndexError` when
    ``i`` is past the last answer (the paper's "error" convention).

    ``store_backend`` reports which preprocessing ran: ``"columnar"``
    (vectorized, zero row decodes) when the reduced frames are
    columnar, ``"python"`` otherwise.

    ``on_stale`` picks the behaviour when an underlying relation
    mutates after preprocessing (module docstring): ``"error"`` fails
    fast with :class:`StaleStructureError`, ``"refresh"`` repairs the
    stores (incrementally where the delta segments allow it, by full
    rebuild otherwise).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        order: Optional[Sequence[str]] = None,
        strict: bool = True,
        on_stale: str = "error",
    ) -> None:
        if on_stale not in ("error", "refresh"):
            raise ValueError(
                f"on_stale must be 'error' or 'refresh', got {on_stale!r}"
            )
        self.query = query
        self.head = tuple(query.head)
        if not self.head:
            raise ValueError("Boolean queries have no answers to access")
        self.order: Tuple[str, ...] = (
            tuple(order) if order is not None else self.head
        )
        if sorted(self.order) != sorted(self.head):
            raise ValueError(
                "order must be a permutation of the head variables"
            )
        self.strict = strict
        self.on_stale = on_stale
        self._db = db
        self.rebuilds = -1  # the build below is construction
        self._build()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def _build(self) -> None:
        query, db = self.query, self._db
        self.rebuilds += 1
        self._stamps = snapshot_stamps(db, query.relation_symbols)
        self.mode = "layered"
        self.store_backend = "python"
        self._materialized: Optional[List[Row]] = None
        self._count = 0
        self._dictionary = None
        self._maintain = False
        self._layered: Optional[LayeredTree] = None
        self._reduced: Optional[ReducedJoinQuery] = None
        self._stores: Dict[int, object] = {}

        layered: Optional[LayeredTree] = None
        reduced = None
        if is_free_connex(query):
            if self.on_stale == "refresh" and query.is_join_query():
                if self._try_build_maintained():
                    return
            reduced = free_connex_reduce(query, db)
            if reduced.is_empty:
                return
            bags = {
                node: frozenset(frame.variables)
                for node, frame in reduced.frames.items()
            }
            layered = find_layered_tree(bags, self.order)
        if layered is None:
            if self.strict:
                raise ValueError(
                    f"query {query.name} admits no layered join tree for "
                    f"order {self.order} (disruptive trio or not "
                    "free-connex); pass strict=False for the "
                    "materializing fallback"
                )
            self.mode = "materialized"
            self._materialize(db)
            return
        self._layered = layered
        self._reduced = reduced
        self._dictionary = columnar_family(reduced.frames.values())
        if self._dictionary is not None:
            self.store_backend = "columnar"
            self._build_stores_columnar()
        else:
            self._build_stores()

    def _try_build_maintained(self) -> bool:
        """Build patchable stores over the unreduced atom frames.

        Only for columnar join queries with a layered tree: node =
        atom, so a relation's net delta maps row-for-row onto a node's
        rows (after the atom's repeated-variable selection), and the
        full reducer is skipped — rows without extensions simply carry
        subtree count 0, which the access math already treats as
        absent, and which an update can later revive (patching stores
        built from *reduced* frames could not resurrect dropped rows).
        Returns False when this build does not apply; the caller then
        falls back to the classic reduced build (whose refresh is a
        full rebuild).
        """
        query, db = self.query, self._db
        frames = dict(enumerate(atom_frames(query, db)))
        dictionary = columnar_family(frames.values())
        if dictionary is None:
            return False
        bags = {
            node: frozenset(frame.variables)
            for node, frame in frames.items()
        }
        layered = find_layered_tree(bags, self.order)
        if layered is None:
            return False
        tree = JoinTree(
            bags=bags,
            parent={
                node: parent
                for node, parent in layered.parent.items()
                if node != VIRTUAL_ROOT
                and parent is not None
                and parent != VIRTUAL_ROOT
            },
        )
        self._layered = layered
        self._reduced = ReducedJoinQuery(
            head=self.head, frames=frames, tree=tree
        )
        self._dictionary = dictionary
        self.store_backend = "columnar"
        self._maintain = True
        self._atom_nodes: Dict[str, List[int]] = {}
        self._atom_proj: Dict[
            int, Tuple[Tuple[int, ...], List[Tuple[int, int]]]
        ] = {}
        for node, atom in enumerate(query.atoms):
            self._atom_nodes.setdefault(atom.relation, []).append(node)
            self._atom_proj[node] = atom_projection(atom.variables)
        self._build_stores_columnar(drop_dead=False)
        self._child_sep_pos: Dict[int, Dict[int, List[int]]] = {}
        for node, frame in frames.items():
            positions: Dict[int, List[int]] = {}
            for child in layered.children[node]:
                child_sep = tuple(
                    v
                    for v in frames[child].variables
                    if v in frame.variables
                )
                positions[child] = list(frame.positions(child_sep))
            self._child_sep_pos[node] = positions
        return True

    def _materialize(self, db: Database) -> None:
        key_positions = [self.head.index(v) for v in self.order]
        answers = list(generic_join(self.query, db))
        answers.sort(key=lambda row: tuple(row[p] for p in key_positions))
        self._materialized = answers
        self._count = len(answers)

    def _node_separator(self, node: int) -> Tuple[str, ...]:
        """Variables shared with the parent, in frame-column order."""
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        parent = layered.parent[node]
        if parent == VIRTUAL_ROOT:
            return ()
        frame = reduced.frames[node]
        parent_vars = reduced.frames[parent].variables
        return tuple(v for v in frame.variables if v in parent_vars)

    def _finish_count(self, stores: Dict[int, object]) -> None:
        layered = self._layered
        assert layered is not None
        self._stores = stores
        total = 1
        for child in layered.children[VIRTUAL_ROOT]:
            total *= stores[child].total(())
        self._count = total if layered.children[VIRTUAL_ROOT] else 0

    def _build_stores(self) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        stores: Dict[int, _NodeStore] = {}
        # Bottom-up over the layered tree: reversed preorder works
        # because preorder parents precede children.
        for node in reversed(layered.preorder):
            if node == VIRTUAL_ROOT:
                continue
            frame = reduced.frames[node]
            sep_vars = self._node_separator(node)
            own_vars = layered.own[node]
            store = _NodeStore()
            store.sep_positions = frame.positions(sep_vars)
            store.own_positions = frame.positions(own_vars)
            child_stores = [
                (child, stores[child]) for child in layered.children[node]
            ]
            grouped: Dict[Row, List[Tuple[Row, Row, int]]] = {}
            for row in frame.rows:
                count = 1
                for child, child_store in child_stores:
                    child_frame = reduced.frames[child]
                    child_sep = tuple(
                        v
                        for v in child_frame.variables
                        if v in frame.variables
                    )
                    key = tuple(
                        row[p] for p in frame.positions(child_sep)
                    )
                    count *= child_store.total(key)
                    if not count:
                        break
                if not count:
                    # Cannot happen after full reduction; kept so that
                    # unreduced inputs still yield correct results.
                    continue
                sep_key = tuple(row[p] for p in store.sep_positions)
                own_key = tuple(row[p] for p in store.own_positions)
                grouped.setdefault(sep_key, []).append(
                    (own_key, row, count)
                )
            for sep_key, entries in grouped.items():
                entries.sort(key=lambda e: e[0])
                own_keys = [e[0] for e in entries]
                rows = [e[1] for e in entries]
                cumulative: List[int] = []
                running = 0
                for _, _, count in entries:
                    running += count
                    cumulative.append(running)
                store.groups[sep_key] = (own_keys, rows, cumulative)
            stores[node] = store
        self._finish_count(stores)

    def _build_stores_columnar(self, drop_dead: bool = True) -> None:
        """Vectorized preprocessing over code columns (zero decodes).

        ``drop_dead=False`` (maintained stores) keeps rows whose
        subtree count is 0: they cost nothing during access (the
        prefix-sum search skips zero-width rows) but can be revived by
        later updates without a rebuild.
        """
        layered = self._layered
        reduced = self._reduced
        dictionary = self._dictionary
        assert (
            layered is not None
            and reduced is not None
            and dictionary is not None
        )
        cardinality = len(dictionary)
        stores: Dict[int, _ColumnarNodeStore] = {}
        for node in reversed(layered.preorder):
            if node == VIRTUAL_ROOT:
                continue
            frame = reduced.frames[node]
            sep_pos = list(frame.positions(self._node_separator(node)))
            own_pos = list(frame.positions(layered.own[node]))
            codes = frame.codes()
            counts = np.ones(len(codes), dtype=np.int64)
            for child in layered.children[node]:
                child_store = stores[child]
                child_frame = reduced.frames[child]
                child_sep = tuple(
                    v
                    for v in child_frame.variables
                    if v in frame.variables
                )
                sub = codes[:, list(frame.positions(child_sep))]
                totals = child_store.totals_array()
                if not len(totals):
                    # Empty child (reachable with drop_dead=False, where
                    # empty frames skip the is_empty short-circuit): no
                    # row extends downward.
                    counts[:] = 0
                    continue
                index = lookup_rows(
                    sub, child_store.rep_matrix, cardinality
                )
                found = index >= 0
                counts *= np.where(
                    found,
                    totals[np.where(found, index, 0)],
                    0,
                )
            if drop_dead:
                keep = counts > 0
                if not keep.all():
                    codes, counts = codes[keep], counts[keep]
            n = len(codes)
            # Dictionary codes are first-seen, not value-ordered; remap
            # the own columns through value ranks so the lexsort below
            # realizes the *value* order the access contract promises.
            if own_pos and n:
                own_codes = codes[:, own_pos]
                own_ranks = value_rank_table(dictionary, own_codes)[
                    own_codes
                ]
            else:
                own_ranks = np.empty((n, 0), dtype=np.int64)
            sep_codes = codes[:, sep_pos] if sep_pos else codes[:, :0]
            sort_keys = [
                own_ranks[:, j]
                for j in range(own_ranks.shape[1] - 1, -1, -1)
            ] + [
                sep_codes[:, j]
                for j in range(sep_codes.shape[1] - 1, -1, -1)
            ]
            if sort_keys and n > 1:
                order = np.lexsort(tuple(sort_keys))
                codes, counts = codes[order], counts[order]
                sep_codes = (
                    codes[:, sep_pos] if sep_pos else codes[:, :0]
                )
            representatives, starts, ends = block_slices(sep_codes)
            store = _ColumnarNodeStore()
            store.codes = codes
            store.counts = counts
            store.refresh_cum()
            store.rep_matrix = representatives
            store.rep_keys = [
                tuple(rep) for rep in representatives.tolist()
            ]
            store.starts = starts.astype(np.int64, copy=True)
            store.ends = ends.astype(np.int64, copy=True)
            store.sep_pos = sep_pos
            store.own_pos = own_pos
            stores[node] = store
        self._finish_count(stores)

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------
    def _check_fresh(self) -> None:
        drifted = stale_relations(self._db, self._stamps)
        if not drifted:
            return
        if self.on_stale == "refresh":
            self.refresh()
            return
        raise StaleStructureError(
            f"LexDirectAccess for query {self.query.name} was built "
            f"before relation(s) {sorted(drifted)} mutated; its answers "
            "would be stale. Rebuild it, or construct with "
            "on_stale='refresh' to repair automatically."
        )

    def refresh(self) -> None:
        """Bring the stores up to date with the database.

        Incremental (per-row block patches) when this is a maintained
        columnar structure and every drifted relation still has delta
        history; a full rebuild otherwise.
        """
        drifted = stale_relations(self._db, self._stamps)
        if not drifted:
            return
        if not (self._maintain and self.mode == "layered"):
            self._build()
            return
        plan: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for name, stamp in drifted.items():
            delta_since = getattr(self._db[name], "delta_since", None)
            if delta_since is None:
                self._build()
                return
            try:
                inserted, deleted = delta_since(stamp)
            except TruncatedHistoryError:
                self._build()
                return
            plan.append((name, np.asarray(inserted), np.asarray(deleted)))
        for name, inserted, deleted in plan:
            nodes = self._atom_nodes.get(name, ())
            for row in map(tuple, deleted.tolist()):
                for node in nodes:
                    self._patch(node, row, insert=False)
            for row in map(tuple, inserted.tolist()):
                for node in nodes:
                    self._patch(node, row, insert=True)
            self._stamps[name] = self._db[name].mutation_stamp
        self._finish_count(self._stores)

    # ------------------------------------------------------------------
    # incremental patching (maintained columnar stores)
    # ------------------------------------------------------------------
    def _own_key(
        self, store: _ColumnarNodeStore, codes_row: np.ndarray
    ) -> Tuple:
        values = self._dictionary.values()
        return tuple(values[int(codes_row[p])] for p in store.own_pos)

    def _bisect_block(
        self,
        store: _ColumnarNodeStore,
        start: int,
        end: int,
        own_key: Tuple,
    ) -> Tuple[int, bool]:
        """Position of ``own_key`` inside a sorted block, + exact hit.

        O(log block) comparisons, each decoding one pivot row's own
        columns — the same per-access decode budget ``access`` has.
        """
        codes = store.codes
        lo, hi = start, end
        while lo < hi:
            mid = (lo + hi) // 2
            if self._own_key(store, codes[mid]) < own_key:
                lo = mid + 1
            else:
                hi = mid
        exact = lo < end and self._own_key(store, codes[lo]) == own_key
        return lo, exact

    def _patch(self, node: int, rel_row: Row, insert: bool) -> None:
        """Splice one net relation delta row into one node's store."""
        proj, checks = self._atom_proj[node]
        for pos, first in checks:
            if rel_row[pos] != rel_row[first]:
                return  # fails the atom's repeated-variable selection
        row = np.asarray([rel_row[p] for p in proj], dtype=np.int64)
        store: _ColumnarNodeStore = self._stores[node]
        layered = self._layered
        sep_key = tuple(int(row[p]) for p in store.sep_pos)
        own_key = self._own_key(store, row)
        totals_changed = False
        if insert:
            count = 1
            for child in layered.children[node]:
                child_key = tuple(
                    int(row[p]) for p in self._child_sep_pos[node][child]
                )
                count *= self._stores[child].total(child_key)
            i = store.block(sep_key)
            if i is None:
                i = bisect_left(store.rep_keys, sep_key)
                position = (
                    int(store.starts[i])
                    if i < len(store.rep_keys)
                    else len(store.codes)
                )
                store.rep_keys.insert(i, sep_key)
                store.rep_matrix = np.insert(
                    store.rep_matrix,
                    i,
                    np.asarray(sep_key, dtype=np.int64),
                    axis=0,
                )
                store.starts = np.insert(store.starts, i, position)
                store.ends = np.insert(store.ends, i, position)
            start, end = int(store.starts[i]), int(store.ends[i])
            position, exact = self._bisect_block(
                store, start, end, own_key
            )
            if exact:
                return  # row already present (defensive; deltas are net)
            store.codes = np.insert(store.codes, position, row, axis=0)
            store.counts = np.insert(store.counts, position, count)
            store.ends[i:] += 1
            store.starts[i + 1 :] += 1
            store.refresh_cum()
            totals_changed = count != 0
        else:
            i = store.block(sep_key)
            if i is None:
                return  # row never reached this node (defensive)
            start, end = int(store.starts[i]), int(store.ends[i])
            position, exact = self._bisect_block(
                store, start, end, own_key
            )
            if not exact or not np.array_equal(
                store.codes[position], row
            ):
                return  # defensive
            removed = int(store.counts[position])
            store.codes = np.delete(store.codes, position, axis=0)
            store.counts = np.delete(store.counts, position)
            store.ends[i:] -= 1
            store.starts[i + 1 :] -= 1
            store.refresh_cum()
            totals_changed = removed != 0
        if totals_changed:
            keys = np.asarray(sep_key, dtype=np.int64).reshape(
                1, len(sep_key)
            )
            self._propagate(node, keys)

    def _propagate(self, node: int, keys: np.ndarray) -> None:
        """Repair ancestor subtree counts for the changed child keys.

        Per level: one vectorized scan finds the parent rows matching
        a changed key, their counts are recomputed from the (already
        repaired) child block totals, the prefix sums are re-cumsummed,
        and the parent separator keys of the rows whose count actually
        changed propagate further up.  Cancellations (block totals that
        end up unchanged) stop the walk at the next level.
        """
        layered = self._layered
        cardinality = len(self._dictionary)
        child = node
        while True:
            parent = layered.parent[child]
            if parent is None or parent == VIRTUAL_ROOT:
                return
            pstore: _ColumnarNodeStore = self._stores[parent]
            if not len(pstore.codes):
                return
            cpos = self._child_sep_pos[parent][child]
            sub = pstore.codes[:, cpos] if cpos else pstore.codes[:, :0]
            sub_keys, changed_keys = common_keys(sub, keys, cardinality)
            affected = np.flatnonzero(np.isin(sub_keys, changed_keys))
            if not len(affected):
                return
            rows = pstore.codes[affected]
            new_counts = np.ones(len(affected), dtype=np.int64)
            for other in layered.children[parent]:
                opos = self._child_sep_pos[parent][other]
                other_sub = rows[:, opos] if opos else rows[:, :0]
                other_store: _ColumnarNodeStore = self._stores[other]
                if len(other_store.rep_keys):
                    index = lookup_rows(
                        other_sub, other_store.rep_matrix, cardinality
                    )
                    found = index >= 0
                    totals = other_store.totals_array()
                    new_counts *= np.where(
                        found, totals[np.where(found, index, 0)], 0
                    )
                else:
                    new_counts[:] = 0
            changed = new_counts != pstore.counts[affected]
            if not changed.any():
                return
            pstore.counts[affected] = new_counts
            pstore.refresh_cum()
            changed_rows = rows[changed]
            sep = (
                changed_rows[:, pstore.sep_pos]
                if pstore.sep_pos
                else changed_rows[:, :0]
            )
            keys = unique_rows(sep, cardinality)
            child = parent

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._check_fresh()
        return self._count

    def access(self, index: int) -> Row:
        """The answer at ``index`` (0-based) in the lexicographic order."""
        self._check_fresh()
        if index < 0 or index >= self._count:
            raise IndexError(
                f"index {index} out of range for {self._count} answers"
            )
        if self.mode == "materialized":
            assert self._materialized is not None
            return self._materialized[index]
        head_pos = {v: i for i, v in enumerate(self.head)}
        assignment: List[object] = [None] * len(self.head)
        # _select assigns each node's row and recurses; kick off at the
        # virtual root with the full index.  Columnar stores descend
        # over codes; only the returned answer is decoded.
        self._descend_children(VIRTUAL_ROOT, index, assignment, head_pos)
        if self.store_backend == "columnar":
            decode = self._dictionary.decode
            return tuple(decode(code) for code in assignment)
        return tuple(assignment)

    def _select(
        self,
        node: int,
        index: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        store = self._stores[node]
        if layered.parent[node] == VIRTUAL_ROOT:
            key: Row = ()
        else:
            key = tuple(
                assignment[head_pos[v]]
                for v in self._node_separator(node)
            )
        row, previous = store.locate(key, index)
        frame = reduced.frames[node]
        for position, variable in enumerate(frame.variables):
            assignment[head_pos[variable]] = row[position]
        residual = index - previous
        # Recurse into this node's children with the leftover index.
        self._descend_children(node, residual, assignment, head_pos)

    def _descend_children(
        self,
        node: int,
        residual: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        children = layered.children[node]
        if not children:
            return
        sizes: List[int] = []
        for child in children:
            if node == VIRTUAL_ROOT:
                key: Row = ()
            else:
                key = tuple(
                    assignment[head_pos[v]]
                    for v in self._node_separator(child)
                )
            sizes.append(self._stores[child].total(key))
        suffix_products = [1] * (len(children) + 1)
        for j in range(len(children) - 1, -1, -1):
            suffix_products[j] = suffix_products[j + 1] * sizes[j]
        for j, child in enumerate(children):
            radix = suffix_products[j + 1]
            child_index = residual // radix
            residual = residual % radix
            self._select(child, child_index, assignment, head_pos)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def materialize(self) -> List[Row]:
        """All answers in order (test helper; output-sized)."""
        self._check_fresh()
        return [self.access(i) for i in range(self._count)]
